//! A dc-ql network client: connects to a running `dc-serve` server (pass
//! its address), or — with no argument — starts one in-process over a small
//! TPC-D warehouse and talks to it over a real TCP socket.
//!
//! ```sh
//! cargo run --release --example client                 # self-hosted demo
//! cargo run --release --example client 127.0.0.1:4711  # external server
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use dctree::serve::{serve, EngineConfig, ServerConfig, ShardedDcTree};
use dctree::tpcd::{generate, TpcdConfig};

fn main() -> std::io::Result<()> {
    // Either connect to the given server, or host one ourselves.
    let (addr, hosted) = match std::env::args().nth(1) {
        Some(addr) => (addr, None),
        None => {
            println!("no address given — starting an in-process server…");
            let data = generate(&TpcdConfig::scaled(10_000, 42));
            let engine = Arc::new(
                ShardedDcTree::new(data.schema.clone(), EngineConfig::default()).expect("engine"),
            );
            for r in &data.records {
                engine
                    .insert_raw(&data.paths_for(r), r.measure)
                    .expect("load");
            }
            engine.flush();
            let handle = serve(Arc::clone(&engine), "127.0.0.1:0", ServerConfig::default())?;
            println!("serving 10 000 TPC-D lineitems on {}", handle.local_addr());
            (handle.local_addr().to_string(), Some((engine, handle)))
        }
    };

    let stream = TcpStream::connect(&addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut request = |line: &str| -> std::io::Result<String> {
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut response = String::new();
        reader.read_line(&mut response)?;
        let response = response.trim_end().to_string();
        println!("> {line}\n  {response}");
        Ok(response)
    };

    request("PING")?;
    request("COUNT")?;
    request("SUM WHERE Customer.Region = 'EUROPE'")?;
    request("AVG WHERE Customer.Region IN ('EUROPE', 'ASIA') AND Time.Year = '1996'")?;
    request("SUM GROUP BY Customer.Region TOP 3")?;
    request("COUNT WHERE Time.Year = '1999'")?;
    // Repeat a query: the second run is answered by the aggregate cache
    // (see the cache counters printed below).
    request("SUM WHERE Customer.Region = 'EUROPE'")?;
    request(
        "INSERT 500 EUROPE/GERMANY/BUILDING/Customer#000000001\
         |ASIA/JAPAN/Supplier#000000002\
         |Brand#11/ECONOMY ANODIZED/Part#000000003\
         |1999/1999-01/1999-01-15",
    )?;
    request("FLUSH")?;
    request("COUNT WHERE Time.Year = '1999'")?;
    let stats = request("STATS")?;
    print_cache_counters(&stats);
    print_pool_gauges(&stats);

    if let Some((engine, handle)) = hosted {
        request("SHUTDOWN")?;
        handle.join();
        engine.shutdown();
        println!("server stopped cleanly.");
    }
    Ok(())
}

/// Pulls the aggregate-cache counters out of the STATS JSON and prints
/// them on their own lines (the full payload is one long line).
fn print_cache_counters(stats: &str) {
    println!("aggregate cache:");
    for key in [
        "hits",
        "semantic_hits",
        "misses",
        "hit_rate",
        "patches",
        "invalidations",
        "entries",
    ] {
        if let Some(v) = json_field(stats, key) {
            println!("  {key:<14} {v}");
        }
    }
}

/// The work-stealing query pool's gauges (`"pool"` block of STATS):
/// worker count, queue depth, how many units ran on workers vs inline on
/// the submitting connection, and how many were stolen cross-affinity.
/// All zeros when the pool is off (single shard or no spare cores).
fn print_pool_gauges(stats: &str) {
    println!("query pool:");
    for key in [
        "workers",
        "queued_tasks",
        "busy_workers",
        "tasks",
        "inline_tasks",
        "steals",
    ] {
        if let Some(v) = json_field(stats, key) {
            println!("  {key:<14} {v}");
        }
    }
}

/// The raw value of `"key":` in a flat JSON rendering (no parser in the
/// workspace; the STATS payload is machine-generated and regular).
fn json_field<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}
