//! A dc-ql network client: connects to a running `dc-serve` server (pass
//! its address), or — with no argument — starts one in-process over a small
//! TPC-D warehouse (with the cost-based planner enabled) and talks to it
//! over a real TCP socket.
//!
//! ```sh
//! cargo run --release --example client                 # self-hosted demo
//! cargo run --release --example client 127.0.0.1:4711  # external server
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use dctree::serve::{
    serve, EngineConfig, PlannerOptions, ServerConfig, ShardedDcTree, SyncPolicy, WalOptions,
};
use dctree::tpcd::{generate, TpcdConfig};

fn main() -> std::io::Result<()> {
    // Either connect to the given server, or host one ourselves.
    let (addr, hosted) = match std::env::args().nth(1) {
        Some(addr) => (addr, None),
        None => {
            println!("no address given — starting an in-process server…");
            let data = generate(&TpcdConfig::scaled(10_000, 42));
            // A WAL makes the demo server a replication primary: the
            // REPL_STATUS / WAIT_LSN calls below report a real log frontier
            // and a follower could tail it with FETCH_SEGMENTS.
            let wal_dir =
                std::env::temp_dir().join(format!("dc-client-demo-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&wal_dir);
            let engine = Arc::new(
                ShardedDcTree::new(
                    data.schema.clone(),
                    EngineConfig {
                        planner: Some(PlannerOptions::default()),
                        wal: Some(WalOptions {
                            sync: SyncPolicy::GroupCommitMs(2),
                            ..WalOptions::new(&wal_dir)
                        }),
                        ..Default::default()
                    },
                )
                .expect("engine"),
            );
            for r in &data.records {
                engine
                    .insert_raw(&data.paths_for(r), r.measure)
                    .expect("load");
            }
            engine.flush();
            let handle = serve(Arc::clone(&engine), "127.0.0.1:0", ServerConfig::default())?;
            println!("serving 10 000 TPC-D lineitems on {}", handle.local_addr());
            (
                handle.local_addr().to_string(),
                Some((engine, handle, wal_dir)),
            )
        }
    };

    let stream = TcpStream::connect(&addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut request = |line: &str| -> std::io::Result<String> {
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut response = String::new();
        reader.read_line(&mut response)?;
        let response = response.trim_end().to_string();
        println!("> {line}\n  {response}");
        Ok(response)
    };

    request("PING")?;
    request("COUNT")?;
    request("SUM WHERE Customer.Region = 'EUROPE'")?;
    request("AVG WHERE Customer.Region IN ('EUROPE', 'ASIA') AND Time.Year = '1996'")?;
    request("SUM GROUP BY Customer.Region TOP 3")?;
    request("COUNT WHERE Time.Year = '1999'")?;
    // Repeat a query: with the planner off this hits the aggregate cache;
    // with it on (this demo) the cost model may instead route both runs to
    // a materialized view, which is why the cache counters below can stay
    // at zero hits.
    request("SUM WHERE Customer.Region = 'EUROPE'")?;
    // Planner-era statements: multi-measure SELECT lists and EXPLAIN,
    // which reports the backend the cost model chose per shard.
    request("SELECT SUM, COUNT, MAX WHERE Customer.Region = 'EUROPE'")?;
    request("SELECT SUM, COUNT GROUP BY Time.Year TOP 3")?;
    request("EXPLAIN SUM GROUP BY Customer.Region")?;
    request("EXPLAIN SUM WHERE Customer.Nation = 'GERMANY' AND Time.Year = '1996'")?;
    request(
        "INSERT 500 EUROPE/GERMANY/BUILDING/Customer#000000001\
         |ASIA/JAPAN/Supplier#000000002\
         |Brand#11/ECONOMY ANODIZED/Part#000000003\
         |1999/1999-01/1999-01-15",
    )?;
    request("FLUSH")?;
    request("COUNT WHERE Time.Year = '1999'")?;
    // Replication verbs: REPL_STATUS reports the role and log frontier;
    // WAIT_LSN blocks until the applied-and-visible frontier reaches an
    // LSN (a no-op on a primary, the read-your-LSN barrier on a
    // follower); MIN_LSN prefixes any read with that barrier.
    let status = request("REPL_STATUS")?;
    let applied: u64 = status
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("APPLIED="))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    request(&format!("WAIT_LSN {applied}"))?;
    request(&format!("MIN_LSN {applied} COUNT WHERE Time.Year = '1999'"))?;
    let stats = request("STATS")?;
    print_section(&stats, "cache", "aggregate cache");
    print_section(&stats, "pool", "query pool");
    print_section(&stats, "plan", "query planner");
    // Only present when the server has a WAL (this demo does): the
    // replication role, applied frontier, and segment-shipping counters.
    print_section(&stats, "replication", "replication");
    // Only present when the server runs disk-backed shards
    // (StorageMode::Disk); resident servers skip it silently.
    print_section(&stats, "buffer_pool", "buffer pool");
    // Only present once a network front-end (threaded or reactor) serves
    // the engine: connections, request/byte counters, pipeline depth,
    // admission shed counts and per-tenant admit/deny tallies.
    print_section(&stats, "net", "network front-end");

    if let Some((engine, handle, wal_dir)) = hosted {
        request("SHUTDOWN")?;
        handle.join();
        engine.shutdown();
        let _ = std::fs::remove_dir_all(&wal_dir);
        println!("server stopped cleanly.");
    }
    Ok(())
}

/// Prints every scalar counter of one named STATS section, skipping the
/// section silently when the server doesn't expose it. Sections are scoped
/// by balanced-brace matching, so servers that grow *new* sections (or
/// reorder existing ones) never confuse the client: keys are only looked up
/// inside the requested object, never across the whole payload.
fn print_section(stats: &str, section: &str, title: &str) {
    let Some(body) = json_section(stats, section) else {
        return;
    };
    println!("{title}:");
    let mut rest = body;
    while let Some(q) = rest.find('"') {
        let after_quote = &rest[q + 1..];
        let Some(end_quote) = after_quote.find('"') else {
            break;
        };
        let key = &after_quote[..end_quote];
        let after_key = &after_quote[end_quote + 1..];
        let Some(after_colon) = after_key.strip_prefix(':') else {
            rest = after_key;
            continue;
        };
        if after_colon.starts_with('{') || after_colon.starts_with('[') {
            // Nested object (e.g. plan's "chose"): step inside; its keys
            // print flattened under the same section.
            rest = after_colon;
            continue;
        }
        let end = after_colon
            .find([',', '}', ']'])
            .unwrap_or(after_colon.len());
        println!("  {key:<16} {}", after_colon[..end].trim());
        rest = &after_colon[end..];
    }
}

/// Extracts the balanced-brace body of `"section":{…}` from a flat JSON
/// rendering (no parser in the workspace; the STATS payload is
/// machine-generated and regular — no strings containing braces).
fn json_section<'a>(json: &'a str, section: &str) -> Option<&'a str> {
    let needle = format!("\"{section}\":{{");
    let start = json.find(&needle)? + needle.len();
    let mut depth = 1usize;
    for (i, b) in json[start..].bytes().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&json[start..start + i]);
                }
            }
            _ => {}
        }
    }
    None
}
