//! The always-online scenario that motivates the paper: "very dynamic
//! applications such as stock markets" where the warehouse cannot afford a
//! nightly batch window. A producer thread streams trades into a
//! [`ConcurrentDcTree`] while analyst threads continuously query it; the
//! example reports insert latency percentiles and query throughput.
//!
//! Run with:
//! ```sh
//! cargo run --release --example streaming_updates [seconds]
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dctree::{
    AggregateOp, ConcurrentDcTree, CubeSchema, DcTree, DcTreeConfig, DimSet, DimensionId,
    HierarchySchema, Mds,
};
use rand::prelude::*;
use rand::rngs::StdRng;

const SECTORS: [&str; 5] = ["TECH", "ENERGY", "FINANCE", "HEALTH", "RETAIL"];
const VENUES: [&str; 3] = ["NYSE", "NASDAQ", "LSE"];

fn main() {
    let seconds: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);

    // Ticker tape cube: Instrument (Sector → Symbol) × Venue × Time
    // (Hour → Minute), measure = trade value in cents.
    let schema = CubeSchema::new(
        vec![
            HierarchySchema::new("Instrument", vec!["Sector".into(), "Symbol".into()]),
            HierarchySchema::new("Venue", vec!["Venue".into()]),
            HierarchySchema::new("Time", vec!["Hour".into(), "Minute".into()]),
        ],
        "TradeValue",
    );
    let tree = Arc::new(ConcurrentDcTree::new(DcTree::new(
        schema,
        DcTreeConfig::default(),
    )));
    let stop = Arc::new(AtomicBool::new(false));
    let queries_run = Arc::new(AtomicU64::new(0));

    // Producer: a firehose of trades.
    let producer = {
        let tree = Arc::clone(&tree);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(1);
            let mut latencies_us: Vec<u64> = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                let sector = SECTORS[rng.gen_range(0..SECTORS.len())];
                let symbol = format!("{sector}-{:03}", rng.gen_range(0..120));
                let venue = VENUES[rng.gen_range(0..VENUES.len())];
                let hour = format!("{:02}", rng.gen_range(9..17));
                let minute = format!("{hour}:{:02}", rng.gen_range(0..60));
                let value = rng.gen_range(1_000..5_000_000);
                let t0 = Instant::now();
                tree.insert_raw(
                    &[
                        vec![sector.to_string(), symbol],
                        vec![venue.to_string()],
                        vec![hour, minute],
                    ],
                    value,
                )
                .expect("insert");
                latencies_us.push(t0.elapsed().as_micros() as u64);
            }
            latencies_us
        })
    };

    // Analysts: sector roll-ups while trades stream in.
    let analysts: Vec<_> = (0..2)
        .map(|_| {
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            let queries_run = Arc::clone(&queries_run);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let q = tree.with_read(|t| {
                        let inst = t.schema().dim(DimensionId(0));
                        let sector = inst.values_at(1).next().unwrap_or_else(|| inst.all());
                        Mds::new(vec![
                            DimSet::singleton(sector),
                            DimSet::singleton(t.schema().dim(DimensionId(1)).all()),
                            DimSet::singleton(t.schema().dim(DimensionId(2)).all()),
                        ])
                    });
                    let _ = tree.range_query(&q, AggregateOp::Sum).expect("query");
                    queries_run.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    std::thread::sleep(Duration::from_secs(seconds));
    stop.store(true, Ordering::Relaxed);
    let mut latencies = producer.join().expect("producer");
    for a in analysts {
        a.join().expect("analyst");
    }

    latencies.sort_unstable();
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
    println!(
        "streamed {} trades in {seconds}s with 2 concurrent analysts",
        latencies.len()
    );
    println!(
        "insert latency   p50 {}µs   p95 {}µs   p99 {}µs   max {}µs",
        pct(0.50),
        pct(0.95),
        pct(0.99),
        latencies.last().unwrap()
    );
    println!(
        "analyst queries  {} total ({:.0}/s)",
        queries_run.load(Ordering::Relaxed),
        queries_run.load(Ordering::Relaxed) as f64 / seconds as f64
    );
    let total = tree.with_read(|t| t.total_summary());
    println!(
        "warehouse now holds {} trades worth {} cents",
        total.count, total.sum
    );
    tree.with_read(|t| t.check_invariants())
        .expect("invariants hold");
    println!("invariants verified — the warehouse never went offline.");
}
