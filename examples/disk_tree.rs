//! The disk-resident DC-tree: nodes live in a paged file behind an LRU
//! buffer pool, so the paper's I/O story becomes physically measurable —
//! pool hits, misses and write-backs instead of simulated counters.
//!
//! Run with:
//! ```sh
//! cargo run --release --example disk_tree [num_records]
//! ```

use std::time::Instant;

use dctree::tpcd::{generate, TpcdConfig};
use dctree::tree::DiskDcTree;
use dctree::{AggregateOp, DcTreeConfig, DimSet, DimensionId, Mds};

fn main() -> dctree::DcResult<()> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_000);
    let dir = std::env::temp_dir().join("dctree-disk-example");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("warehouse.dcdisk");

    println!("generating {n} TPC-D style records…");
    let data = generate(&TpcdConfig::scaled(n, 11));

    for frames in [8usize, 64, 1024] {
        let mut tree =
            DiskDcTree::create(&path, data.schema.clone(), DcTreeConfig::default(), frames)?;
        let t0 = Instant::now();
        for r in &data.records {
            tree.insert(r.clone())?;
        }
        tree.flush()?;
        let load = t0.elapsed();
        let after_load = tree.pool_stats();

        // A dashboard roll-up workload on the cold-ish pool.
        let customer = data.schema.dim(DimensionId(0));
        let queries: Vec<Mds> = customer
            .values_at(3)
            .map(|region| {
                Mds::new(
                    (0..4)
                        .map(|d| {
                            if d == 0 {
                                DimSet::singleton(region)
                            } else {
                                DimSet::singleton(data.schema.dim(DimensionId(d as u16)).all())
                            }
                        })
                        .collect(),
                )
            })
            .collect();
        let t0 = Instant::now();
        let mut total = 0.0;
        for _ in 0..20 {
            for q in &queries {
                total += tree.range_query(q, AggregateOp::Sum)?.unwrap_or(0.0);
            }
        }
        let qt = t0.elapsed() / (20 * queries.len() as u32);
        let s = tree.pool_stats();
        println!(
            "frames {frames:>5}: load {load:?} | query {qt:?} | pool after queries: \
             {} hits / {} misses ({:.0}% hit), {} write-backs   (checksum {total:.0})",
            s.hits,
            s.misses,
            100.0 * s.hits as f64 / (s.hits + s.misses).max(1) as f64,
            s.writebacks - after_load.writebacks,
        );
    }
    std::fs::remove_file(&path).ok();
    println!("\nsmaller pools trade memory for physical reads — the axis the paper's\nevaluation lives on.");
    Ok(())
}
