//! Persistence: snapshot a loaded warehouse to disk — as a flat image and
//! as a page chain inside a block-structured database file — then reload
//! and keep inserting (the fully dynamic lifecycle survives restarts).
//!
//! Run with:
//! ```sh
//! cargo run --release --example persistence [num_records]
//! ```

use dctree::storage::{BlockConfig, PagedFile};
use dctree::tpcd::{generate, TpcdConfig};
use dctree::tree::PagedTreeStore;
use dctree::{AggregateOp, DcTree, DcTreeConfig, Mds};

fn main() -> dctree::DcResult<()> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_000);
    let dir = std::env::temp_dir().join("dctree-persistence-example");
    std::fs::create_dir_all(&dir)?;

    println!("loading {n} TPC-D style records…");
    let data = generate(&TpcdConfig::scaled(n, 99));
    let mut tree = DcTree::new(data.schema.clone(), DcTreeConfig::default());
    for r in &data.records {
        tree.insert(r.clone())?;
    }
    let total_before = tree.total_summary();
    println!("  {} records, total {} cents", tree.len(), total_before.sum);

    // 1. Flat image.
    let flat_path = dir.join("warehouse.dct");
    tree.save_to(&flat_path)?;
    let flat_size = std::fs::metadata(&flat_path)?.len();
    println!("\nflat image: {flat_path:?} ({flat_size} bytes)");
    let reloaded = DcTree::load_from(&flat_path)?;
    assert_eq!(reloaded.total_summary(), total_before);
    println!("  reloaded and verified (invariants checked on load)");

    // 2. Page chain inside a block-structured file with an LRU buffer pool.
    let paged_path = dir.join("warehouse.pages");
    let file = PagedFile::create(&paged_path, BlockConfig::DEFAULT)?;
    let mut store = PagedTreeStore::create(file, 64)?;
    store.save(&tree)?;
    let pages = store.pool_mut().file_mut().num_pages();
    println!("\npaged store: {paged_path:?} ({pages} × 4 KiB pages)");
    let mut reloaded = store.load()?;
    println!("  buffer pool after load: {:?}", store.pool_mut().stats());

    // 3. The reloaded warehouse stays fully dynamic.
    reloaded.insert_raw(
        &[
            vec!["EUROPE", "GERMANY", "MACHINERY", "Customer#999999999"],
            vec!["EUROPE", "GERMANY", "Supplier#999999999"],
            vec!["Brand#55", "PROMO COATED PEWTER", "Part#999999999"],
            vec!["1998", "1998-12", "1998-12-24"],
        ],
        123_456,
    )?;
    let all = Mds::all(reloaded.schema());
    println!(
        "\nafter one more insert: COUNT = {:?}, SUM = {:?}",
        reloaded.range_query(&all, AggregateOp::Count)?,
        reloaded.range_query(&all, AggregateOp::Sum)?
    );
    reloaded.check_invariants()?;
    println!("invariants hold — snapshot / restore / resume complete.");

    std::fs::remove_file(&flat_path).ok();
    std::fs::remove_file(&paged_path).ok();
    Ok(())
}
