//! An interactive warehouse console: type aggregate queries in the small
//! query language, answered live by the DC-tree while you could keep
//! inserting — no batch window, the paper's pitch made tangible.
//!
//! Run with:
//! ```sh
//! cargo run --release --example repl [num_records]
//! # or non-interactively:
//! echo "SUM WHERE Customer.Region = 'EUROPE'" | cargo run --release --example repl
//! ```

use std::io::{BufRead, Write};
use std::time::Instant;

use dctree::ql::parse_query;
use dctree::tpcd::{generate, TpcdConfig};
use dctree::{DcTree, DcTreeConfig};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(50_000);
    eprintln!("loading {n} TPC-D style records…");
    let data = generate(&TpcdConfig::scaled(n, 7));
    let mut tree = DcTree::new(data.schema.clone(), DcTreeConfig::default());
    let t0 = Instant::now();
    for r in &data.records {
        tree.insert(r.clone()).expect("insert");
    }
    eprintln!("ready in {:?}. Dimensions and attributes:", t0.elapsed());
    for h in tree.schema().dims() {
        let attrs: Vec<&str> = (0..h.top_level())
            .rev()
            .filter_map(|l| h.schema().attribute_name(l))
            .collect();
        eprintln!("  {} ({})", h.schema().name(), attrs.join(" → "));
    }
    eprintln!(
        "\nexamples:\n  SUM WHERE Customer.Region = 'EUROPE' AND Time.Year = '1996'\n  \
         AVG WHERE Part.Brand = 'Brand#11'\n  \
         COUNT WHERE Supplier.Nation IN ('GERMANY', 'FRANCE')\n  \
         SUM GROUP BY Customer.Region TOP 3\nquit with ctrl-d.\n"
    );

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        eprint!("dc> ");
        let _ = std::io::stderr().flush();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line.eq_ignore_ascii_case("quit") || line.eq_ignore_ascii_case("exit") {
            break;
        }
        match parse_query(tree.schema(), line) {
            Err(e) => eprintln!("error: {e}"),
            Ok(parsed) => {
                let t0 = Instant::now();
                match parsed.group_by {
                    None => match tree.range_query(&parsed.filter, parsed.op) {
                        Ok(Some(v)) => {
                            writeln!(out, "{v:.2}    [{:?}]", t0.elapsed()).ok();
                        }
                        Ok(None) => {
                            writeln!(out, "NULL (empty selection)    [{:?}]", t0.elapsed()).ok();
                        }
                        Err(e) => eprintln!("error: {e}"),
                    },
                    Some((dim, level)) => match tree.group_by(dim, level, &parsed.filter) {
                        Ok(mut groups) => {
                            if let Some(k) = parsed.top {
                                groups.sort_by(|a, b| {
                                    let av = a.1.eval(parsed.op).unwrap_or(f64::MIN);
                                    let bv = b.1.eval(parsed.op).unwrap_or(f64::MIN);
                                    bv.partial_cmp(&av).unwrap_or(std::cmp::Ordering::Equal)
                                });
                                groups.truncate(k);
                            }
                            let h = tree.schema().dim(dim);
                            for (value, summary) in groups {
                                let name = h.name(value).unwrap_or("?");
                                match summary.eval(parsed.op) {
                                    Some(v) => writeln!(out, "{name:<28} {v:.2}").ok(),
                                    None => writeln!(out, "{name:<28} NULL").ok(),
                                };
                            }
                            writeln!(out, "    [{:?}]", t0.elapsed()).ok();
                        }
                        Err(e) => eprintln!("error: {e}"),
                    },
                }
            }
        }
    }
    eprintln!("bye.");
}
