//! Roll-up / drill-down navigation along concept hierarchies — the OLAP
//! interaction pattern the DC-tree's partial ordering is built for (the
//! paper's Fig. 2 argument against artificial total orderings).
//!
//! Starting from `ALL`, the example walks down the Customer hierarchy level
//! by level, at each step querying the children of the currently selected
//! value and following the biggest contributor.
//!
//! Run with:
//! ```sh
//! cargo run --release --example drilldown [num_records]
//! ```

use dctree::tpcd::{generate, TpcdConfig};
use dctree::{AggregateOp, DcTree, DcTreeConfig, DimSet, DimensionId, Mds, ValueId};

fn main() -> dctree::DcResult<()> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_000);
    let data = generate(&TpcdConfig::scaled(n, 3));
    let mut tree = DcTree::new(data.schema.clone(), DcTreeConfig::default());
    for r in &data.records {
        tree.insert(r.clone())?;
    }
    println!("cube loaded: {n} records\n");

    let customer_dim = DimensionId(0);
    let query_for = |tree: &DcTree, value: ValueId| -> Mds {
        let dims = (0..tree.schema().num_dims())
            .map(|d| {
                if d == customer_dim.as_usize() {
                    DimSet::singleton(value)
                } else {
                    DimSet::singleton(tree.schema().dim(DimensionId(d as u16)).all())
                }
            })
            .collect();
        Mds::new(dims)
    };

    // Walk: ALL → Region → Nation → MktSegment → Customer, always following
    // the child with the largest revenue.
    let customer = tree.schema().dim(customer_dim);
    let mut current = customer.all();
    loop {
        let name = customer.name(current)?.to_string();
        let level = current.level();
        let attribute = customer
            .schema()
            .attribute_name(level)
            .unwrap_or("ALL")
            .to_string();
        let total = tree
            .range_query(&query_for(&tree, current), AggregateOp::Sum)?
            .unwrap_or(0.0);
        println!(
            "{attribute:<12} {name:<24} revenue {:>14.2} $",
            total / 100.0
        );

        let children = customer.children(current)?.to_vec();
        if children.is_empty() {
            break;
        }
        println!("  └─ drilling into {} children:", children.len());
        let mut best: Option<(f64, ValueId)> = None;
        for child in children {
            let sum = tree
                .range_query(&query_for(&tree, child), AggregateOp::Sum)?
                .unwrap_or(0.0);
            if best.is_none_or(|(b, _)| sum > b) {
                best = Some((sum, child));
            }
        }
        let (sum, child) = best.expect("non-empty children");
        println!(
            "     biggest contributor: {} ({:.2} $)\n",
            customer.name(child)?,
            sum / 100.0
        );
        current = child;
    }
    println!("\nreached the leaf level — drill-down complete.");
    Ok(())
}
