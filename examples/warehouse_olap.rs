//! A data-warehouse OLAP session on the TPC-D-style cube of the paper's
//! evaluation: load the cube, then answer typical dashboard questions —
//! revenue by region, per-year trends, a drill-down — and compare the
//! DC-tree against a sequential scan on the same data.
//!
//! Run with:
//! ```sh
//! cargo run --release --example warehouse_olap [num_records]
//! ```

use std::time::Instant;

use dctree::scan::FlatTable;
use dctree::storage::BlockConfig;
use dctree::tpcd::{generate, TpcdConfig};
use dctree::{AggregateOp, DcTree, DcTreeConfig, DimSet, DimensionId, Mds};

fn main() -> dctree::DcResult<()> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(50_000);
    println!("generating {n} TPC-D style fact records…");
    let data = generate(&TpcdConfig::scaled(n, 7));

    let mut tree = DcTree::new(data.schema.clone(), DcTreeConfig::default());
    let mut scan = FlatTable::for_schema(BlockConfig::DEFAULT, &data.schema);
    let t0 = Instant::now();
    for r in &data.records {
        tree.insert(r.clone())?;
        scan.insert(r.clone());
    }
    println!(
        "loaded in {:?} ({:.0} inserts/s), height {}, {} nodes\n",
        t0.elapsed(),
        n as f64 / t0.elapsed().as_secs_f64(),
        tree.height(),
        tree.num_nodes()
    );

    let customer = tree.schema().dim(DimensionId(0));
    let time = tree.schema().dim(DimensionId(3));
    let all_dims = |constrained: Vec<(usize, DimSet)>| -> Mds {
        let mut dims: Vec<DimSet> = (0..4)
            .map(|d| DimSet::singleton(tree.schema().dim(DimensionId(d as u16)).all()))
            .collect();
        for (d, set) in constrained {
            dims[d] = set;
        }
        Mds::new(dims)
    };

    // Dashboard 1: revenue by customer region (a roll-up over level 3).
    println!("— revenue by customer region —");
    for region in customer.values_at(3) {
        let q = all_dims(vec![(0, DimSet::singleton(region))]);
        let sum = tree.range_query(&q, AggregateOp::Sum)?.unwrap_or(0.0);
        let count = tree.range_query(&q, AggregateOp::Count)?.unwrap_or(0.0);
        println!(
            "  {:<12} {:>14.2} $   ({count:>6.0} line items)",
            customer.name(region)?,
            sum / 100.0
        );
    }

    // Dashboard 2: per-year revenue trend.
    println!("\n— revenue by year —");
    for year in time.values_at(2) {
        let q = all_dims(vec![(3, DimSet::singleton(year))]);
        let sum = tree.range_query(&q, AggregateOp::Sum)?.unwrap_or(0.0);
        println!("  {}  {:>14.2} $", time.name(year)?, sum / 100.0);
    }

    // Dashboard 3: drill-down — European nations in 1996, average order value.
    println!("\n— drill-down: AVG extended price per European nation, 1996 —");
    let europe = customer
        .values_at(3)
        .find(|&r| customer.name(r).unwrap() == "EUROPE");
    let y1996 = time.values_at(2).find(|&y| time.name(y).unwrap() == "1996");
    if let (Some(europe), Some(y1996)) = (europe, y1996) {
        for &nation in customer.children(europe)? {
            let q = all_dims(vec![
                (0, DimSet::singleton(nation)),
                (3, DimSet::singleton(y1996)),
            ]);
            if let Some(avg) = tree.range_query(&q, AggregateOp::Avg)? {
                println!("  {:<16} {:>10.2} $", customer.name(nation)?, avg / 100.0);
            }
        }
    }

    // Dashboard 4: a pivot table — revenue by region × year, one traversal.
    println!("\n— pivot: revenue by customer region × year (single pass) —");
    {
        let filter = all_dims(vec![]);
        let cells = tree.pivot((DimensionId(0), 3), (DimensionId(3), 2), &filter)?;
        let years: Vec<_> = time.values_at(2).collect();
        print!("  {:<12}", "");
        for &y in &years {
            print!(" {:>10}", time.name(y)?);
        }
        println!();
        for region in customer.values_at(3) {
            print!("  {:<12}", customer.name(region)?);
            for &y in &years {
                let sum = cells
                    .iter()
                    .find(|((r, yy), _)| *r == region && *yy == y)
                    .map(|(_, s)| s.sum as f64 / 100.0)
                    .unwrap_or(0.0);
                print!(" {sum:>10.0}");
            }
            println!();
        }
    }

    // Head-to-head: the same region roll-up against the sequential scan.
    println!("\n— DC-tree vs sequential scan (region roll-up × 50 repetitions) —");
    let regions: Vec<Mds> = customer
        .values_at(3)
        .map(|r| all_dims(vec![(0, DimSet::singleton(r))]))
        .collect();
    let t0 = Instant::now();
    for _ in 0..50 {
        for q in &regions {
            let _ = tree.range_query(q, AggregateOp::Sum)?;
        }
    }
    let tree_time = t0.elapsed();
    let t0 = Instant::now();
    for _ in 0..50 {
        for q in &regions {
            let _ = scan.range_query(&data.schema, q, AggregateOp::Sum)?;
        }
    }
    let scan_time = t0.elapsed();
    println!(
        "  DC-tree {tree_time:?}  |  scan {scan_time:?}  |  speed-up ×{:.1}",
        scan_time.as_secs_f64() / tree_time.as_secs_f64()
    );
    Ok(())
}
