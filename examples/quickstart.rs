//! Quickstart: build a small data cube, insert records one at a time, run
//! range queries with different aggregation operators, and delete.
//!
//! Run with:
//! ```sh
//! cargo run --example quickstart
//! ```

use dctree::{
    AggregateOp, CubeSchema, DcTree, DcTreeConfig, DimSet, DimensionId, HierarchySchema, Mds,
};

fn main() -> dctree::DcResult<()> {
    // A two-dimensional cube: Customer (Region → Nation) × Time (Year →
    // Month), measuring revenue in cents.
    let schema = CubeSchema::new(
        vec![
            HierarchySchema::new("Customer", vec!["Region".into(), "Nation".into()]),
            HierarchySchema::new("Time", vec!["Year".into(), "Month".into()]),
        ],
        "Revenue",
    );
    let mut tree = DcTree::new(schema, DcTreeConfig::default());

    // Fully dynamic: every insert immediately updates the index and the
    // materialized aggregates — no nightly batch window.
    #[allow(clippy::inconsistent_digit_grouping)] // NNN_00 reads as dollars_cents
    let sales: &[(&str, &str, &str, &str, i64)] = &[
        ("EUROPE", "GERMANY", "1996", "01", 120_00),
        ("EUROPE", "GERMANY", "1996", "03", 80_00),
        ("EUROPE", "FRANCE", "1996", "07", 200_00),
        ("EUROPE", "FRANCE", "1997", "02", 50_00),
        ("ASIA", "JAPAN", "1996", "11", 300_00),
        ("ASIA", "CHINA", "1997", "05", 150_00),
    ];
    for &(region, nation, year, month, cents) in sales {
        tree.insert_raw(&[vec![region, nation], vec![year, month]], cents)?;
    }
    println!(
        "inserted {} records, tree height {}",
        tree.len(),
        tree.height()
    );

    // The root materializes the total: no traversal needed.
    let total = tree.total_summary();
    println!(
        "total revenue: {} cents over {} sales",
        total.sum, total.count
    );

    // Range query: European revenue in 1996. A range is an MDS — one set of
    // attribute values per dimension, each on a chosen hierarchy level.
    let customer = tree.schema().dim(DimensionId(0));
    let time = tree.schema().dim(DimensionId(1));
    let europe = customer.lookup_path(&["EUROPE"]).expect("interned above");
    let y1996 = time.lookup_path(&["1996"]).expect("interned above");
    let query = Mds::new(vec![DimSet::singleton(europe), DimSet::singleton(y1996)]);

    for op in AggregateOp::ALL {
        println!(
            "{op}(revenue | EUROPE, 1996) = {:?}",
            tree.range_query(&query, op)?
        );
    }

    // Drill down: Germany only, any year.
    let germany = customer
        .lookup_path(&["EUROPE", "GERMANY"])
        .expect("interned above");
    let query = Mds::new(vec![
        DimSet::singleton(germany),
        DimSet::singleton(time.all()),
    ]);
    println!(
        "SUM(revenue | GERMANY, any year) = {:?}",
        tree.range_query(&query, AggregateOp::Sum)?
    );

    // Fully dynamic also means deletion: remove one sale and re-check.
    let victim = tree.iter_records().next().unwrap().record.clone();
    let gone = tree.delete(&victim)?;
    println!("deleted one record: {gone}; {} remain", tree.len());
    tree.check_invariants()?;
    Ok(())
}
