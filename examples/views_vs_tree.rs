//! The paper's introduction, executable: materialized views (the classic
//! static warehouse acceleration) against the fully dynamic DC-tree.
//!
//! Three rounds:
//! 1. anticipated roll-ups — the views' home turf;
//! 2. ad-hoc conjunctive queries — the lattice misses, the tree answers;
//! 3. a stream of updates with a deletion — the views go stale and need a
//!    rebuild window, the tree absorbs everything online.
//!
//! Run with:
//! ```sh
//! cargo run --release --example views_vs_tree [num_records]
//! ```

use std::time::Instant;

use dctree::mview::{rollup_lattice, ViewSet};
use dctree::query::{RangeQueryGen, ValuePick};
use dctree::tpcd::{generate, TpcdConfig};
use dctree::{AggregateOp, DcTree, DcTreeConfig, DimSet, DimensionId, Mds};

fn main() -> dctree::DcResult<()> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(30_000);
    println!("generating {n} TPC-D style records…");
    let data = generate(&TpcdConfig::scaled(n, 13));

    let mut tree = DcTree::new(data.schema.clone(), DcTreeConfig::default());
    let t0 = Instant::now();
    for r in &data.records {
        tree.insert(r.clone())?;
    }
    let tree_load = t0.elapsed();
    let t0 = Instant::now();
    let mut views = ViewSet::build(
        data.schema.clone(),
        rollup_lattice(&data.schema),
        &data.records,
    )?;
    let views_load = t0.elapsed();
    println!(
        "load: DC-tree {tree_load:?} | {} roll-up views {views_load:?} ({} cells)\n",
        views.views().len(),
        views.total_cells()
    );

    // Round 1 — anticipated roll-ups.
    let customer = data.schema.dim(DimensionId(0));
    let rollups: Vec<Mds> = customer
        .values_at(2)
        .map(|nation| {
            Mds::new(
                (0..4)
                    .map(|d| {
                        if d == 0 {
                            DimSet::singleton(nation)
                        } else {
                            DimSet::singleton(data.schema.dim(DimensionId(d as u16)).all())
                        }
                    })
                    .collect(),
            )
        })
        .collect();
    let t0 = Instant::now();
    for q in &rollups {
        let _ = views.answer(q)?.expect("roll-up in lattice");
    }
    let views_time = t0.elapsed() / rollups.len() as u32;
    let t0 = Instant::now();
    for q in &rollups {
        let _ = tree.range_query(q, AggregateOp::Sum)?;
    }
    let tree_time = t0.elapsed() / rollups.len() as u32;
    println!(
        "round 1 — anticipated nation roll-ups ({}): views {views_time:?}/q, tree {tree_time:?}/q",
        rollups.len()
    );

    // Round 2 — ad-hoc conjunctive queries (the §5.2 workload).
    let mut gen = RangeQueryGen::new(0.05, ValuePick::ContiguousRun, 3);
    let adhoc: Vec<Mds> = (0..50).map(|_| gen.generate(&data.schema)).collect();
    let mut misses = 0;
    for q in &adhoc {
        if views.answer(q)?.is_none() {
            misses += 1;
        }
    }
    let t0 = Instant::now();
    for q in &adhoc {
        let _ = tree.range_summary(q)?;
    }
    let tree_time = t0.elapsed() / adhoc.len() as u32;
    println!(
        "round 2 — ad-hoc conjunctive queries: lattice misses {misses}/{} — \
         the tree answers all of them at {tree_time:?}/q",
        adhoc.len()
    );

    // Round 3 — the dynamic gap.
    let victim = data.records[0].clone();
    let t0 = Instant::now();
    tree.delete(&victim)?;
    let tree_delete = t0.elapsed();
    views.delete(&victim);
    let stale = views.answer(&Mds::all(&data.schema)).is_err();
    let t0 = Instant::now();
    views.rebuild(&data.records[1..])?;
    let rebuild = t0.elapsed();
    println!(
        "round 3 — one deletion: tree absorbed it in {tree_delete:?}; views went \
         stale ({stale}) and needed a {rebuild:?} rebuild window."
    );
    println!(
        "\nThat window is the paper's motivation: \"the contents of the data \
         warehouse is not always up to date … bulk incremental updates \
         require a considerable time window\"."
    );
    Ok(())
}
