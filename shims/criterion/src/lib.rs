//! Offline drop-in replacement for the subset of `criterion` this workspace
//! uses. Measures wall time with `std::time::Instant` and reports
//! median/min per benchmark — no statistical regression analysis, no HTML
//! reports. When invoked by `cargo test` (which passes `--test` to
//! `harness = false` bench binaries), each benchmark body runs once as a
//! smoke test so the suite stays fast.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. The shim runs one routine call
/// per setup call regardless of variant, which preserves semantics (every
/// routine call sees a fresh input) at some extra setup cost.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    smoke_test: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke_test = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 50,
            smoke_test,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (builder style).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            smoke_test: self.smoke_test,
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let sample_size = self.sample_size;
        let smoke = self.smoke_test;
        run_one(&id, sample_size, smoke, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    smoke_test: bool,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, self.smoke_test, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, smoke: bool, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size: if smoke { 1 } else { sample_size },
    };
    f(&mut b);
    if smoke {
        println!("bench {id}: ok (smoke test)");
        return;
    }
    b.samples.sort_unstable();
    if b.samples.is_empty() {
        println!("bench {id}: no samples");
        return;
    }
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    println!(
        "bench {id}: median {median:?}  min {min:?}  ({} samples)",
        b.samples.len()
    );
}

/// Passed to each benchmark body; collects timed samples.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` `sample_size` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            let out = routine();
            self.samples.push(t0.elapsed());
            drop(out);
        }
    }

    /// Times `routine` over fresh inputs produced by `setup` (setup is
    /// untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            let out = routine(input);
            self.samples.push(t0.elapsed());
            drop(out);
        }
    }
}

/// Opaque-to-the-optimizer value laundering.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group binding, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets_run(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("iter", |b| b.iter(|| black_box(2 + 2)));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = targets_run
    }

    #[test]
    fn group_machinery_runs() {
        benches();
    }
}
