//! Offline drop-in replacement for the subset of `parking_lot` this
//! workspace uses, implemented over `std::sync`. The semantic difference
//! parking_lot callers rely on — no lock poisoning — is preserved by
//! recovering the guard from a poisoned `std` lock (`PoisonError::into_inner`),
//! matching parking_lot's behaviour of letting later threads proceed after
//! a panicking critical section.

use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A mutex with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Blocks on the guard until notified (spurious wakeups possible, as in
    /// parking_lot).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Temporarily move the guard out to satisfy std's by-value API.
        take_mut_guard(&self.0, guard);
    }

    /// Blocks until notified or `timeout` elapses, reporting which one
    /// happened (spurious wakeups possible, as in parking_lot).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_with(guard, |g| {
            let (g, result) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = result.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }
}

/// Whether a [`Condvar::wait_for`] returned because the timeout elapsed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(self) -> bool {
        self.0
    }
}

fn take_mut_guard<T>(cv: &std::sync::Condvar, guard: &mut MutexGuard<'_, T>) {
    // Safety-free shuffle: std's Condvar::wait consumes and returns the
    // guard. Replace in place via Option dance.
    replace_with(guard, |g| {
        cv.wait(g).unwrap_or_else(PoisonError::into_inner)
    });
}

fn replace_with<'a, T>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    // std::mem::replace needs a placeholder we don't have; use ptr::read /
    // write with an abort-on-panic guard instead.
    struct AbortOnDrop;
    impl Drop for AbortOnDrop {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    unsafe {
        let old = std::ptr::read(slot);
        let bomb = AbortOnDrop;
        let new = f(old);
        std::mem::forget(bomb);
        std::ptr::write(slot, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_survives_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: later threads still acquire the lock.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let pair = (Mutex::new(false), Condvar::new());
        let mut flag = pair.0.lock();
        let result = pair
            .1
            .wait_for(&mut flag, std::time::Duration::from_millis(5));
        assert!(result.timed_out());
        assert!(!*flag, "guard is reacquired intact");
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
