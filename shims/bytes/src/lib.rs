//! Offline drop-in replacement for the subset of `bytes` this workspace
//! uses: `BytesMut` as a growable buffer plus little-endian `Buf`/`BufMut`
//! accessors. Backed by a plain `Vec<u8>` — the zero-copy refcounting of the
//! real crate is not load-bearing for the codec use here.

/// Growable byte buffer (subset of `bytes::BytesMut`).
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.inner
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

/// Write-side accessors (subset of `bytes::BufMut`).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side accessors (subset of `bytes::Buf`).
///
/// # Panics
/// Like the real crate, the `get_*` methods panic when fewer bytes remain
/// than the read requires; callers bound-check first (as the codec does).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "Buf: not enough bytes remaining");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(9);
        buf.put_u16_le(513);
        buf.put_u32_le(70_000);
        buf.put_u64_le(1 << 40);
        buf.put_i64_le(-7);
        buf.put_slice(b"dc");
        let v = buf.to_vec();
        let mut r: &[u8] = &v;
        assert_eq!(r.get_u8(), 9);
        assert_eq!(r.get_u16_le(), 513);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_i64_le(), -7);
        assert_eq!(r.remaining(), 2);
        assert_eq!(r, b"dc");
    }

    #[test]
    #[should_panic(expected = "not enough bytes")]
    fn short_read_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
