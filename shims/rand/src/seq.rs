//! Slice sampling helpers (`rand::seq::SliceRandom` subset).

use crate::Rng;

/// Random selection and shuffling over slices.
pub trait SliceRandom {
    type Item;

    /// A uniformly random element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// `amount` distinct elements in random order (all of them if
    /// `amount > len`).
    fn choose_multiple<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Item>;

    /// Uniform in-place Fisher–Yates shuffle.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Shuffles the first `amount` positions; returns (shuffled, rest).
    fn partial_shuffle<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        amount: usize,
    ) -> (&mut [Self::Item], &mut [Self::Item]);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.next_u64() as usize % self.len())
        }
    }

    fn choose_multiple<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&T> {
        let amount = amount.min(self.len());
        // Partial Fisher–Yates over an index vector.
        let mut idx: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = i + (rng.next_u64() as usize % (idx.len() - i));
            idx.swap(i, j);
        }
        idx[..amount]
            .iter()
            .map(|&i| &self[i])
            .collect::<Vec<_>>()
            .into_iter()
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.next_u64() as usize % (i + 1));
        }
    }

    fn partial_shuffle<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        amount: usize,
    ) -> (&mut [T], &mut [T]) {
        let amount = amount.min(self.len());
        for i in 0..amount {
            let j = i + (rng.next_u64() as usize % (self.len() - i));
            self.swap(i, j);
        }
        self.split_at_mut(amount)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn choose_multiple_is_distinct() {
        let v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "duplicates in {picked:?}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(2);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn partial_shuffle_splits() {
        let mut v: Vec<u32> = (0..20).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let (head, tail) = v.partial_shuffle(&mut rng, 5);
        assert_eq!(head.len(), 5);
        assert_eq!(tail.len(), 15);
    }

    #[test]
    fn choose_empty_is_none() {
        let v: Vec<u32> = Vec::new();
        let mut rng = StdRng::seed_from_u64(4);
        assert!(v.choose(&mut rng).is_none());
    }
}
