//! Offline drop-in replacement for the subset of `rand` 0.8 this workspace
//! uses. The build container has no crates.io access, so the workspace
//! resolves `rand` to this shim by path (see the root `Cargo.toml`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — high quality
//! and deterministic per seed, but **its streams differ from the real
//! `rand::rngs::StdRng`**: equal seeds reproduce equal data within this
//! workspace only, which is all the tests and benches rely on.

pub mod rngs;
pub mod seq;

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from a (half-open or inclusive) range.
    ///
    /// # Panics
    /// Panics on an empty range, like the real `rand`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The standard distribution: full-range integers, `[0, 1)` floats.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full u64 domain.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = f64::sample_standard(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = f64::sample_standard(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }
}
