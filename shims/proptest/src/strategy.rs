//! The `Strategy` trait and its combinators (sampling only — no shrinking).

use rand::prelude::*;

/// A generator of random values. Unlike the real proptest (value *trees*
/// supporting shrinking), the shim's strategies sample flat values.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a dependent strategy from each value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// A `Vec` of strategies samples each element, like the real crate.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// `prop_flat_map` combinator.
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// `prop_filter` combinator.
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 consecutive samples",
            self.whence
        );
    }
}

/// Weighted choice among boxed same-valued strategies (`prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> OneOf<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        OneOf { arms, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight bookkeeping is exhaustive")
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: ranges, any::<T>(), tuples.
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Full-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // Bias toward finite "normal" values but include edge cases.
        match rng.gen_range(0u8..16) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            _ => f64::from_bits(rng.next_u64()),
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}
