//! Sampling strategies over explicit option lists (`prop::sample` subset).

use rand::prelude::*;

use crate::strategy::Strategy;

/// Uniformly selects one of the given options.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select over an empty option list");
    Select { options }
}

pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}
