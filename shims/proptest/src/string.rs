//! String strategies from pattern literals.
//!
//! The real proptest compiles any regex into a generator. The shim
//! understands the shape this workspace actually uses — `.{min,max}`
//! (length-bounded arbitrary text) — and degrades to bounded arbitrary
//! ASCII for any other pattern, which keeps "never panics on arbitrary
//! input" fuzz properties meaningful.

use rand::prelude::*;

use crate::strategy::Strategy;

impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> String {
        let (min, max) = parse_dot_repetition(self).unwrap_or((0, 40));
        let len = rng.gen_range(min..=max);
        (0..len).map(|_| arbitrary_char(rng)).collect()
    }
}

/// Parses exactly `.{min,max}` (the workspace's only pattern shape).
fn parse_dot_repetition(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// A character mix that stresses lexers: mostly printable ASCII, with
/// whitespace, quotes, and multi-byte Unicode sprinkled in.
fn arbitrary_char(rng: &mut StdRng) -> char {
    match rng.gen_range(0u8..10) {
        0 => *['\'', '"', '(', ')', ',', '.', '=', '{', '}']
            .choose(rng)
            .unwrap(),
        1 => *[' ', '\t', '\n', '\r'].choose(rng).unwrap(),
        2 => *['é', 'ß', '→', '日', '💥', '\u{0}'].choose(rng).unwrap(),
        _ => rng.gen_range(0x20u32..0x7f).try_into().unwrap(),
    }
}
