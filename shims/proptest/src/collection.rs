//! Collection strategies (`prop::collection` subset).

use std::collections::BTreeSet;

use rand::prelude::*;

use crate::strategy::Strategy;

/// A size specification for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.min..self.max)
    }
}

/// `Vec` strategy: `size`-many samples of `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// `BTreeSet` strategy: distinct samples of `element`. If the element
/// domain is too small to reach the drawn size, the set is returned at the
/// size reachable within a bounded number of attempts (the real crate
/// similarly gives up on duplicates).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < target * 20 + 20 {
            out.insert(self.element.sample(rng));
            attempts += 1;
        }
        out
    }
}
