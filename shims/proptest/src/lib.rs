//! Offline drop-in replacement for the subset of `proptest` this workspace
//! uses. The build container has no crates.io access, so the workspace
//! resolves `proptest` to this shim by path (see the root `Cargo.toml`).
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its case index and seed
//!   instead of a minimal counterexample;
//! * strategies are sampled with the workspace `rand` shim, seeded
//!   deterministically from the test-function name, so failures reproduce
//!   across runs;
//! * the string strategy understands only the patterns this workspace uses
//!   (`.{a,b}`-style length-bounded arbitrary text) rather than full regex.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;

pub use strategy::{any, Arbitrary, Just, Strategy};

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Per-`proptest!` block configuration. Only `cases` is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; the shim keeps it and lets
        // PROPTEST_CASES override for quick local runs.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::prelude::{SeedableRng, StdRng};

    /// Deterministic per-test seed: FNV-1a over the test path.
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Runs one sampled case, decorating any panic with enough context to
    /// reproduce (no shrinking in the shim).
    pub fn run_case(name: &str, case: u32, seed: u64, body: impl FnOnce()) {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
        if let Err(payload) = result {
            eprintln!(
                "proptest shim: property `{name}` failed on case {case} \
                 (seed {seed:#x}); rerun reproduces it deterministically"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// The `proptest!` block: expands each `fn name(x in strategy, ..) { .. }`
/// into a plain `#[test]` (the `#[test]` attribute is part of the input and
/// is re-emitted) that samples and runs `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __seed = $crate::__rt::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut __rng =
                <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(__seed);
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                $crate::__rt::run_case(stringify!($name), __case, __seed, move || $body);
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Weighted or unweighted choice among same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, ::std::boxed::Box::new($strat) as _)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof!($(1 => $strat),+)
    };
}

/// Property assertion; the shim maps it to a plain panic (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Sampled integers stay in range.
        #[test]
        fn ranges_respected(a in 3u8..17, b in -5i64..=5, f in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..=5).contains(&b));
            prop_assert!((0.0..1.0).contains(&f));
        }

        /// Vec strategy respects the size range and element strategy.
        #[test]
        fn vec_strategy(v in prop::collection::vec(0u32..10, 2..8)) {
            prop_assert!((2..8).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        /// Tuple + map + flat_map compose.
        #[test]
        fn combinators(
            pair in (0u8..4, 10u8..20).prop_map(|(a, b)| (b, a)),
            dep in (1usize..5).prop_flat_map(|n| prop::collection::vec(Just(7u8), n..n + 1)),
        ) {
            prop_assert!(pair.0 >= 10 && pair.1 < 4);
            prop_assert!(!dep.is_empty() && dep.iter().all(|&x| x == 7));
        }

        /// Weighted oneof only produces arm values.
        #[test]
        fn oneof(v in prop_oneof![3 => Just(1u8), 1 => Just(2u8)]) {
            prop_assert!(v == 1u8 || v == 2u8);
        }

        /// String pattern strategy bounds the char length.
        #[test]
        fn string_pattern(s in ".{0,12}") {
            prop_assert!(s.chars().count() <= 12);
        }

        /// btree_set yields distinct ordered values within the size cap.
        #[test]
        fn btree_set(s in prop::collection::btree_set(0u32..100, 1..10)) {
            prop_assert!(!s.is_empty() && s.len() < 10);
        }

        /// select picks from the given options.
        #[test]
        fn select(v in prop::sample::select(vec!["a", "b", "c"])) {
            prop_assert!(["a", "b", "c"].contains(&v));
        }
    }

    #[test]
    fn seeds_are_stable_across_calls() {
        assert_eq!(crate::__rt::seed_for("x::y"), crate::__rt::seed_for("x::y"));
        assert_ne!(crate::__rt::seed_for("x::y"), crate::__rt::seed_for("x::z"));
    }
}
