//! Offline drop-in replacement for the subset of `crossbeam` this workspace
//! uses: scoped threads, implemented over `std::thread::scope` (stable since
//! Rust 1.63, which is why the real crate's scope machinery is no longer
//! load-bearing here).

use std::any::Any;

/// Scoped-thread error type, mirroring `crossbeam::thread::Result`.
pub type ScopeResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

/// A handle that lets spawned closures spawn further scoped threads, like
/// `crossbeam::thread::Scope`. Copyable reference wrapper over std's scope.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope handle so it
    /// can spawn nested threads (crossbeam's signature).
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = *self;
        self.inner.spawn(move || f(&handle))
    }
}

/// Runs `f` with a scope handle; joins all spawned threads before
/// returning. Returns `Err` if any unjoined spawned thread panicked —
/// crossbeam's contract — by catching the propagated panic.
pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

pub mod thread {
    pub use crate::{scope, Scope, ScopeResult as Result};
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_collects() {
        let data = vec![1u64, 2, 3, 4];
        let total = std::sync::atomic::AtomicU64::new(0);
        crate::scope(|s| {
            for &v in &data {
                let total = &total;
                s.spawn(move |_| total.fetch_add(v, std::sync::atomic::Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(total.into_inner(), 10);
    }

    #[test]
    fn nested_spawn_through_handle() {
        let hits = std::sync::atomic::AtomicU64::new(0);
        crate::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(hits.into_inner(), 1);
    }

    #[test]
    fn child_panic_reports_err() {
        let r = crate::scope(|s| {
            s.spawn(|_| panic!("child dies"));
        });
        assert!(r.is_err());
    }
}
