#!/usr/bin/env bash
# Runs the test suite under ThreadSanitizer (requires a nightly toolchain
# with rust-src). The serving engine's writer threads, epoch snapshot
# publication, and parallel scatter-gather are the interesting targets:
#
#   ./tsan.sh -p dc-serve
#
# Any extra arguments are forwarded to `cargo test`.
set -euo pipefail

if [ "$(uname)" == "Darwin" ]; then
    TARGET=x86_64-apple-darwin
else
    TARGET=x86_64-unknown-linux-gnu
fi

RUSTFLAGS="-Z sanitizer=thread" \
RUSTDOCFLAGS="-Z sanitizer=thread" \
RUST_TEST_THREADS=1 \
    cargo +nightly test -Z build-std --target "$TARGET" "$@"
