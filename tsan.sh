#!/usr/bin/env bash
# Runs tests under ThreadSanitizer (requires a nightly toolchain with the
# rust-src component: `rustup component add rust-src --toolchain nightly`).
# The serving engine's writer threads, epoch snapshot publication, group
# commit, and parallel scatter-gather are the interesting targets:
#
#   ./tsan.sh -p dc-serve
#   ./tsan.sh -p dc-durable --features fault-injection
#   ./tsan.sh --test crash_recovery          # engine-level fault harness
#   ./tsan.sh                                # whole workspace
#
# Any arguments are forwarded to `cargo test`; with none, the whole
# workspace is tested. `-Z build-std` needs an explicit --target, which is
# detected from the nightly toolchain itself so this works on any host.
set -euo pipefail

TARGET=$(rustc +nightly -vV | sed -n 's/^host: //p')
if [ -z "$TARGET" ]; then
    echo "error: could not detect the nightly host target triple" >&2
    exit 1
fi

if [ "$#" -eq 0 ]; then
    set -- --workspace
fi

RUSTFLAGS="-Z sanitizer=thread" \
RUSTDOCFLAGS="-Z sanitizer=thread" \
RUST_TEST_THREADS=1 \
    cargo +nightly test -Z build-std --target "$TARGET" "$@"
