//! # dctree
//!
//! Facade crate for the DC-tree workspace — a full reproduction of
//! *"The DC-Tree: A Fully Dynamic Index Structure for Data Warehouses"*
//! (Ester, Kohlhammer, Kriegel; ICDE 2000).
//!
//! Re-exports the public API of every workspace crate under stable module
//! names, and adds [`ConcurrentDcTree`], a thread-safe wrapper for the
//! always-online deployment scenario that motivates the paper ("global
//! companies … will more and more want to have their data warehouse
//! available 24 hours a day").
//!
//! ## Crate map
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`common`] | `dc-common` | IDs, measures, aggregate summaries, errors |
//! | [`hierarchy`] | `dc-hierarchy` | concept hierarchies, cube schema |
//! | [`mds`] | `dc-mds` | minimum describing sequences |
//! | [`storage`] | `dc-storage` | block model, I/O stats, binary codec |
//! | [`tree`] | `dc-tree` | **the DC-tree** |
//! | [`xtree`] | `dc-xtree` | X-tree baseline |
//! | [`scan`] | `dc-scan` | sequential-scan baseline |
//! | [`tpcd`] | `dc-tpcd` | TPC-D-style cube generator |
//! | [`query`] | `dc-query` | §5.2 range-query workloads |
//! | [`bitmap`] | `dc-bitmap` | compressed bitmap-index baseline (§2 related work) |
//! | [`ql`] | `dc-ql` | the small aggregate-query language (`SUM WHERE … GROUP BY …`) |
//! | [`mview`] | `dc-mview` | materialized group-by views (the static §2 baseline) |
//! | [`plan`] | `dc-plan` | cost-based planner choosing between the four engines, with `EXPLAIN` |
//! | [`durable`] | `dc-durable` | write-ahead log, checkpoints, crash recovery |
//! | [`cache`] | `dc-cache` | semantic aggregate cache with write-through delta maintenance |
//! | [`serve`] | `dc-serve` | sharded concurrent serving engine + dc-ql TCP front-end |
//! | [`oocore`] | `dc-oocore` | out-of-core shards: concurrent scan-resistant buffer pool, compressed node pages |
//! | [`replica`] | `dc-replica` | WAL segment-shipping replication: follower reads, read-your-LSN, promotion |

pub use dc_bitmap as bitmap;
pub use dc_cache as cache;
pub use dc_common as common;
pub use dc_durable as durable;
pub use dc_hierarchy as hierarchy;
pub use dc_mds as mds;
pub use dc_mview as mview;
pub use dc_oocore as oocore;
pub use dc_plan as plan;
pub use dc_ql as ql;
pub use dc_query as query;
pub use dc_replica as replica;
pub use dc_scan as scan;
pub use dc_serve as serve;
pub use dc_storage as storage;
pub use dc_tpcd as tpcd;
pub use dc_tree as tree;
pub use dc_xtree as xtree;

// The most commonly used items, flattened for convenience.
pub use dc_common::{
    AggregateOp, DcError, DcResult, DimensionId, Measure, MeasureSummary, RecordId, ValueId,
};
pub use dc_hierarchy::{ConceptHierarchy, CubeSchema, HierarchySchema, Record};
pub use dc_mds::{DimSet, Mds};
pub use dc_serve::{
    DiskOptions, EngineConfig, PartitionPolicy, ShardedDcTree, StorageMode, SyncPolicy, WalOptions,
};
pub use dc_tree::{DcTree, DcTreeConfig};

use parking_lot::RwLock;

/// A thread-safe DC-tree: many concurrent readers or one writer.
///
/// The paper motivates the DC-tree with warehouses that stay online while
/// updates stream in; this wrapper provides the minimal concurrency story
/// for that deployment — cheap single-record writes (≈ tens of
/// microseconds) interleaved with analytical reads. See the
/// `streaming_updates` example for a full producer/consumer setup.
pub struct ConcurrentDcTree {
    inner: RwLock<DcTree>,
}

impl ConcurrentDcTree {
    /// Wraps a tree.
    pub fn new(tree: DcTree) -> Self {
        ConcurrentDcTree {
            inner: RwLock::new(tree),
        }
    }

    /// Inserts a raw record under the write lock.
    pub fn insert_raw<S: AsRef<str>>(
        &self,
        paths: &[Vec<S>],
        measure: Measure,
    ) -> DcResult<RecordId> {
        self.inner.write().insert_raw(paths, measure)
    }

    /// Inserts a pre-interned record under the write lock.
    pub fn insert(&self, record: Record) -> DcResult<RecordId> {
        self.inner.write().insert(record)
    }

    /// Deletes a record under the write lock.
    pub fn delete(&self, record: &Record) -> DcResult<bool> {
        self.inner.write().delete(record)
    }

    /// Runs a range query under a read lock (concurrent with other readers).
    pub fn range_query(&self, range: &Mds, op: AggregateOp) -> DcResult<Option<f64>> {
        self.inner.read().range_query(range, op)
    }

    /// Runs a range query returning the full summary.
    pub fn range_summary(&self, range: &Mds) -> DcResult<MeasureSummary> {
        self.inner.read().range_summary(range)
    }

    /// Number of records stored.
    pub fn len(&self) -> u64 {
        self.inner.read().len()
    }

    /// `true` iff empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Runs `f` with shared access to the underlying tree.
    pub fn with_read<R>(&self, f: impl FnOnce(&DcTree) -> R) -> R {
        f(&self.inner.read())
    }

    /// Runs `f` with exclusive access to the underlying tree.
    pub fn with_write<R>(&self, f: impl FnOnce(&mut DcTree) -> R) -> R {
        f(&mut self.inner.write())
    }

    /// Unwraps the inner tree.
    pub fn into_inner(self) -> DcTree {
        self.inner.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_wrapper_basics() {
        let schema = CubeSchema::new(
            vec![HierarchySchema::new("D", vec!["A".into(), "B".into()])],
            "M",
        );
        let tree = ConcurrentDcTree::new(DcTree::new(schema, DcTreeConfig::default()));
        assert!(tree.is_empty());
        tree.insert_raw(&[vec!["a1", "b1"]], 10).unwrap();
        tree.insert_raw(&[vec!["a1", "b2"]], 20).unwrap();
        assert_eq!(tree.len(), 2);
        let q = tree.with_read(|t| Mds::all(t.schema()));
        assert_eq!(tree.range_query(&q, AggregateOp::Sum).unwrap(), Some(30.0));
        let rec = tree.with_read(|t| t.iter_records().next().unwrap().record.clone());
        assert!(tree.delete(&rec).unwrap());
        assert_eq!(tree.len(), 1);
    }
}
