//! # dc-scan
//!
//! The sequential-scan baseline of the DC-tree evaluation (§5.2):
//! "the range query algorithm for the sequential search simply runs through
//! every existing data record and determines whether this data record is
//! contained in the range_mds or not. In the positive case, the measure
//! value of the data record is added to the result."
//!
//! The table is a flat file of fixed-size records; logical I/O is charged
//! per block of `records_per_block` records, so experiments can compare page
//! accesses as well as wall time.

use dc_common::{AggregateOp, DcError, DcResult, DimensionId, Level, MeasureSummary, ValueId};
use dc_hierarchy::{CubeSchema, Record};
use dc_mds::Mds;
use dc_storage::{BlockConfig, IoStats, IoTracker};

/// A flat record table scanned in full by every query.
#[derive(Clone, Debug)]
pub struct FlatTable {
    records: Vec<Record>,
    records_per_block: usize,
    io: IoTracker,
}

impl FlatTable {
    /// Creates an empty table. `record_bytes` is the on-disk size of one
    /// record (dimension IDs + measure), used to derive records per block.
    pub fn new(block: BlockConfig, record_bytes: usize) -> Self {
        let records_per_block = (block.block_size / record_bytes.max(1)).max(1);
        FlatTable {
            records: Vec::new(),
            records_per_block,
            io: IoTracker::new(),
        }
    }

    /// Creates a table sized for records of `num_dims` dimensions
    /// (4 bytes per leaf ID + 8 bytes measure).
    pub fn for_schema(block: BlockConfig, schema: &CubeSchema) -> Self {
        Self::new(block, schema.num_dims() * 4 + 8)
    }

    /// Appends a record (the "insert file" of the evaluation is
    /// append-only).
    pub fn insert(&mut self, record: Record) {
        self.records.push(record);
        self.io.write(1);
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` iff empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records per simulated block.
    pub fn records_per_block(&self) -> usize {
        self.records_per_block
    }

    /// Logical I/O counters.
    pub fn io_stats(&self) -> IoStats {
        self.io.stats()
    }

    /// Resets the I/O counters.
    pub fn reset_io(&self) {
        self.io.reset();
    }

    /// Starts recording a block-access trace (see `DcTree::begin_trace`).
    pub fn begin_trace(&self) {
        self.io.begin_trace();
    }

    /// Stops recording and returns the trace.
    pub fn end_trace(&self) -> Vec<u64> {
        self.io.end_trace()
    }

    /// Full-scan range query returning the mergeable summary.
    pub fn range_summary(&self, schema: &CubeSchema, range: &Mds) -> DcResult<MeasureSummary> {
        if range.num_dims() != schema.num_dims() {
            return Err(DcError::DimensionMismatch {
                expected: schema.num_dims(),
                got: range.num_dims(),
            });
        }
        // A sequential scan reads every block, selected or not.
        let blocks = self.records.len().div_ceil(self.records_per_block) as u32;
        for b in 0..blocks.max(1) as u64 {
            self.io.read_keyed(b, 1);
        }
        let mut acc = MeasureSummary::empty();
        for r in &self.records {
            if range.contains_record(schema, r)? {
                acc.add(r.measure);
            }
        }
        Ok(acc)
    }

    /// Removes the first record equal to `record` (dims and measure).
    /// Returns `false` when none matches. Like the insert file, deletion
    /// rewrites the tail of the flat file — the scan baseline has no
    /// cheaper option.
    pub fn delete(&mut self, record: &Record) -> bool {
        match self
            .records
            .iter()
            .position(|r| r.dims == record.dims && r.measure == record.measure)
        {
            Some(i) => {
                self.records.remove(i);
                // Every block from the hole to the end is rewritten.
                let from = i / self.records_per_block;
                let to = self.records.len().div_ceil(self.records_per_block);
                self.io.write((to.saturating_sub(from) as u32).max(1));
                true
            }
            None => false,
        }
    }

    /// Full-scan group-by: one pass over every block, each selected record
    /// keyed by its ancestor at `(dim, level)`. Groups are returned sorted
    /// by value id; empty groups are omitted.
    pub fn group_by(
        &self,
        schema: &CubeSchema,
        dim: DimensionId,
        level: Level,
        range: &Mds,
    ) -> DcResult<Vec<(ValueId, MeasureSummary)>> {
        if range.num_dims() != schema.num_dims() {
            return Err(DcError::DimensionMismatch {
                expected: schema.num_dims(),
                got: range.num_dims(),
            });
        }
        let blocks = self.records.len().div_ceil(self.records_per_block) as u32;
        for b in 0..blocks.max(1) as u64 {
            self.io.read_keyed(b, 1);
        }
        let h = schema.dim(dim);
        let mut groups: std::collections::BTreeMap<ValueId, MeasureSummary> = Default::default();
        for r in &self.records {
            if range.contains_record(schema, r)? {
                let key = h.ancestor_at(r.dims[dim.as_usize()], level)?;
                groups.entry(key).or_default().add(r.measure);
            }
        }
        Ok(groups.into_iter().collect())
    }

    /// Full-scan range query evaluating one aggregation operator.
    pub fn range_query(
        &self,
        schema: &CubeSchema,
        range: &Mds,
        op: AggregateOp,
    ) -> DcResult<Option<f64>> {
        Ok(self.range_summary(schema, range)?.eval(op))
    }

    /// Iterates the stored records in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_hierarchy::HierarchySchema;
    use dc_mds::DimSet;

    fn setup() -> (CubeSchema, FlatTable) {
        let mut schema = CubeSchema::new(
            vec![
                HierarchySchema::new("Customer", vec!["Region".into(), "Nation".into()]),
                HierarchySchema::new("Time", vec!["Year".into(), "Month".into()]),
            ],
            "Price",
        );
        let mut table = FlatTable::for_schema(BlockConfig::DEFAULT, &schema);
        for (r, n, y, m, price) in [
            ("Europe", "Germany", "1996", "01", 100),
            ("Europe", "France", "1996", "02", 250),
            ("Asia", "Japan", "1997", "01", 400),
        ] {
            let rec = schema
                .intern_record(&[vec![r, n], vec![y, m]], price)
                .unwrap();
            table.insert(rec);
        }
        (schema, table)
    }

    #[test]
    fn scan_matches_predicate() {
        let (schema, table) = setup();
        let europe = schema
            .dim(dc_common::DimensionId(0))
            .lookup_path(&["Europe"])
            .unwrap();
        let q = Mds::new(vec![
            DimSet::singleton(europe),
            DimSet::singleton(schema.dim(dc_common::DimensionId(1)).all()),
        ]);
        let s = table.range_summary(&schema, &q).unwrap();
        assert_eq!(s.sum, 350);
        assert_eq!(s.count, 2);
        assert_eq!(
            table.range_query(&schema, &q, AggregateOp::Max).unwrap(),
            Some(250.0)
        );
    }

    #[test]
    fn scan_reads_every_block_regardless_of_selectivity() {
        let (schema, table) = setup();
        let all = Mds::all(&schema);
        table.reset_io();
        let _ = table.range_summary(&schema, &all).unwrap();
        let full = table.io_stats().reads;
        table.reset_io();
        let europe = schema
            .dim(dc_common::DimensionId(0))
            .lookup_path(&["Europe"])
            .unwrap();
        let narrow = Mds::new(vec![
            DimSet::singleton(europe),
            DimSet::singleton(schema.dim(dc_common::DimensionId(1)).all()),
        ]);
        let _ = table.range_summary(&schema, &narrow).unwrap();
        assert_eq!(
            table.io_stats().reads,
            full,
            "a scan always reads everything"
        );
    }

    #[test]
    fn delete_removes_first_match_only() {
        let (mut schema, mut table) = setup();
        let dup = schema
            .intern_record(&[vec!["Europe", "Germany"], vec!["1996", "01"]], 100)
            .unwrap();
        table.insert(dup.clone());
        assert_eq!(table.len(), 4);
        assert!(table.delete(&dup));
        assert_eq!(table.len(), 3);
        assert!(table.delete(&dup));
        assert_eq!(table.len(), 2);
        assert!(!table.delete(&dup), "both copies are gone");
    }

    #[test]
    fn group_by_keys_by_ancestor() {
        let (schema, table) = setup();
        let all = Mds::all(&schema);
        let groups = table
            .group_by(&schema, dc_common::DimensionId(0), 1, &all)
            .unwrap();
        let h = schema.dim(dc_common::DimensionId(0));
        let by_name: Vec<(&str, i64)> = groups
            .iter()
            .map(|(v, s)| (h.name(*v).unwrap(), s.sum))
            .collect();
        assert!(by_name.contains(&("Europe", 350)));
        assert!(by_name.contains(&("Asia", 400)));
    }

    #[test]
    fn records_per_block_derived_from_record_size() {
        let (schema, _) = setup();
        let table = FlatTable::for_schema(BlockConfig::new(4096), &schema);
        // 2 dims × 4 bytes + 8 bytes measure = 16 bytes → 256 records/block.
        assert_eq!(table.records_per_block(), 256);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let (schema, table) = setup();
        let bad = Mds::new(vec![DimSet::singleton(
            schema.dim(dc_common::DimensionId(0)).all(),
        )]);
        assert!(table.range_summary(&schema, &bad).is_err());
    }
}
