//! # dc-xtree
//!
//! The **X-tree** (Berchtold, Keim, Kriegel; VLDB 1996) — the baseline the
//! DC-tree paper compares against in every experiment.
//!
//! The X-tree extends the R\*-tree for high-dimensional data with two ideas:
//!
//! * an **overlap-minimal split** driven by the *split history*: when the
//!   standard topological (R\*-style) split would produce highly overlapping
//!   MBRs, the tree retries along a dimension that previous splits already
//!   partitioned, which guarantees little to no overlap;
//! * **supernodes**: if even the overlap-minimal split would be too
//!   unbalanced, the node is extended to a multiple of the standard block
//!   size instead of being split.
//!
//! In the DC-tree evaluation the X-tree indexes the data cube through an
//! artificial total order: every hierarchy level of every dimension becomes
//! one integer axis (13 axes for the TPC-D cube, Fig. 10) carrying the raw
//! attribute IDs. Crucially the X-tree materializes **no aggregates** — a
//! range query must descend to the data pages — which is precisely the
//! asymmetry the DC-tree exploits.

pub mod mbr;
pub mod tree;

pub use mbr::Mbr;
pub use tree::{XTree, XTreeConfig};
