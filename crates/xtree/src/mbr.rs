//! Minimum bounding rectangles over `u32` axes.
//!
//! Areas and margins are computed in `f64`: with up to 13 axes of 2³²-wide
//! extents the products exceed `u128`, and the split heuristics only ever
//! *compare* these quantities.

/// An axis-aligned MBR with inclusive bounds.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Mbr {
    lo: Vec<u32>,
    hi: Vec<u32>,
}

impl Mbr {
    /// A degenerate MBR around one point.
    pub fn point(coords: &[u32]) -> Self {
        Mbr {
            lo: coords.to_vec(),
            hi: coords.to_vec(),
        }
    }

    /// Builds an MBR from inclusive per-axis ranges.
    ///
    /// # Panics
    /// Panics if any range is empty (`lo > hi`).
    pub fn from_ranges(ranges: &[(u32, u32)]) -> Self {
        assert!(ranges.iter().all(|&(l, h)| l <= h), "empty range");
        Mbr {
            lo: ranges.iter().map(|r| r.0).collect(),
            hi: ranges.iter().map(|r| r.1).collect(),
        }
    }

    /// The MBR covering the whole space in `dims` axes.
    pub fn universe(dims: usize) -> Self {
        Mbr {
            lo: vec![0; dims],
            hi: vec![u32::MAX; dims],
        }
    }

    /// Number of axes.
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Lower bound of one axis.
    pub fn lo(&self, axis: usize) -> u32 {
        self.lo[axis]
    }

    /// Upper bound of one axis.
    pub fn hi(&self, axis: usize) -> u32 {
        self.hi[axis]
    }

    /// Extent of one axis (inclusive width).
    pub fn extent(&self, axis: usize) -> f64 {
        (self.hi[axis] as f64) - (self.lo[axis] as f64) + 1.0
    }

    /// Center of one axis (used for split-history ordering).
    pub fn center(&self, axis: usize) -> f64 {
        (self.lo[axis] as f64 + self.hi[axis] as f64) / 2.0
    }

    /// The product of all extents.
    pub fn area(&self) -> f64 {
        (0..self.dims()).map(|a| self.extent(a)).product()
    }

    /// The sum of all extents (the R\*-tree's margin).
    pub fn margin(&self) -> f64 {
        (0..self.dims()).map(|a| self.extent(a)).sum()
    }

    /// `true` iff the two MBRs intersect in every axis.
    pub fn intersects(&self, other: &Mbr) -> bool {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((&alo, &ahi), (&blo, &bhi))| alo <= bhi && blo <= ahi)
    }

    /// `true` iff `other` lies fully inside `self`.
    pub fn contains(&self, other: &Mbr) -> bool {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((&alo, &ahi), (&blo, &bhi))| alo <= blo && bhi <= ahi)
    }

    /// `true` iff the point lies inside.
    pub fn contains_point(&self, coords: &[u32]) -> bool {
        coords
            .iter()
            .enumerate()
            .all(|(a, &c)| self.lo[a] <= c && c <= self.hi[a])
    }

    /// Area of the intersection; 0 when disjoint.
    pub fn overlap_area(&self, other: &Mbr) -> f64 {
        let mut area = 1.0;
        for a in 0..self.dims() {
            let lo = self.lo[a].max(other.lo[a]);
            let hi = self.hi[a].min(other.hi[a]);
            if lo > hi {
                return 0.0;
            }
            area *= (hi as f64) - (lo as f64) + 1.0;
        }
        area
    }

    /// The smallest MBR covering both.
    pub fn union(&self, other: &Mbr) -> Mbr {
        Mbr {
            lo: self
                .lo
                .iter()
                .zip(&other.lo)
                .map(|(&a, &b)| a.min(b))
                .collect(),
            hi: self
                .hi
                .iter()
                .zip(&other.hi)
                .map(|(&a, &b)| a.max(b))
                .collect(),
        }
    }

    /// Grows this MBR in place to cover `coords`.
    pub fn extend_point(&mut self, coords: &[u32]) {
        for (a, &c) in coords.iter().enumerate() {
            self.lo[a] = self.lo[a].min(c);
            self.hi[a] = self.hi[a].max(c);
        }
    }

    /// Area increase required to cover `other`.
    pub fn enlargement(&self, other: &Mbr) -> f64 {
        self.union(other).area() - self.area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_mbr_has_unit_extents() {
        let m = Mbr::point(&[3, 7]);
        assert_eq!(m.area(), 1.0);
        assert_eq!(m.margin(), 2.0);
        assert!(m.contains_point(&[3, 7]));
        assert!(!m.contains_point(&[3, 8]));
    }

    #[test]
    fn union_and_enlargement() {
        let a = Mbr::from_ranges(&[(0, 1), (0, 1)]);
        let b = Mbr::from_ranges(&[(3, 3), (0, 0)]);
        let u = a.union(&b);
        assert_eq!(u, Mbr::from_ranges(&[(0, 3), (0, 1)]));
        assert_eq!(u.area(), 8.0);
        assert_eq!(a.enlargement(&b), 8.0 - 4.0);
    }

    #[test]
    fn overlap_area_of_disjoint_is_zero() {
        let a = Mbr::from_ranges(&[(0, 1), (0, 1)]);
        let b = Mbr::from_ranges(&[(2, 3), (0, 1)]);
        assert_eq!(a.overlap_area(&b), 0.0);
        assert!(!a.intersects(&b));
        let c = Mbr::from_ranges(&[(1, 2), (1, 2)]);
        assert!(a.intersects(&c));
        assert_eq!(a.overlap_area(&c), 1.0);
    }

    #[test]
    fn containment() {
        let outer = Mbr::from_ranges(&[(0, 10), (0, 10)]);
        let inner = Mbr::from_ranges(&[(2, 5), (3, 3)]);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.contains(&outer));
    }

    #[test]
    fn extend_point_grows_minimally() {
        let mut m = Mbr::point(&[5, 5]);
        m.extend_point(&[2, 9]);
        assert_eq!(m, Mbr::from_ranges(&[(2, 5), (5, 9)]));
    }

    #[test]
    fn universe_contains_everything() {
        let u = Mbr::universe(3);
        assert!(u.contains_point(&[0, u32::MAX, 12345]));
    }

    #[test]
    fn huge_dimensionality_area_does_not_overflow() {
        // 13 axes of full u32 extent: representable in f64, not u128.
        let u = Mbr::universe(13);
        assert!(u.area().is_finite());
        assert!(u.area() > 1e100);
    }
}
