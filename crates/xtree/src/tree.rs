//! The X-tree proper: R\*-style insertion, topological split,
//! overlap-minimal split via split history, and supernodes.

use dc_common::MeasureSummary;
use dc_storage::{IoStats, IoTracker};

use crate::mbr::Mbr;

/// Configuration of an [`XTree`]. Defaults mirror the DC-tree's: the same
/// block-relative capacities and the same split-acceptance thresholds, so
/// head-to-head experiments normalize resources the way the paper did
/// ("the main memory available for the X-tree was restricted to the memory
/// size that the DC-tree uses").
#[derive(Clone, Copy, Debug)]
pub struct XTreeConfig {
    /// Directory entries per block.
    pub dir_capacity: usize,
    /// Data points per block.
    pub data_capacity: usize,
    /// Minimum fraction of entries in the smaller split group.
    pub min_fill: f64,
    /// Maximum tolerated `overlap / union-area` of a topological split
    /// before the overlap-minimal split is attempted.
    pub max_overlap: f64,
    /// Whether failed splits produce supernodes (the X-tree's signature
    /// behaviour). Disabling forces best-effort splits.
    pub allow_supernodes: bool,
}

impl Default for XTreeConfig {
    fn default() -> Self {
        XTreeConfig {
            dir_capacity: 16,
            data_capacity: 64,
            min_fill: 0.35,
            max_overlap: 0.20,
            allow_supernodes: true,
        }
    }
}

impl XTreeConfig {
    fn min_group(&self, members: usize) -> usize {
        ((members as f64) * self.min_fill).ceil().max(1.0) as usize
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct NodeId(u32);

#[derive(Clone, Debug)]
struct Entry {
    mbr: Mbr,
    child: NodeId,
}

/// A data point: coordinates plus the measure (needed because range queries
/// aggregate the measure at the data pages).
#[derive(Clone, Debug)]
pub struct XPoint {
    /// One coordinate per axis (raw attribute IDs in the cube mapping).
    pub coords: Vec<u32>,
    /// The measure value.
    pub measure: i64,
}

#[derive(Clone, Debug)]
enum Kind {
    Dir(Vec<Entry>),
    Data(Vec<XPoint>),
}

#[derive(Clone, Debug)]
struct Node {
    mbr: Mbr,
    blocks: u32,
    /// Bitmask of axes along which splits in this subtree's history took
    /// place — the X-tree's split history, consulted by the
    /// overlap-minimal split.
    history: u64,
    kind: Kind,
}

impl Node {
    fn len(&self) -> usize {
        match &self.kind {
            Kind::Dir(v) => v.len(),
            Kind::Data(v) => v.len(),
        }
    }
    fn is_data(&self) -> bool {
        matches!(self.kind, Kind::Data(_))
    }
}

/// The X-tree over `dims` integer axes.
#[derive(Clone, Debug)]
pub struct XTree {
    dims: usize,
    config: XTreeConfig,
    nodes: Vec<Node>,
    root: NodeId,
    io: IoTracker,
    len: u64,
}

impl XTree {
    /// Creates an empty X-tree over `dims` axes.
    pub fn new(dims: usize, config: XTreeConfig) -> Self {
        assert!(dims > 0, "at least one axis");
        assert!(config.dir_capacity >= 2 && config.data_capacity >= 2);
        let root_node = Node {
            mbr: Mbr::point(&vec![0; dims]),
            blocks: 1,
            history: 0,
            kind: Kind::Data(Vec::new()),
        };
        XTree {
            dims,
            config,
            nodes: vec![root_node],
            root: NodeId(0),
            io: IoTracker::new(),
            len: 0,
        }
    }

    /// Number of axes.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of stored points.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` iff empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of supernodes.
    pub fn num_supernodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.blocks > 1).count()
    }

    /// Tree height.
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut id = self.root;
        while let Kind::Dir(entries) = &self.node(id).kind {
            h += 1;
            id = entries[0].child;
        }
        h
    }

    /// Logical page-I/O counters.
    pub fn io_stats(&self) -> IoStats {
        self.io.stats()
    }

    /// Resets the I/O counters.
    pub fn reset_io(&self) {
        self.io.reset();
    }

    /// Starts recording a block-access trace (see `DcTree::begin_trace`).
    pub fn begin_trace(&self) {
        self.io.begin_trace();
    }

    /// Stops recording and returns the trace.
    pub fn end_trace(&self) -> Vec<u64> {
        self.io.end_trace()
    }

    fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0 as usize]
    }

    fn alloc(&mut self, node: Node) -> NodeId {
        self.nodes.push(node);
        NodeId((self.nodes.len() - 1) as u32)
    }

    // ------------------------------------------------------------------
    // Insertion
    // ------------------------------------------------------------------

    /// Inserts a point.
    ///
    /// # Panics
    /// Panics if `coords.len() != dims`.
    pub fn insert(&mut self, coords: Vec<u32>, measure: i64) {
        assert_eq!(coords.len(), self.dims, "coordinate arity mismatch");
        let point = XPoint { coords, measure };
        if self.len == 0 {
            // Initialize the root MBR on the very first point.
            let root = self.root;
            self.node_mut(root).mbr = Mbr::point(&point.coords);
        }
        if let Some((sibling, sibling_mbr)) = self.insert_rec(self.root, &point) {
            let old_root = self.root;
            let old_mbr = self.node(old_root).mbr.clone();
            let history = self.node(old_root).history;
            let union = old_mbr.union(&sibling_mbr);
            let entries = vec![
                Entry {
                    mbr: old_mbr,
                    child: old_root,
                },
                Entry {
                    mbr: sibling_mbr,
                    child: sibling,
                },
            ];
            let new_root = self.alloc(Node {
                mbr: union,
                blocks: 1,
                history,
                kind: Kind::Dir(entries),
            });
            self.io.write(1);
            self.root = new_root;
        }
        self.len += 1;
    }

    fn insert_rec(&mut self, id: NodeId, point: &XPoint) -> Option<(NodeId, Mbr)> {
        self.io.read(self.node(id).blocks);
        if self.node(id).is_data() {
            let node = self.node_mut(id);
            node.mbr.extend_point(&point.coords);
            if let Kind::Data(points) = &mut node.kind {
                points.push(point.clone());
            }
            let blocks = self.node(id).blocks;
            self.io.write(blocks);
            if self.node(id).len() > self.config.data_capacity * blocks as usize {
                return self.split(id);
            }
            return None;
        }

        let choice = self.choose_subtree(id, point);
        let child = {
            let node = self.node_mut(id);
            node.mbr.extend_point(&point.coords);
            if let Kind::Dir(entries) = &mut node.kind {
                entries[choice].mbr.extend_point(&point.coords);
                entries[choice].child
            } else {
                unreachable!()
            }
        };
        self.io.write(self.node(id).blocks);

        if let Some((sibling, sibling_mbr)) = self.insert_rec(child, point) {
            let child_mbr = self.node(child).mbr.clone();
            let node = self.node_mut(id);
            if let Kind::Dir(entries) = &mut node.kind {
                let e = entries
                    .iter_mut()
                    .find(|e| e.child == child)
                    .expect("child entry");
                e.mbr = child_mbr;
                entries.push(Entry {
                    mbr: sibling_mbr,
                    child: sibling,
                });
            }
            self.io.write(self.node(id).blocks);
            if self.node(id).len() > self.config.dir_capacity * self.node(id).blocks as usize {
                return self.split(id);
            }
        }
        None
    }

    /// R\*-style subtree choice: for nodes whose children are leaves,
    /// minimize overlap enlargement; otherwise minimize area enlargement
    /// (ties: smaller area).
    fn choose_subtree(&self, id: NodeId, point: &XPoint) -> usize {
        // The overlap-enlargement criterion is quadratic in the entry
        // count, which explodes inside large supernodes; beyond 32 entries
        // it degrades to the plain area criterion.
        const OVERLAP_SCAN_LIMIT: usize = 32;
        let Kind::Dir(entries) = &self.node(id).kind else {
            unreachable!()
        };
        let children_are_leaves =
            self.node(entries[0].child).is_data() && entries.len() <= OVERLAP_SCAN_LIMIT;
        let pm = Mbr::point(&point.coords);
        let mut best = 0usize;
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for (i, e) in entries.iter().enumerate() {
            let grown = e.mbr.union(&pm);
            let overlap_delta = if children_are_leaves {
                let before: f64 = entries
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, o)| e.mbr.overlap_area(&o.mbr))
                    .sum();
                let after: f64 = entries
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, o)| grown.overlap_area(&o.mbr))
                    .sum();
                after - before
            } else {
                0.0
            };
            let key = (overlap_delta, grown.area() - e.mbr.area(), e.mbr.area());
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }

    // ------------------------------------------------------------------
    // Split: topological → overlap-minimal → supernode
    // ------------------------------------------------------------------

    fn member_mbrs(&self, id: NodeId) -> Vec<Mbr> {
        match &self.node(id).kind {
            Kind::Dir(entries) => entries.iter().map(|e| e.mbr.clone()).collect(),
            Kind::Data(points) => points.iter().map(|p| Mbr::point(&p.coords)).collect(),
        }
    }

    fn split(&mut self, id: NodeId) -> Option<(NodeId, Mbr)> {
        let members = self.member_mbrs(id);
        let min_group = self.config.min_group(members.len());

        // 1. Topological (R*) split.
        if let Some((axis, g1)) = topological_split(&members, min_group) {
            let (m1, m2) = group_mbrs(&members, &g1);
            let ratio = overlap_ratio(&m1, &m2);
            if ratio <= self.config.max_overlap {
                return Some(self.apply_split(id, &g1, m1, m2, axis));
            }
            // 2. Overlap-minimal split guided by the split history.
            let history = self.node(id).history;
            if let Some((haxis, hg1)) = history_split(&members, history, min_group) {
                let (hm1, hm2) = group_mbrs(&members, &hg1);
                if overlap_ratio(&hm1, &hm2) <= self.config.max_overlap {
                    return Some(self.apply_split(id, &hg1, hm1, hm2, haxis));
                }
            }
            // 3. Supernode (or forced split when disabled).
            if !self.config.allow_supernodes {
                return Some(self.apply_split(id, &g1, m1, m2, axis));
            }
        }
        // Geometric growth, mirroring the DC-tree: a persistently
        // unsplittable supernode retries splitting O(log n) times instead
        // of on every block overflow.
        let node = self.node_mut(id);
        node.blocks += (node.blocks / 4).max(1);
        self.io.write(self.node(id).blocks);
        None
    }

    fn apply_split(
        &mut self,
        id: NodeId,
        group1: &[bool],
        mbr1: Mbr,
        mbr2: Mbr,
        axis: usize,
    ) -> (NodeId, Mbr) {
        let history = self.node(id).history | (1u64 << (axis % 64));
        let node = self.node_mut(id);
        node.history = history;
        let sibling_kind = match &mut node.kind {
            Kind::Data(points) => {
                let drained = std::mem::take(points);
                let mut keep = Vec::new();
                let mut out = Vec::new();
                for (i, p) in drained.into_iter().enumerate() {
                    if group1[i] {
                        keep.push(p);
                    } else {
                        out.push(p);
                    }
                }
                *points = keep;
                Kind::Data(out)
            }
            Kind::Dir(entries) => {
                let drained = std::mem::take(entries);
                let mut keep = Vec::new();
                let mut out = Vec::new();
                for (i, e) in drained.into_iter().enumerate() {
                    if group1[i] {
                        keep.push(e);
                    } else {
                        out.push(e);
                    }
                }
                *entries = keep;
                Kind::Dir(out)
            }
        };
        node.mbr = mbr1;
        let sibling = Node {
            mbr: mbr2.clone(),
            blocks: 1,
            history,
            kind: sibling_kind,
        };
        // Shrink supernodes back to the blocks each part needs.
        let (data_cap, dir_cap) = (self.config.data_capacity, self.config.dir_capacity);
        let shrink = |n: &Node| -> u32 {
            let cap = if n.is_data() { data_cap } else { dir_cap };
            (n.len().div_ceil(cap)).max(1) as u32
        };
        let mut sibling = sibling;
        sibling.blocks = shrink(&sibling);
        let node = self.node_mut(id);
        node.blocks = shrink(node);
        self.io.write(self.node(id).blocks);
        let sid = self.alloc(sibling);
        self.io.write(self.node(sid).blocks);
        (sid, mbr2)
    }

    // ------------------------------------------------------------------
    // Range queries — no materialized aggregates: always descend
    // ------------------------------------------------------------------

    /// Aggregates the measure over all points inside `range`. The X-tree
    /// holds no materialized measures, so every overlapping subtree is
    /// descended to its data pages.
    pub fn range_summary(&self, range: &Mbr) -> MeasureSummary {
        let mut acc = MeasureSummary::empty();
        self.query_rec(self.root, range, &mut acc);
        acc
    }

    fn query_rec(&self, id: NodeId, range: &Mbr, acc: &mut MeasureSummary) {
        let node = self.node(id);
        self.io.read_keyed(id.0 as u64, node.blocks);
        match &node.kind {
            Kind::Data(points) => {
                for p in points {
                    if range.contains_point(&p.coords) {
                        acc.add(p.measure);
                    }
                }
            }
            Kind::Dir(entries) => {
                for e in entries {
                    if range.intersects(&e.mbr) {
                        self.query_rec(e.child, range, acc);
                    }
                }
            }
        }
    }

    /// Validates the structural invariants (tests/diagnostics).
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut count = 0u64;
        self.check_rec(self.root, None, &mut count)?;
        if count != self.len {
            return Err(format!(
                "stored {count} points but len() reports {}",
                self.len
            ));
        }
        Ok(())
    }

    fn check_rec(
        &self,
        id: NodeId,
        parent_mbr: Option<&Mbr>,
        count: &mut u64,
    ) -> Result<(), String> {
        let node = self.node(id);
        if let Some(pm) = parent_mbr {
            if pm != &node.mbr {
                return Err(format!("node {id:?} MBR differs from its parent entry"));
            }
        }
        match &node.kind {
            Kind::Data(points) => {
                let cap = self.config.data_capacity * node.blocks as usize;
                if points.len() > cap {
                    return Err(format!("data node {id:?} over capacity"));
                }
                for p in points {
                    if !node.mbr.contains_point(&p.coords) {
                        return Err(format!("point escapes MBR of {id:?}"));
                    }
                }
                *count += points.len() as u64;
            }
            Kind::Dir(entries) => {
                let cap = self.config.dir_capacity * node.blocks as usize;
                if entries.len() > cap {
                    return Err(format!("dir node {id:?} over capacity"));
                }
                if entries.is_empty() {
                    return Err(format!("dir node {id:?} empty"));
                }
                for e in entries {
                    if !node.mbr.contains(&e.mbr) {
                        return Err(format!("entry escapes MBR of {id:?}"));
                    }
                    self.check_rec(e.child, Some(&e.mbr), count)?;
                }
            }
        }
        Ok(())
    }
}

fn group_mbrs(members: &[Mbr], group1: &[bool]) -> (Mbr, Mbr) {
    let mut m1: Option<Mbr> = None;
    let mut m2: Option<Mbr> = None;
    for (i, m) in members.iter().enumerate() {
        let slot = if group1[i] { &mut m1 } else { &mut m2 };
        *slot = Some(match slot.take() {
            None => m.clone(),
            Some(acc) => acc.union(m),
        });
    }
    (
        m1.expect("group 1 non-empty"),
        m2.expect("group 2 non-empty"),
    )
}

fn overlap_ratio(a: &Mbr, b: &Mbr) -> f64 {
    let union = a.union(b).area();
    if union == 0.0 {
        0.0
    } else {
        a.overlap_area(b) / union
    }
}

/// The R\*-tree topological split: choose the axis with the minimum total
/// margin over all balanced distributions, then the distribution with the
/// minimum overlap (tie: minimum total area). Returns the axis and a
/// membership mask for group 1, or `None` for fewer than two members.
fn topological_split(members: &[Mbr], min_group: usize) -> Option<(usize, Vec<bool>)> {
    if members.len() < 2 {
        return None;
    }
    let dims = members[0].dims();
    let n = members.len();
    let m = min_group.min(n / 2).max(1);

    let mut best_axis = 0;
    let mut best_axis_margin = f64::INFINITY;
    let mut orders: Vec<Vec<usize>> = Vec::with_capacity(dims);
    for axis in 0..dims {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            (members[a].lo(axis), members[a].hi(axis))
                .cmp(&(members[b].lo(axis), members[b].hi(axis)))
        });
        let (prefix, suffix) = prefix_suffix_unions(&order, members);
        let mut margin_sum = 0.0;
        for k in m..=(n - m) {
            margin_sum += prefix[k - 1].margin() + suffix[k].margin();
        }
        if margin_sum < best_axis_margin {
            best_axis_margin = margin_sum;
            best_axis = axis;
        }
        orders.push(order);
    }

    let order = &orders[best_axis];
    let (prefix, suffix) = prefix_suffix_unions(order, members);
    let mut best_k = m;
    let mut best_key = (f64::INFINITY, f64::INFINITY);
    for k in m..=(n - m) {
        let (g1, g2) = (&prefix[k - 1], &suffix[k]);
        let key = (g1.overlap_area(g2), g1.area() + g2.area());
        if key < best_key {
            best_key = key;
            best_k = k;
        }
    }
    let mut mask = vec![false; n];
    for &i in &order[..best_k] {
        mask[i] = true;
    }
    Some((best_axis, mask))
}

/// `prefix[i]` = union of the first `i + 1` members in `order`;
/// `suffix[i]` = union of members from position `i` on. Lets every
/// distribution of a split be evaluated in O(1) after O(n) setup.
fn prefix_suffix_unions(order: &[usize], members: &[Mbr]) -> (Vec<Mbr>, Vec<Mbr>) {
    let n = order.len();
    let mut prefix = Vec::with_capacity(n);
    let mut acc = members[order[0]].clone();
    prefix.push(acc.clone());
    for &i in &order[1..] {
        acc = acc.union(&members[i]);
        prefix.push(acc.clone());
    }
    let mut suffix = vec![members[order[n - 1]].clone(); n];
    for pos in (0..n - 1).rev() {
        suffix[pos] = suffix[pos + 1].union(&members[order[pos]]);
    }
    (prefix, suffix)
}

/// The X-tree overlap-minimal split: try each axis recorded in the split
/// history (most recent bits first is irrelevant — all are candidates),
/// order by center and find the balanced cut with zero (or minimal)
/// overlap. Returns the best history axis cut, if any axis is in history.
fn history_split(members: &[Mbr], history: u64, min_group: usize) -> Option<(usize, Vec<bool>)> {
    if members.len() < 2 || history == 0 {
        return None;
    }
    let dims = members[0].dims();
    let n = members.len();
    let m = min_group.min(n / 2).max(1);
    let mut best: Option<(f64, usize, usize, Vec<usize>)> = None;
    for axis in (0..dims).filter(|&a| history & (1u64 << (a % 64)) != 0) {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            members[a]
                .center(axis)
                .partial_cmp(&members[b].center(axis))
                .expect("finite centers")
        });
        let (prefix, suffix) = prefix_suffix_unions(&order, members);
        for k in m..=(n - m) {
            let overlap = prefix[k - 1].overlap_area(&suffix[k]);
            if best.as_ref().is_none_or(|(o, ..)| overlap < *o) {
                best = Some((overlap, axis, k, order.clone()));
            }
        }
    }
    let (_, axis, k, order) = best?;
    let mut mask = vec![false; n];
    for &i in &order[..k] {
        mask[i] = true;
    }
    Some((axis, mask))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_points(n: usize, dims: usize, seed: u64) -> Vec<XPoint> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| XPoint {
                coords: (0..dims).map(|_| rng.gen_range(0..1000)).collect(),
                measure: rng.gen_range(-100..1000),
            })
            .collect()
    }

    fn brute(points: &[XPoint], range: &Mbr) -> MeasureSummary {
        points
            .iter()
            .filter(|p| range.contains_point(&p.coords))
            .map(|p| p.measure)
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t = XTree::new(3, XTreeConfig::default());
        assert!(t.is_empty());
        assert_eq!(t.range_summary(&Mbr::universe(3)), MeasureSummary::empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_and_query_matches_brute_force() {
        let config = XTreeConfig {
            dir_capacity: 4,
            data_capacity: 4,
            ..Default::default()
        };
        let points = random_points(600, 3, 1);
        let mut tree = XTree::new(3, config);
        for p in &points {
            tree.insert(p.coords.clone(), p.measure);
        }
        tree.check_invariants().unwrap();
        assert_eq!(tree.len(), 600);
        assert!(tree.height() >= 3);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let ranges: Vec<(u32, u32)> = (0..3)
                .map(|_| {
                    let a = rng.gen_range(0u32..1000);
                    let b = rng.gen_range(0u32..1000);
                    (a.min(b), a.max(b))
                })
                .collect();
            let q = Mbr::from_ranges(&ranges);
            assert_eq!(tree.range_summary(&q), brute(&points, &q));
        }
    }

    #[test]
    fn universe_query_returns_total() {
        let points = random_points(200, 5, 3);
        let mut tree = XTree::new(5, XTreeConfig::default());
        for p in &points {
            tree.insert(p.coords.clone(), p.measure);
        }
        let total: MeasureSummary = points.iter().map(|p| p.measure).collect();
        assert_eq!(tree.range_summary(&Mbr::universe(5)), total);
    }

    #[test]
    fn supernodes_form_on_identical_points() {
        let config = XTreeConfig {
            dir_capacity: 4,
            data_capacity: 4,
            ..Default::default()
        };
        let mut tree = XTree::new(2, config);
        for i in 0..40 {
            tree.insert(vec![7, 7], i);
        }
        tree.check_invariants().unwrap();
        assert!(tree.num_supernodes() > 0, "identical points cannot split");
        assert_eq!(
            tree.range_summary(&Mbr::point(&[7, 7])).sum,
            (0..40).sum::<i64>()
        );
    }

    #[test]
    fn high_dimensional_insert_stays_correct() {
        // 13 axes, the dimensionality of the paper's X-tree (Fig. 10).
        let config = XTreeConfig {
            dir_capacity: 8,
            data_capacity: 16,
            ..Default::default()
        };
        let points = random_points(500, 13, 4);
        let mut tree = XTree::new(13, config);
        for p in &points {
            tree.insert(p.coords.clone(), p.measure);
        }
        tree.check_invariants().unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..40 {
            // Constrain a few random axes, leave the rest unbounded — the
            // shape of converted MDS queries.
            let mut ranges = vec![(0u32, u32::MAX); 13];
            for _ in 0..rng.gen_range(1..4) {
                let axis = rng.gen_range(0usize..13);
                let a = rng.gen_range(0u32..1000);
                let b = rng.gen_range(0u32..1000);
                ranges[axis] = (a.min(b), a.max(b));
            }
            let q = Mbr::from_ranges(&ranges);
            assert_eq!(tree.range_summary(&q), brute(&points, &q));
        }
    }

    #[test]
    fn query_io_grows_with_selectivity() {
        let config = XTreeConfig {
            dir_capacity: 8,
            data_capacity: 8,
            ..Default::default()
        };
        let points = random_points(2000, 2, 6);
        let mut tree = XTree::new(2, config);
        for p in &points {
            tree.insert(p.coords.clone(), p.measure);
        }
        tree.reset_io();
        let _ = tree.range_summary(&Mbr::from_ranges(&[(0, 9), (0, 9)]));
        let small = tree.io_stats().reads;
        tree.reset_io();
        let _ = tree.range_summary(&Mbr::universe(2));
        let full = tree.io_stats().reads;
        assert!(
            small < full,
            "selective query must read fewer pages ({small} vs {full})"
        );
    }

    #[test]
    fn forced_splits_without_supernodes() {
        let config = XTreeConfig {
            dir_capacity: 4,
            data_capacity: 4,
            allow_supernodes: false,
            ..Default::default()
        };
        let points = random_points(300, 4, 7);
        let mut tree = XTree::new(4, config);
        for p in &points {
            tree.insert(p.coords.clone(), p.measure);
        }
        assert_eq!(tree.num_supernodes(), 0);
        tree.check_invariants().unwrap();
        assert_eq!(
            tree.range_summary(&Mbr::universe(4)),
            points.iter().map(|p| p.measure).collect()
        );
    }
}
