//! Property-based tests of the X-tree against a brute-force oracle.

use dc_common::MeasureSummary;
use dc_xtree::{Mbr, XTree, XTreeConfig};
use proptest::prelude::*;

fn points(dims: usize, n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<(Vec<u32>, i64)>> {
    prop::collection::vec(
        (
            prop::collection::vec(0u32..100, dims..=dims),
            -1000i64..1000,
        ),
        n,
    )
}

fn ranges(dims: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0u32..100, 0u32..100), dims..=dims)
        .prop_map(|v| v.into_iter().map(|(a, b)| (a.min(b), a.max(b))).collect())
}

fn brute(points: &[(Vec<u32>, i64)], q: &Mbr) -> MeasureSummary {
    points
        .iter()
        .filter(|(c, _)| q.contains_point(c))
        .map(|&(_, m)| m)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random points, random boxes: tree answers equal brute force, and the
    /// structure stays valid under split-heavy capacities.
    #[test]
    fn queries_match_brute_force(
        pts in points(3, 1..300),
        qs in prop::collection::vec(ranges(3), 1..12),
    ) {
        let config = XTreeConfig { dir_capacity: 3, data_capacity: 3, ..Default::default() };
        let mut tree = XTree::new(3, config);
        for (c, m) in &pts {
            tree.insert(c.clone(), *m);
        }
        tree.check_invariants().unwrap();
        prop_assert_eq!(tree.len() as usize, pts.len());
        for q in qs {
            let q = Mbr::from_ranges(&q);
            prop_assert_eq!(tree.range_summary(&q), brute(&pts, &q));
        }
    }

    /// Duplicates and degenerate distributions (all points on a line /
    /// point) never break the tree — they exercise supernodes.
    #[test]
    fn degenerate_distributions(
        reps in 1usize..60,
        coord in prop::collection::vec(0u32..10, 4..=4),
        ms in prop::collection::vec(-100i64..100, 1..60),
    ) {
        let config = XTreeConfig { dir_capacity: 3, data_capacity: 3, ..Default::default() };
        let mut tree = XTree::new(4, config);
        let mut all = Vec::new();
        for (i, &m) in ms.iter().enumerate().take(reps.max(1)) {
            let mut c = coord.clone();
            c[0] = c[0].wrapping_add((i % 3) as u32); // a thin line
            tree.insert(c.clone(), m);
            all.push((c, m));
        }
        tree.check_invariants().unwrap();
        let q = Mbr::universe(4);
        prop_assert_eq!(tree.range_summary(&q), brute(&all, &q));
    }

    /// The high-dimensional case of the paper's evaluation (13 axes).
    #[test]
    fn high_dimensional_correctness(
        pts in points(13, 1..120),
        qs in prop::collection::vec(ranges(13), 1..6),
    ) {
        let mut tree = XTree::new(13, XTreeConfig::default());
        for (c, m) in &pts {
            tree.insert(c.clone(), *m);
        }
        tree.check_invariants().unwrap();
        for q in qs {
            let q = Mbr::from_ranges(&q);
            prop_assert_eq!(tree.range_summary(&q), brute(&pts, &q));
        }
    }
}
