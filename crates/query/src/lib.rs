//! # dc-query
//!
//! The range-query workload generator of the DC-tree evaluation (§5.2), plus
//! the MDS→MBR conversion that lets the X-tree answer the same queries.
//!
//! The paper's generator works per dimension: it "randomly chooses a level
//! in the concept hierarchy … depending on its choice, the range_mds will
//! contain IDs of regions, nations, market segments or customers. The size
//! of each set of the range_mds is limited by the selectivity" — a
//! selectivity of 25% admits up to 25% of all attribute values of the chosen
//! level. The chosen values are random.
//!
//! For head-to-head comparisons against the X-tree, the per-level value set
//! is drawn as a **contiguous run of IDs** (random start): the paper
//! converts a range_mds into a range_mbr "by using the total ordering of the
//! IDs", and a contiguous run makes that conversion lossless, so both index
//! structures answer *exactly* the same predicate (asserted by the
//! integration tests). A scattered mode exists for DC-tree-only workloads.

use dc_common::{AggregateOp, DimensionId, Level, ValueId};
use dc_hierarchy::CubeSchema;
use dc_mds::{DimSet, Mds};
use dc_xtree::Mbr;
use rand::prelude::*;
use rand::rngs::StdRng;

/// How the per-level value sets are drawn.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ValuePick {
    /// A contiguous run of IDs (lossless MDS→MBR conversion).
    ContiguousRun,
    /// Independently random values (DC-tree-only workloads; the MBR
    /// conversion would over-approximate these).
    Scattered,
}

/// Generator of random range queries in the style of §5.2.
#[derive(Debug)]
pub struct RangeQueryGen {
    selectivity: f64,
    pick: ValuePick,
    rng: StdRng,
}

impl RangeQueryGen {
    /// Creates a generator with the given selectivity (fraction of values
    /// admitted per chosen level, e.g. `0.05` for the paper's 5% runs).
    ///
    /// # Panics
    /// Panics unless `0 < selectivity <= 1`.
    pub fn new(selectivity: f64, pick: ValuePick, seed: u64) -> Self {
        assert!(
            selectivity > 0.0 && selectivity <= 1.0,
            "selectivity must be in (0, 1], got {selectivity}"
        );
        RangeQueryGen {
            selectivity,
            pick,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The generator's selectivity.
    pub fn selectivity(&self) -> f64 {
        self.selectivity
    }

    /// Generates one range MDS against the current state of `schema`.
    pub fn generate(&mut self, schema: &CubeSchema) -> Mds {
        let dims = (0..schema.num_dims())
            .map(|d| {
                let h = schema.dim(DimensionId(d as u16));
                // Random functional level (the paper picks among Region,
                // Nation, MktSegment, Customer — never ALL).
                let level: Level = self.rng.gen_range(0..h.top_level());
                let count = h.num_values_at(level);
                debug_assert!(count > 0, "level {level} of {d} has no values");
                let take = ((count as f64 * self.selectivity).floor() as usize).clamp(1, count);
                let values: Vec<ValueId> = match self.pick {
                    ValuePick::ContiguousRun => {
                        let start = self.rng.gen_range(0..=(count - take)) as u32;
                        (start..start + take as u32)
                            .map(|i| ValueId::new(level, i))
                            .collect()
                    }
                    ValuePick::Scattered => {
                        let mut all: Vec<u32> = (0..count as u32).collect();
                        all.partial_shuffle(&mut self.rng, take);
                        all.truncate(take);
                        all.into_iter().map(|i| ValueId::new(level, i)).collect()
                    }
                };
                DimSet::new(level, values)
            })
            .collect();
        Mds::new(dims)
    }
}

/// One serving-era query shape: a §5.2 range filter plus the SELECT-list
/// and optional `GROUP BY` target that the planner front-end accepts.
///
/// The original evaluation only needed scalar single-aggregate ranges; the
/// cost-based planner is exercised by roll-ups (`GROUP BY` at any hierarchy
/// level) and multi-measure SELECT lists, so the mix can now draw those
/// shapes too. `filter`/`group_by`/`ops` map 1:1 onto the public fields of
/// `dc_ql::ParsedStatement`, so harnesses can execute a shape without going
/// through the text grammar.
#[derive(Clone, PartialEq, Debug)]
pub struct QueryShape {
    /// The range predicate (always present; may span every dimension).
    pub filter: Mds,
    /// Roll-up target `(dimension, level)`, `None` for scalar queries.
    pub group_by: Option<(DimensionId, Level)>,
    /// Aggregates in SELECT-list order (never empty).
    pub ops: Vec<AggregateOp>,
}

impl QueryShape {
    /// Wraps a bare range in the legacy shape: scalar `SUM`.
    pub fn scalar_sum(filter: Mds) -> Self {
        QueryShape {
            filter,
            group_by: None,
            ops: vec![AggregateOp::Sum],
        }
    }
}

/// A Zipf-skewed *popularity* mix over a fixed pool of query templates —
/// the dashboard workload shape: a handful of roll-ups asked over and over,
/// a long tail asked rarely.
///
/// The §5.2 generator draws every query fresh, so no two queries repeat and
/// a result cache can never hit. Real serving workloads are the opposite:
/// popularity is heavily skewed. This mix draws *which* template to ask
/// from a Zipf distribution (template at popularity rank `r` has weight
/// `1/(r+1)^θ`), so `θ = 0` degenerates to uniform choice and `θ ≈ 1` gives
/// the classic hot-head/long-tail shape. Sampling is inverse-CDF over the
/// precomputed cumulative weights; draws are deterministic per seed.
#[derive(Debug)]
pub struct ZipfQueryMix {
    templates: Vec<Mds>,
    shapes: Vec<QueryShape>,
    cdf: Vec<f64>,
    rng: StdRng,
}

impl ZipfQueryMix {
    /// Builds a mix over `templates` (index = popularity rank: `templates[0]`
    /// is the hottest) with skew `theta >= 0`. Every template becomes a
    /// scalar-`SUM` [`QueryShape`]; use [`ZipfQueryMix::with_shapes`] for
    /// group-by / multi-measure pools.
    ///
    /// # Panics
    /// Panics when `templates` is empty or `theta` is negative/non-finite.
    pub fn new(templates: Vec<Mds>, theta: f64, seed: u64) -> Self {
        let shapes = templates
            .iter()
            .map(|t| QueryShape::scalar_sum(t.clone()))
            .collect();
        ZipfQueryMix::build(templates, shapes, theta, seed)
    }

    /// Builds a mix over explicit [`QueryShape`]s (index = popularity rank).
    ///
    /// # Panics
    /// Panics when `shapes` is empty, any SELECT-list is empty, or `theta`
    /// is negative/non-finite.
    pub fn with_shapes(shapes: Vec<QueryShape>, theta: f64, seed: u64) -> Self {
        assert!(
            shapes.iter().all(|s| !s.ops.is_empty()),
            "every shape needs at least one aggregate"
        );
        let templates = shapes.iter().map(|s| s.filter.clone()).collect();
        ZipfQueryMix::build(templates, shapes, theta, seed)
    }

    fn build(templates: Vec<Mds>, shapes: Vec<QueryShape>, theta: f64, seed: u64) -> Self {
        assert!(!templates.is_empty(), "need at least one query template");
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "theta must be finite and non-negative, got {theta}"
        );
        let mut acc = 0.0;
        let cdf = (0..templates.len())
            .map(|rank| {
                acc += 1.0 / ((rank + 1) as f64).powf(theta);
                acc
            })
            .collect();
        ZipfQueryMix {
            templates,
            shapes,
            cdf,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Builds the template pool with `gen` (one fresh §5.2 query per
    /// template) and wraps it in a Zipf mix.
    pub fn generate(
        schema: &CubeSchema,
        num_templates: usize,
        theta: f64,
        gen: &mut RangeQueryGen,
        seed: u64,
    ) -> Self {
        let templates = (0..num_templates).map(|_| gen.generate(schema)).collect();
        ZipfQueryMix::new(templates, theta, seed)
    }

    /// Builds a planner-era pool: each template pairs a fresh §5.2 range
    /// with a randomly drawn shape — scalar or `GROUP BY` a random level of
    /// a random dimension, single- or multi-measure SELECT list. Roughly
    /// half the pool stays scalar single-aggregate (the legacy dashboard
    /// mix); the rest splits between roll-ups and multi-measure lists so a
    /// cost-based planner sees every physical-operator class. Deterministic
    /// per `(gen, seed)`.
    pub fn generate_shapes(
        schema: &CubeSchema,
        num_templates: usize,
        theta: f64,
        gen: &mut RangeQueryGen,
        seed: u64,
    ) -> Self {
        // Salted so shape choice never correlates with popularity draws.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let shapes = (0..num_templates)
            .map(|_| {
                let filter = gen.generate(schema);
                let group_by = if rng.gen_bool(0.4) {
                    let d = DimensionId(rng.gen_range(0..schema.num_dims()) as u16);
                    let level = rng.gen_range(0..schema.dim(d).top_level());
                    Some((d, level))
                } else {
                    None
                };
                let ops = if rng.gen_bool(0.35) {
                    // Multi-measure list: 2–4 distinct ops, SELECT order.
                    let mut all = AggregateOp::ALL.to_vec();
                    let take = rng.gen_range(2..=4);
                    all.partial_shuffle(&mut rng, take);
                    all.truncate(take);
                    all
                } else {
                    vec![*AggregateOp::ALL.choose(&mut rng).expect("non-empty")]
                };
                QueryShape {
                    filter,
                    group_by,
                    ops,
                }
            })
            .collect();
        ZipfQueryMix::with_shapes(shapes, theta, seed)
    }

    fn draw(&mut self) -> usize {
        let total = *self.cdf.last().expect("non-empty cdf");
        let x = self.rng.gen::<f64>() * total;
        let idx = self.cdf.partition_point(|&c| c < x);
        idx.min(self.templates.len() - 1)
    }

    /// Draws the next query by popularity (repeat draws return the *same*
    /// template MDS — that repetition is what a semantic cache feeds on).
    /// Not an [`Iterator`]: the borrow is tied to the mix, and draws never end.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> &Mds {
        let idx = self.draw();
        &self.templates[idx]
    }

    /// Draws the next full [`QueryShape`] by popularity. Shares the Zipf
    /// ranks (and RNG) with [`ZipfQueryMix::next`]; for pools built with
    /// [`ZipfQueryMix::new`]/[`ZipfQueryMix::generate`] every shape is a
    /// scalar `SUM` over the matching template.
    pub fn next_shape(&mut self) -> &QueryShape {
        let idx = self.draw();
        &self.shapes[idx]
    }

    /// The template pool, hottest first.
    pub fn templates(&self) -> &[Mds] {
        &self.templates
    }

    /// The shape pool, hottest first (index-aligned with
    /// [`ZipfQueryMix::templates`]).
    pub fn shapes(&self) -> &[QueryShape] {
        &self.shapes
    }
}

/// Converts a range MDS into the enclosing MBR over the flat-axis space the
/// X-tree indexes (§5.2's range_mds → range_mbr conversion).
///
/// Each constrained `(dimension, level)` pair maps to its flat axis with the
/// `[min, max]` raw-ID interval of the value set; all other axes stay
/// unbounded. The conversion is **exact** for contiguous runs and an
/// over-approximation (the paper's enclosing interval) for scattered sets.
pub fn mds_to_mbr(schema: &CubeSchema, range: &Mds) -> Mbr {
    let mut ranges = vec![(0u32, u32::MAX); schema.num_flat_axes()];
    for (d, set) in range.dims().enumerate() {
        let h = schema.dim(DimensionId(d as u16));
        if set.level() >= h.top_level() {
            continue; // ALL — unconstrained
        }
        let axis = schema.flat_axis(DimensionId(d as u16), set.level());
        let lo = set.values().first().expect("non-empty dim set").raw();
        let hi = set.values().last().expect("non-empty dim set").raw();
        ranges[axis] = (lo, hi);
    }
    Mbr::from_ranges(&ranges)
}

/// `true` iff every dimension set of `range` is a contiguous ID run — the
/// precondition for [`mds_to_mbr`] being lossless.
pub fn is_contiguous(range: &Mds) -> bool {
    range.dims().all(|set| {
        let v = set.values();
        v.last()
            .is_none_or(|last| (last.index() - v[0].index()) as usize == v.len() - 1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_tpcd::{generate, TpcdConfig};

    #[test]
    fn queries_respect_selectivity_bound() {
        let data = generate(&TpcdConfig::scaled(2000, 1));
        for sel in [0.01, 0.05, 0.25] {
            let mut g = RangeQueryGen::new(sel, ValuePick::ContiguousRun, 42);
            for _ in 0..50 {
                let q = g.generate(&data.schema);
                for (d, set) in q.dims().enumerate() {
                    let h = data.schema.dim(DimensionId(d as u16));
                    let count = h.num_values_at(set.level());
                    let cap = ((count as f64 * sel).floor() as usize).max(1);
                    assert!(
                        set.len() <= cap,
                        "dim {d}: {} values exceed cap {cap} at sel {sel}",
                        set.len()
                    );
                    assert!(set.level() < h.top_level(), "never ALL");
                }
            }
        }
    }

    #[test]
    fn contiguous_mode_produces_runs() {
        let data = generate(&TpcdConfig::scaled(1000, 2));
        let mut g = RangeQueryGen::new(0.25, ValuePick::ContiguousRun, 3);
        for _ in 0..50 {
            let q = g.generate(&data.schema);
            assert!(is_contiguous(&q));
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let data = generate(&TpcdConfig::scaled(500, 4));
        let mut a = RangeQueryGen::new(0.05, ValuePick::ContiguousRun, 9);
        let mut b = RangeQueryGen::new(0.05, ValuePick::ContiguousRun, 9);
        for _ in 0..20 {
            assert_eq!(a.generate(&data.schema), b.generate(&data.schema));
        }
    }

    #[test]
    fn mbr_conversion_selects_identical_records_for_contiguous_runs() {
        let data = generate(&TpcdConfig::scaled(1500, 5));
        let mut g = RangeQueryGen::new(0.25, ValuePick::ContiguousRun, 6);
        for _ in 0..40 {
            let q = g.generate(&data.schema);
            let mbr = mds_to_mbr(&data.schema, &q);
            for r in &data.records {
                let by_mds = q.contains_record(&data.schema, r).unwrap();
                let coords = data.schema.flatten_record(r).unwrap();
                let by_mbr = mbr.contains_point(&coords);
                assert_eq!(by_mds, by_mbr, "predicates must agree on {r:?}");
            }
        }
    }

    #[test]
    fn scattered_mbr_is_superset() {
        let data = generate(&TpcdConfig::scaled(1500, 7));
        let mut g = RangeQueryGen::new(0.25, ValuePick::Scattered, 8);
        for _ in 0..20 {
            let q = g.generate(&data.schema);
            let mbr = mds_to_mbr(&data.schema, &q);
            for r in &data.records {
                if q.contains_record(&data.schema, r).unwrap() {
                    let coords = data.schema.flatten_record(r).unwrap();
                    assert!(mbr.contains_point(&coords), "MBR must enclose the MDS");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "selectivity")]
    fn zero_selectivity_rejected() {
        let _ = RangeQueryGen::new(0.0, ValuePick::ContiguousRun, 0);
    }

    #[test]
    fn zipf_mix_skews_towards_low_ranks() {
        let data = generate(&TpcdConfig::scaled(1000, 3));
        let mut g = RangeQueryGen::new(0.05, ValuePick::ContiguousRun, 10);
        let mut mix = ZipfQueryMix::generate(&data.schema, 32, 1.0, &mut g, 11);
        let hottest = mix.templates()[0].clone();
        let mut head = 0usize;
        let draws = 2000;
        for _ in 0..draws {
            if *mix.next() == hottest {
                head += 1;
            }
        }
        // Rank 0 carries 1/H_32 ≈ 25% of the mass at θ=1; uniform would
        // give ~3%. Assert well above uniform, well below certainty.
        assert!(
            (draws / 8..draws / 2).contains(&head),
            "hottest template drawn {head}/{draws} times"
        );
    }

    #[test]
    fn zipf_mix_is_deterministic_and_reuses_templates() {
        let data = generate(&TpcdConfig::scaled(500, 6));
        let mut g1 = RangeQueryGen::new(0.05, ValuePick::ContiguousRun, 12);
        let mut g2 = RangeQueryGen::new(0.05, ValuePick::ContiguousRun, 12);
        let mut a = ZipfQueryMix::generate(&data.schema, 16, 0.9, &mut g1, 13);
        let mut b = ZipfQueryMix::generate(&data.schema, 16, 0.9, &mut g2, 13);
        let mut repeats = 0usize;
        let mut seen: Vec<Mds> = Vec::new();
        for _ in 0..200 {
            let qa = a.next().clone();
            assert_eq!(&qa, b.next());
            if seen.contains(&qa) {
                repeats += 1;
            } else {
                seen.push(qa);
            }
        }
        assert!(repeats > 100, "only {repeats}/200 draws were repeats");
    }

    #[test]
    fn shape_mix_covers_every_query_class() {
        let data = generate(&TpcdConfig::scaled(1000, 9));
        let mut g = RangeQueryGen::new(0.1, ValuePick::ContiguousRun, 20);
        let mix = ZipfQueryMix::generate_shapes(&data.schema, 64, 0.9, &mut g, 21);
        assert_eq!(mix.shapes().len(), 64);
        assert_eq!(mix.templates().len(), 64);
        let grouped = mix.shapes().iter().filter(|s| s.group_by.is_some()).count();
        let multi = mix.shapes().iter().filter(|s| s.ops.len() > 1).count();
        assert!(grouped > 8, "only {grouped}/64 group-by shapes");
        assert!(grouped < 56, "almost all shapes grouped: {grouped}/64");
        assert!(multi > 8, "only {multi}/64 multi-measure shapes");
        for s in mix.shapes() {
            assert!(!s.ops.is_empty());
            let distinct: std::collections::HashSet<_> =
                s.ops.iter().map(|o| format!("{o}")).collect();
            assert_eq!(distinct.len(), s.ops.len(), "duplicate op in {:?}", s.ops);
            if let Some((d, level)) = s.group_by {
                assert!(level < data.schema.dim(d).top_level());
            }
        }
    }

    #[test]
    fn shape_mix_is_deterministic_and_aligned_with_templates() {
        let data = generate(&TpcdConfig::scaled(500, 10));
        let mut g1 = RangeQueryGen::new(0.05, ValuePick::ContiguousRun, 22);
        let mut g2 = RangeQueryGen::new(0.05, ValuePick::ContiguousRun, 22);
        let mut a = ZipfQueryMix::generate_shapes(&data.schema, 16, 1.0, &mut g1, 23);
        let mut b = ZipfQueryMix::generate_shapes(&data.schema, 16, 1.0, &mut g2, 23);
        for (s, t) in a.shapes().iter().zip(a.templates()) {
            assert_eq!(&s.filter, t, "shapes index-aligned with templates");
        }
        for _ in 0..100 {
            assert_eq!(a.next_shape(), b.next_shape());
        }
    }

    #[test]
    fn legacy_pools_yield_scalar_sum_shapes() {
        let data = generate(&TpcdConfig::scaled(500, 11));
        let mut g = RangeQueryGen::new(0.05, ValuePick::ContiguousRun, 24);
        let mut mix = ZipfQueryMix::generate(&data.schema, 8, 0.5, &mut g, 25);
        let shape = mix.next_shape().clone();
        assert_eq!(shape.ops, vec![AggregateOp::Sum]);
        assert!(shape.group_by.is_none());
        assert!(mix.templates().contains(&shape.filter));
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let data = generate(&TpcdConfig::scaled(500, 8));
        let mut g = RangeQueryGen::new(0.05, ValuePick::ContiguousRun, 14);
        let mut mix = ZipfQueryMix::generate(&data.schema, 4, 0.0, &mut g, 15);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            let q = mix.next().clone();
            let idx = mix.templates().iter().position(|t| *t == q).unwrap();
            counts[idx] += 1;
        }
        for c in counts {
            assert!((600..1400).contains(&c), "uniform draw counts: {counts:?}");
        }
    }
}
