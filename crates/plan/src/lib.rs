//! # dc-plan
//!
//! The cost-based query planner that turns this repository's collection of
//! baselines into one engine. The DC-tree paper evaluates its index against
//! a sequential scan and static alternatives; the surrounding crates grew
//! all of them — DC-tree descent, dc-bitmap WAH algebra, dc-mview lattice
//! lookups, dc-scan — and this crate is the component that *chooses*
//! between them per query.
//!
//! The pipeline has three layers:
//!
//! * **Logical** ([`LogicalPlan`]): the filter MDS (dc-ql's resolver has
//!   already pushed the WHERE predicates down into the range, joining
//!   same-dimension predicates through the dimension tables), the requested
//!   aggregates, and an optional group-by level.
//! * **Cost** ([`price`], [`choose`], [`PartitionStats`]): page-read
//!   estimates per backend from statistics captured when a shard publishes
//!   a snapshot — tree height and node count for descent, compressed bitmap
//!   bytes for the set algebra, per-view cell counts for the lattice, block
//!   counts for the scan. All O(1) at plan time.
//! * **Physical** ([`execute`], [`Backend`], [`BackendRefs`]): runs the
//!   chosen operator against the engines that hold the partition's data and
//!   reports the *actual* page reads, so `EXPLAIN` (and the misprediction
//!   counters) can show estimated vs. measured cost side by side.
//!
//! Every backend answers every query identically (the differential suite
//! pins this, including under churn); the planner only changes *cost*.

pub mod cost;
pub mod explain;
pub mod logical;
pub mod physical;

pub use cost::{
    choose, cold_factor, price, CostEstimate, PartitionPlan, PartitionStats, COLD_FETCH_PENALTY,
};
pub use explain::{Explain, ShardExplain};
pub use logical::LogicalPlan;
pub use physical::{execute, Backend, BackendRefs, QueryOutput};

#[cfg(test)]
mod tests {
    use super::*;
    use dc_bitmap::BitmapIndex;
    use dc_common::{AggregateOp, DimensionId};
    use dc_mview::{rollup_lattice, MaterializedView};
    use dc_scan::FlatTable;
    use dc_storage::BlockConfig;
    use dc_tpcd::{generate, TpcdConfig};
    use dc_tree::{DcTree, DcTreeConfig};

    struct Partition {
        data: dc_tpcd::TpcdData,
        tree: DcTree,
        bitmap: BitmapIndex,
        views: Vec<MaterializedView>,
        table: FlatTable,
    }

    fn build(lineitems: usize, seed: u64) -> Partition {
        let data = generate(&TpcdConfig::scaled(lineitems, seed));
        let mut tree = DcTree::new(data.schema.clone(), DcTreeConfig::default());
        let mut bitmap = BitmapIndex::new(&data.schema, BlockConfig::DEFAULT);
        let mut views: Vec<MaterializedView> = rollup_lattice(&data.schema)
            .into_iter()
            .map(MaterializedView::new)
            .collect();
        let mut table = FlatTable::for_schema(BlockConfig::DEFAULT, &data.schema);
        for r in &data.records {
            tree.insert(r.clone()).unwrap();
            bitmap.insert(&data.schema, r).unwrap();
            for v in &mut views {
                v.apply(&data.schema, r).unwrap();
            }
            table.insert(r.clone());
        }
        Partition {
            data,
            tree,
            bitmap,
            views,
            table,
        }
    }

    fn stats(p: &Partition) -> PartitionStats {
        let ts = p.tree.stats();
        PartitionStats {
            records: ts.records,
            tree_nodes: ts.dir_nodes + ts.data_nodes,
            tree_height: ts.height,
            records_per_block: p.table.records_per_block(),
            bitmap_bytes: p.bitmap.bitmap_bytes(),
            has_bitmap: true,
            has_table: true,
            view_cells: p
                .views
                .iter()
                .map(|v| (v.spec().levels.clone(), v.num_cells()))
                .collect(),
            views_stale: false,
            ..PartitionStats::default()
        }
    }

    fn refs(p: &Partition) -> BackendRefs<'_> {
        BackendRefs {
            tree: &p.tree,
            bitmap: Some(&p.bitmap),
            views: Some(&p.views),
            table: Some(&p.table),
        }
    }

    #[test]
    fn all_backends_agree_on_random_ranges() {
        use dc_query::{RangeQueryGen, ValuePick};
        let p = build(2000, 7);
        for (sel, seed) in [(0.02, 1u64), (0.25, 2)] {
            let mut gen = RangeQueryGen::new(sel, ValuePick::ContiguousRun, seed);
            for _ in 0..20 {
                let q = gen.generate(&p.data.schema);
                let plan = LogicalPlan::scalar(AggregateOp::Sum, q);
                let want = p.table.range_summary(&p.data.schema, &plan.filter).unwrap();
                for backend in [Backend::Descend, Backend::Bitmap, Backend::Scan] {
                    let (out, pages) =
                        execute(&p.data.schema, &plan, backend, &refs(&p), None).unwrap();
                    assert_eq!(out, QueryOutput::Scalar(want), "{backend}");
                    assert!(pages > 0, "{backend} must charge I/O");
                }
            }
        }
    }

    #[test]
    fn mview_answers_rollups_identically() {
        let p = build(1500, 11);
        // A single-dimension roll-up is in the lattice.
        let h = p.data.schema.dim(DimensionId(0));
        let region = h.values_at(h.top_level() - 1).next().unwrap();
        let mut dims: Vec<dc_mds::DimSet> = p
            .data
            .schema
            .dims()
            .map(|h| dc_mds::DimSet::singleton(h.all()))
            .collect();
        dims[0] = dc_mds::DimSet::singleton(region);
        let plan = LogicalPlan::scalar(AggregateOp::Sum, dc_mds::Mds::new(dims));
        let want = p.table.range_summary(&p.data.schema, &plan.filter).unwrap();
        let (out, pages) = execute(&p.data.schema, &plan, Backend::Mview, &refs(&p), None).unwrap();
        assert_eq!(out, QueryOutput::Scalar(want));
        assert!(pages >= 1);
    }

    #[test]
    fn grouped_execution_agrees_across_backends() {
        let p = build(1500, 13);
        let dim = DimensionId(0);
        let top = p.data.schema.dim(dim).top_level();
        let mut plan = LogicalPlan::scalar(AggregateOp::Sum, dc_mds::Mds::all(&p.data.schema));
        plan.group_by = Some((dim, top - 1));
        let (want, _) = execute(&p.data.schema, &plan, Backend::Scan, &refs(&p), None).unwrap();
        for backend in [Backend::Descend, Backend::Bitmap, Backend::Mview] {
            let (out, _) = execute(&p.data.schema, &plan, backend, &refs(&p), None).unwrap();
            assert_eq!(out, want, "{backend}");
        }
    }

    #[test]
    fn cost_model_prefers_mview_for_coarse_rollups_and_descend_when_selective() {
        let p = build(4000, 17);
        let s = stats(&p);
        // Coarse roll-up: group by region over everything → tiny lattice view.
        let dim = DimensionId(0);
        let top = p.data.schema.dim(dim).top_level();
        let mut rollup = LogicalPlan::scalar(AggregateOp::Sum, dc_mds::Mds::all(&p.data.schema));
        rollup.group_by = Some((dim, top - 1));
        let choice = choose(&p.data.schema, &rollup, &s);
        assert_eq!(choice.backend, Backend::Mview, "{:?}", choice.candidates);
        // Selective point-ish query: descent beats a full scan.
        let h = p.data.schema.dim(dim);
        let leaf = h.values_at(0).next().unwrap();
        let mut dims: Vec<dc_mds::DimSet> = p
            .data
            .schema
            .dims()
            .map(|h| dc_mds::DimSet::singleton(h.all()))
            .collect();
        dims[0] = dc_mds::DimSet::singleton(leaf);
        let narrow = LogicalPlan::scalar(AggregateOp::Sum, dc_mds::Mds::new(dims));
        let choice = choose(&p.data.schema, &narrow, &s);
        let descend = choice
            .candidates
            .iter()
            .find(|c| c.backend == Backend::Descend)
            .unwrap();
        let scan = choice
            .candidates
            .iter()
            .find(|c| c.backend == Backend::Scan)
            .unwrap();
        assert!(descend.pages < scan.pages, "{:?}", choice.candidates);
    }

    #[test]
    fn stale_views_are_never_chosen() {
        let p = build(1000, 19);
        let mut s = stats(&p);
        s.views_stale = true;
        let dim = DimensionId(0);
        let top = p.data.schema.dim(dim).top_level();
        let mut rollup = LogicalPlan::scalar(AggregateOp::Sum, dc_mds::Mds::all(&p.data.schema));
        rollup.group_by = Some((dim, top - 1));
        let priced = price(&p.data.schema, &rollup, &s);
        assert!(priced.iter().all(|c| c.backend != Backend::Mview));
    }

    #[test]
    fn disk_residency_inflates_descend_pricing_by_observed_miss_rate() {
        let p = build(1500, 23);
        let ram = stats(&p);
        let plan = LogicalPlan::scalar(AggregateOp::Sum, dc_mds::Mds::all(&p.data.schema));
        let descend_pages = |s: &PartitionStats| {
            price(&p.data.schema, &plan, s)
                .iter()
                .find(|c| c.backend == Backend::Descend)
                .unwrap()
                .pages
        };
        let base = descend_pages(&ram);

        // A fully-warm pool (miss rate 0) prices like RAM residency.
        let mut warm = ram.clone();
        warm.disk_resident = true;
        warm.pool_miss_rate = 0.0;
        assert_eq!(descend_pages(&warm), base);

        // A cold pool pays the full penalty; a half-warm one half of it.
        let mut cold = warm.clone();
        cold.pool_miss_rate = 1.0;
        assert!((descend_pages(&cold) - base * COLD_FETCH_PENALTY).abs() < 1e-9);
        let mut half = warm;
        half.pool_miss_rate = 0.5;
        assert!(descend_pages(&half) > base && descend_pages(&half) < descend_pages(&cold));

        // Disk residency can flip the choice toward an aux engine: with a
        // cold pool, a scan of a table it *also* holds in RAM... is not the
        // scenario dc-serve builds (disk mode maintains no aux engines), but
        // the model must stay monotone: pricier descent never *gains* rank.
        let ram_rank = price(&p.data.schema, &plan, &ram)
            .iter()
            .position(|c| c.backend == Backend::Descend)
            .unwrap();
        let cold_rank = price(&p.data.schema, &plan, &cold)
            .iter()
            .position(|c| c.backend == Backend::Descend)
            .unwrap();
        assert!(cold_rank >= ram_rank);
    }

    #[test]
    fn merge_combines_partition_outputs() {
        let mut a = QueryOutput::Scalar(dc_common::MeasureSummary::empty());
        let mut one = dc_common::MeasureSummary::empty();
        one.add(5);
        a.merge(&QueryOutput::Scalar(one));
        match a {
            QueryOutput::Scalar(s) => assert_eq!(s.count, 1),
            _ => unreachable!(),
        }
        let mut g = QueryOutput::empty(true);
        let v = dc_common::ValueId::new(0, 3);
        let mut s1 = dc_common::MeasureSummary::empty();
        s1.add(2);
        g.merge(&QueryOutput::Grouped(vec![(v, s1)]));
        g.merge(&QueryOutput::Grouped(vec![(v, s1)]));
        match g {
            QueryOutput::Grouped(groups) => {
                assert_eq!(groups.len(), 1);
                assert_eq!(groups[0].1.count, 2);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn explain_rolls_up_shard_fragments() {
        let e = Explain::from_shards(vec![
            ShardExplain {
                shard: 0,
                backend: Backend::Mview,
                est_pages: 2.0,
                actual_pages: Some(1),
            },
            ShardExplain {
                shard: 1,
                backend: Backend::Mview,
                est_pages: 2.0,
                actual_pages: Some(2),
            },
            ShardExplain {
                shard: 2,
                backend: Backend::Descend,
                est_pages: 9.0,
                actual_pages: None,
            },
        ]);
        assert_eq!(e.backend, Backend::Mview);
        assert_eq!(e.actual_pages, 3);
        let line = e.to_string();
        assert!(line.contains("backend=mview"), "{line}");
        assert!(line.contains("2:skipped"), "{line}");
    }
}
