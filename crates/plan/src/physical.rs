//! Physical execution: binding a chosen backend to the engines that hold
//! the partition's data, and measuring what the run actually cost.

use std::collections::BTreeMap;

use dc_bitmap::BitmapIndex;
use dc_common::{DcError, DcResult, MeasureSummary, ValueId};
use dc_hierarchy::CubeSchema;
use dc_mview::MaterializedView;
use dc_scan::FlatTable;
use dc_tree::{DcTree, PreparedRange};

use crate::logical::LogicalPlan;

/// The execution engines a plan can bind to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Backend {
    /// DC-tree descent (always available).
    Descend,
    /// dc-bitmap WAH set algebra.
    Bitmap,
    /// dc-mview lattice lookup.
    Mview,
    /// dc-scan full-table fallback.
    Scan,
}

impl Backend {
    /// Stable lowercase name (STATS keys, EXPLAIN output).
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Descend => "descend",
            Backend::Bitmap => "bitmap",
            Backend::Mview => "mview",
            Backend::Scan => "scan",
        }
    }

    /// Every backend, in preference order on cost ties.
    pub const ALL: [Backend; 4] = [
        Backend::Descend,
        Backend::Bitmap,
        Backend::Mview,
        Backend::Scan,
    ];
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The result of one (partition-level or merged) query execution.
#[derive(Clone, PartialEq, Debug)]
pub enum QueryOutput {
    /// An ungrouped aggregate.
    Scalar(MeasureSummary),
    /// Non-empty groups, sorted by value id.
    Grouped(Vec<(ValueId, MeasureSummary)>),
}

impl QueryOutput {
    /// The empty output matching `grouped`ness.
    pub fn empty(grouped: bool) -> Self {
        if grouped {
            QueryOutput::Grouped(Vec::new())
        } else {
            QueryOutput::Scalar(MeasureSummary::empty())
        }
    }

    /// Merges another partition's output into this one (scatter-gather).
    pub fn merge(&mut self, other: &QueryOutput) {
        match (self, other) {
            (QueryOutput::Scalar(a), QueryOutput::Scalar(b)) => a.merge(b),
            (QueryOutput::Grouped(a), QueryOutput::Grouped(b)) => {
                let mut map: BTreeMap<ValueId, MeasureSummary> = a.drain(..).collect();
                for (v, s) in b {
                    map.entry(*v).or_default().merge(s);
                }
                *a = map.into_iter().collect();
            }
            _ => unreachable!("scalar and grouped outputs never mix in one plan"),
        }
    }
}

/// Borrowed handles to one partition's engines. The tree is always there;
/// the auxiliary engines only when the partition maintains them.
pub struct BackendRefs<'a> {
    /// The authoritative DC-tree.
    pub tree: &'a DcTree,
    /// WAH bitmap index, if maintained.
    pub bitmap: Option<&'a BitmapIndex>,
    /// Materialized roll-up views, if maintained (callers must not pass
    /// stale views — staleness is tracked upstream).
    pub views: Option<&'a [MaterializedView]>,
    /// Flat table, if maintained.
    pub table: Option<&'a FlatTable>,
}

/// Runs `plan` on `backend` against one partition and returns the output
/// plus the **actual** logical page reads the run charged.
///
/// Descent takes an optional pre-prepared range (shared across shards by
/// dc-serve); the other engines evaluate the raw MDS. The page counts come
/// from each engine's own `IoTracker` delta — concurrent queries on the
/// same snapshot can inflate one another's deltas, which is the same
/// accounting the serve layer already accepts for its cost gauges.
pub fn execute(
    schema: &CubeSchema,
    plan: &LogicalPlan,
    backend: Backend,
    refs: &BackendRefs<'_>,
    prepared: Option<&PreparedRange>,
) -> DcResult<(QueryOutput, u64)> {
    match backend {
        Backend::Descend => {
            let before = refs.tree.io_stats().reads;
            let out = match plan.group_by {
                None => match prepared {
                    Some(p) => QueryOutput::Scalar(refs.tree.range_summary_prepared(p)?),
                    None => QueryOutput::Scalar(refs.tree.range_summary(&plan.filter)?),
                },
                Some((dim, level)) => QueryOutput::Grouped(match prepared {
                    Some(p) => refs.tree.group_by_prepared(dim, level, p)?,
                    None => refs.tree.group_by(dim, level, &plan.filter)?,
                }),
            };
            Ok((out, refs.tree.io_stats().reads - before))
        }
        Backend::Bitmap => {
            let idx = refs.bitmap.ok_or_else(no_backend)?;
            let before = idx.io_stats().reads;
            let out = match plan.group_by {
                None => QueryOutput::Scalar(idx.range_summary(schema, &plan.filter)?),
                Some((dim, level)) => {
                    QueryOutput::Grouped(idx.group_by(schema, dim, level, &plan.filter)?)
                }
            };
            Ok((out, idx.io_stats().reads - before))
        }
        Backend::Mview => {
            let views = refs.views.ok_or_else(no_backend)?;
            let query_levels = plan.filter.levels();
            let best = match plan.group_by {
                None => views
                    .iter()
                    .filter(|v| v.spec().answers(&query_levels))
                    .min_by_key(|v| v.num_cells()),
                Some((dim, level)) => views
                    .iter()
                    .filter(|v| v.answers_group_by(&query_levels, dim, level))
                    .min_by_key(|v| v.num_cells()),
            };
            let view = best.ok_or_else(|| {
                DcError::IncomparableMds("no materialized view answers this query".into())
            })?;
            let out = match plan.group_by {
                None => QueryOutput::Scalar(view.answer(schema, &plan.filter)?),
                Some((dim, level)) => {
                    QueryOutput::Grouped(view.group_by(schema, dim, level, &plan.filter)?)
                }
            };
            // Views have no block store of their own: a lookup sweeps the
            // occupied cells once, priced like records in the flat layout.
            let rpb = refs
                .table
                .map(FlatTable::records_per_block)
                .unwrap_or(256)
                .max(1);
            Ok((out, (view.num_cells().div_ceil(rpb)).max(1) as u64))
        }
        Backend::Scan => {
            let table = refs.table.ok_or_else(no_backend)?;
            let before = table.io_stats().reads;
            let out = match plan.group_by {
                None => QueryOutput::Scalar(table.range_summary(schema, &plan.filter)?),
                Some((dim, level)) => {
                    QueryOutput::Grouped(table.group_by(schema, dim, level, &plan.filter)?)
                }
            };
            Ok((out, table.io_stats().reads - before))
        }
    }
}

fn no_backend() -> DcError {
    DcError::Corrupt("plan chose a backend this partition does not maintain".into())
}
