//! The cost model: page-read estimates per backend, fed by statistics a
//! shard captures when it publishes a snapshot (never by walking a tree at
//! plan time).

use dc_common::Level;
use dc_hierarchy::CubeSchema;
use dc_mview::ViewSpec;

use crate::logical::LogicalPlan;
use crate::physical::Backend;

/// Statistics of one partition (shard), captured at snapshot-publish time.
/// Everything here must be O(1) to read at plan time.
#[derive(Clone, Default, Debug)]
pub struct PartitionStats {
    /// Live records in the partition.
    pub records: u64,
    /// DC-tree nodes (directory + data).
    pub tree_nodes: usize,
    /// DC-tree height.
    pub tree_height: usize,
    /// Records per simulated disk block (from the block config).
    pub records_per_block: usize,
    /// Total compressed bitmap bytes; 0 when the bitmap index is absent.
    pub bitmap_bytes: usize,
    /// `true` when a bitmap index is maintained.
    pub has_bitmap: bool,
    /// `true` when a flat table is maintained.
    pub has_table: bool,
    /// Per materialized view: its lattice levels and occupied cell count.
    /// Empty when views are absent.
    pub view_cells: Vec<(Vec<Level>, usize)>,
    /// `true` while the views await a rebuild (deletes since last publish);
    /// stale views are never chosen.
    pub views_stale: bool,
    /// `true` when the partition's tree is served out-of-core through a
    /// buffer pool (dc-oocore): a visited page is a *possibly cold* page.
    pub disk_resident: bool,
    /// Observed fraction of buffer-pool page touches that went to disk
    /// (`misses / (hits + misses)` at publish time). Only meaningful when
    /// [`disk_resident`](Self::disk_resident); a cold pool reports `1.0`.
    pub pool_miss_rate: f64,
}

/// How much a cold (disk) page fetch costs relative to a hot buffer-frame
/// touch, in the logical-page currency the rest of the model prices in.
/// Decompression plus a read syscall against a warm OS page cache is tens
/// of microseconds vs. ~a microsecond for a resident frame.
pub const COLD_FETCH_PENALTY: f64 = 24.0;

/// The multiplier a partition's descent estimate carries for out-of-core
/// service: hot touches cost 1, the observed miss fraction costs
/// [`COLD_FETCH_PENALTY`]. RAM-resident partitions always price at 1.
pub fn cold_factor(stats: &PartitionStats) -> f64 {
    if !stats.disk_resident {
        return 1.0;
    }
    1.0 + stats.pool_miss_rate.clamp(0.0, 1.0) * (COLD_FETCH_PENALTY - 1.0)
}

/// One backend's page-read estimate.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CostEstimate {
    /// The engine this estimate prices.
    pub backend: Backend,
    /// Estimated logical page reads.
    pub pages: f64,
}

/// The planner's verdict for one partition.
#[derive(Clone, Debug)]
pub struct PartitionPlan {
    /// The chosen (cheapest) backend.
    pub backend: Backend,
    /// Its estimated page reads.
    pub est_pages: f64,
    /// Every candidate that was priced, cheapest first.
    pub candidates: Vec<CostEstimate>,
}

/// Prices every available backend for `plan` over a partition described by
/// `stats`, cheapest first. DC-tree descent is always available; the other
/// engines only when the partition maintains them.
pub fn price(schema: &CubeSchema, plan: &LogicalPlan, stats: &PartitionStats) -> Vec<CostEstimate> {
    let sel = plan.selectivity(schema);
    let records = stats.records as f64;
    let rpb = stats.records_per_block.max(1) as f64;
    let blocks = (records / rpb).ceil().max(1.0);

    let mut out = Vec::with_capacity(4);

    // DC-tree descent: one root-to-leaf spine plus the overlapping
    // fringe. A grouped descent decomposes fewer containments (a node
    // fully inside the filter still splits across groups below the group
    // level), so it visits a larger fringe — priced with a heavier
    // selectivity exponent.
    let nodes = stats.tree_nodes.max(1) as f64;
    let fringe = if plan.group_by.is_some() {
        sel.sqrt()
    } else {
        sel
    };
    out.push(CostEstimate {
        backend: Backend::Descend,
        pages: (stats.tree_height.max(1) as f64 + fringe * nodes) * cold_factor(stats),
    });

    if stats.has_bitmap {
        // Bytes per bitmap, averaged over every (dim, level, value) slot
        // the schema defines — compressed WAH bitmaps are near-uniform on
        // the uniform workloads the estimate targets.
        let slots: usize = schema
            .dims()
            .map(|h| {
                (0..h.top_level())
                    .map(|l| h.num_values_at(l))
                    .sum::<usize>()
            })
            .sum();
        let per_bitmap_blocks =
            ((stats.bitmap_bytes as f64 / slots.max(1) as f64) / 4096.0).max(1.0);
        let mut pages = 0.0;
        for (set, h) in plan.filter.dims().zip(schema.dims()) {
            if set.level() >= h.top_level() {
                continue;
            }
            pages += set.len() as f64 * per_bitmap_blocks;
        }
        if let Some((dim, level)) = plan.group_by {
            pages += schema.dim(dim).num_values_at(level) as f64 * per_bitmap_blocks;
        }
        // The unclustered measure gather: one page per selected record,
        // capped by the column size.
        pages += (sel * records).min(blocks);
        out.push(CostEstimate {
            backend: Backend::Bitmap,
            pages,
        });
    }

    if !stats.view_cells.is_empty() && !stats.views_stale {
        let query_levels = plan.filter.levels();
        let best = stats
            .view_cells
            .iter()
            .filter(|(levels, _)| {
                let spec = ViewSpec::new(levels.clone());
                match plan.group_by {
                    None => spec.answers(&query_levels),
                    Some((dim, glevel)) => {
                        spec.answers(&query_levels)
                            && levels.get(dim.as_usize()).is_some_and(|&v| v <= glevel)
                    }
                }
            })
            .map(|(_, cells)| *cells)
            .min();
        if let Some(cells) = best {
            out.push(CostEstimate {
                backend: Backend::Mview,
                pages: (cells as f64 / rpb).ceil().max(1.0),
            });
        }
    }

    if stats.has_table {
        out.push(CostEstimate {
            backend: Backend::Scan,
            pages: blocks,
        });
    }

    out.sort_by(|a, b| a.pages.total_cmp(&b.pages));
    out
}

/// Prices the backends and picks the cheapest.
pub fn choose(schema: &CubeSchema, plan: &LogicalPlan, stats: &PartitionStats) -> PartitionPlan {
    let candidates = price(schema, plan, stats);
    let best = candidates[0];
    PartitionPlan {
        backend: best.backend,
        est_pages: best.pages,
        candidates,
    }
}
