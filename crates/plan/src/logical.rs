//! The logical plan: what the query computes, independent of any engine.

use dc_common::{AggregateOp, DimensionId, Level};
use dc_hierarchy::CubeSchema;
use dc_mds::Mds;
use dc_ql::ParsedStatement;

/// A logical query plan: the range filter (predicates already pushed down
/// into the MDS by dc-ql's resolver), the aggregates to produce, and an
/// optional group-by. This is the planner's input; backend choice is the
/// planner's output.
#[derive(Clone, Debug)]
pub struct LogicalPlan {
    /// Aggregates to evaluate, in output order (at least one).
    pub ops: Vec<AggregateOp>,
    /// The range filter (unconstrained dimensions hold `ALL`).
    pub filter: Mds,
    /// Optional `GROUP BY (dimension, hierarchy level)`.
    pub group_by: Option<(DimensionId, Level)>,
    /// Optional `TOP k` applied to grouped output at render time.
    pub top: Option<usize>,
}

impl LogicalPlan {
    /// A single-aggregate plan over `filter`.
    pub fn scalar(op: AggregateOp, filter: Mds) -> Self {
        LogicalPlan {
            ops: vec![op],
            filter,
            group_by: None,
            top: None,
        }
    }

    /// Lowers a resolved dc-ql statement (predicate pushdown — the WHERE
    /// clauses — already happened inside [`dc_ql::resolve`]'s semi-join).
    pub fn from_statement(stmt: &ParsedStatement) -> Self {
        LogicalPlan {
            ops: stmt.ops.clone(),
            filter: stmt.filter.clone(),
            group_by: stmt.group_by,
            top: stmt.top,
        }
    }

    /// `true` when any aggregate needs min/max (affects cache reuse, not
    /// backend correctness — every backend returns full summaries).
    pub fn needs_extrema(&self) -> bool {
        self.ops
            .iter()
            .any(|op| matches!(op, AggregateOp::Min | AggregateOp::Max | AggregateOp::Avg))
    }

    /// Estimated fraction of records the filter selects, assuming uniform
    /// value frequencies and independent dimensions: the product over
    /// constrained dimensions of `|selected| / |values at that level|`.
    pub fn selectivity(&self, schema: &CubeSchema) -> f64 {
        let mut sel = 1.0_f64;
        for (set, h) in self.filter.dims().zip(schema.dims()) {
            if set.level() >= h.top_level() {
                continue; // ALL
            }
            let universe = h.num_values_at(set.level()).max(1) as f64;
            sel *= (set.len() as f64 / universe).clamp(0.0, 1.0);
        }
        sel
    }
}
