//! `EXPLAIN` output: the chosen backends, estimated vs. actual page reads,
//! and per-shard plan fragments, rendered on one protocol line.

use std::fmt;

use crate::physical::Backend;

/// One shard's plan fragment.
#[derive(Clone, Debug)]
pub struct ShardExplain {
    /// Shard index.
    pub shard: usize,
    /// Backend the cost model picked for this shard.
    pub backend: Backend,
    /// Estimated page reads.
    pub est_pages: f64,
    /// Measured page reads (`None` when the shard was skipped as
    /// non-overlapping).
    pub actual_pages: Option<u64>,
}

/// A whole query's explain record.
#[derive(Clone, Debug)]
pub struct Explain {
    /// The backend that served the most shards (ties break by
    /// [`Backend::ALL`] order).
    pub backend: Backend,
    /// Total estimated page reads over executed shards.
    pub est_pages: f64,
    /// Total measured page reads.
    pub actual_pages: u64,
    /// Per-shard fragments, in shard order.
    pub shards: Vec<ShardExplain>,
}

impl Explain {
    /// Builds the roll-up from per-shard fragments.
    pub fn from_shards(shards: Vec<ShardExplain>) -> Self {
        let executed = || shards.iter().filter(|s| s.actual_pages.is_some());
        let backend = Backend::ALL
            .iter()
            .copied()
            .filter(|b| executed().any(|s| s.backend == *b))
            .max_by_key(|b| executed().filter(|s| s.backend == *b).count())
            .unwrap_or(Backend::Descend);
        Explain {
            backend,
            est_pages: executed().map(|s| s.est_pages).sum(),
            actual_pages: executed().filter_map(|s| s.actual_pages).sum(),
            shards,
        }
    }
}

impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "backend={} est_pages={:.1} actual_pages={} shards=[",
            self.backend, self.est_pages, self.actual_pages
        )?;
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                f.write_str(";")?;
            }
            match s.actual_pages {
                Some(actual) => write!(
                    f,
                    "{}:{} est={:.1} act={}",
                    s.shard, s.backend, s.est_pages, actual
                )?,
                None => write!(f, "{}:skipped", s.shard)?,
            }
        }
        f.write_str("]")
    }
}
