//! # dc-mview
//!
//! Materialized group-by views over the data cube — the *static* warehouse
//! acceleration the DC-tree paper positions itself against (§1–§2):
//!
//! > "it is a common approach to materialize the results of many of the
//! > relevant queries in order to speed-up query processing. This approach,
//! > however, fails in a dynamic environment where the queries are not
//! > known in advance … The proposed approach is static, i.e. it is useful
//! > only for the initial load of the cube but does not support incremental
//! > changes."
//!
//! A [`ViewSpec`] fixes one hierarchy level per dimension; the
//! [`MaterializedView`] stores one [`MeasureSummary`] per occupied cell of
//! that sub-cube (Harinarayan-style aggregate lattice node). A query is
//! answerable from a view iff the view is at least as fine as the query in
//! every dimension; the [`ViewSet`] picks the cheapest (fewest-cells)
//! answerable view, falling back to `None` when the lattice cannot serve
//! the query — which is where a caller needs a dynamic index instead.
//!
//! The crate deliberately exhibits the static trade-offs the paper
//! describes: inserts must touch *every* view ([`ViewSet::insert`]),
//! deletes invalidate min/max and force a rebuild
//! ([`ViewSet::needs_rebuild`]), and unanticipated query shapes miss the
//! lattice entirely.

use std::collections::HashMap;

use dc_common::{DcError, DcResult, DimensionId, Level, MeasureSummary, ValueId};
use dc_hierarchy::{CubeSchema, Record};
use dc_mds::Mds;

/// One lattice node: the hierarchy level to pre-aggregate at, per dimension
/// (`top_level` = `ALL`, i.e. the dimension is rolled all the way up).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ViewSpec {
    /// One level per cube dimension.
    pub levels: Vec<Level>,
}

impl ViewSpec {
    /// A spec from per-dimension levels.
    pub fn new(levels: Vec<Level>) -> Self {
        ViewSpec { levels }
    }

    /// Validates the spec against a schema.
    pub fn validate(&self, schema: &CubeSchema) -> DcResult<()> {
        if self.levels.len() != schema.num_dims() {
            return Err(DcError::DimensionMismatch {
                expected: schema.num_dims(),
                got: self.levels.len(),
            });
        }
        for (h, &level) in schema.dims().zip(&self.levels) {
            if level > h.top_level() {
                return Err(DcError::BadLevel {
                    dim: h.dimension(),
                    id: h.all(),
                    requested: level,
                });
            }
        }
        Ok(())
    }

    /// `true` iff this view can answer a query whose per-dimension relevant
    /// levels are `query_levels`: the view must be at least as fine
    /// (`view ≤ query` per dimension).
    pub fn answers(&self, query_levels: &[Level]) -> bool {
        self.levels.len() == query_levels.len()
            && self.levels.iter().zip(query_levels).all(|(v, q)| v <= q)
    }
}

/// One materialized group-by view: summaries per occupied cell.
#[derive(Clone, Debug)]
pub struct MaterializedView {
    spec: ViewSpec,
    cells: HashMap<Vec<ValueId>, MeasureSummary>,
}

impl MaterializedView {
    /// An empty view for `spec`.
    pub fn new(spec: ViewSpec) -> Self {
        MaterializedView {
            spec,
            cells: HashMap::new(),
        }
    }

    /// The spec this view materializes.
    pub fn spec(&self) -> &ViewSpec {
        &self.spec
    }

    /// Number of occupied cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    fn key_for(&self, schema: &CubeSchema, record: &Record) -> DcResult<Vec<ValueId>> {
        schema
            .dims()
            .zip(&record.dims)
            .zip(&self.spec.levels)
            .map(|((h, &leaf), &level)| h.ancestor_at(leaf, level))
            .collect()
    }

    /// Folds one record into the view.
    pub fn apply(&mut self, schema: &CubeSchema, record: &Record) -> DcResult<()> {
        let key = self.key_for(schema, record)?;
        self.cells.entry(key).or_default().add(record.measure);
        Ok(())
    }

    /// `true` iff the view can serve `GROUP BY (dim, level)` over a query
    /// whose relevant levels are `query_levels`: it must answer the filter
    /// *and* be at least as fine as the grouping level in that dimension
    /// (a coarser cell could not be attributed to one group).
    pub fn answers_group_by(&self, query_levels: &[Level], dim: DimensionId, level: Level) -> bool {
        self.spec.answers(query_levels)
            && self
                .spec
                .levels
                .get(dim.as_usize())
                .is_some_and(|&v| v <= level)
    }

    /// Groups the cells selected by `range` on `(dim, level)`, rolling each
    /// cell up to its group key. Errors if the view is too coarse for the
    /// filter or the grouping level; groups come back sorted by value id.
    pub fn group_by(
        &self,
        schema: &CubeSchema,
        dim: DimensionId,
        level: Level,
        range: &Mds,
    ) -> DcResult<Vec<(ValueId, MeasureSummary)>> {
        let query_levels = range.levels();
        if !self.answers_group_by(&query_levels, dim, level) {
            return Err(DcError::IncomparableMds(
                "view is coarser than the group-by in some dimension".into(),
            ));
        }
        let group_dim = schema.dim(dim);
        let mut groups: std::collections::BTreeMap<ValueId, MeasureSummary> = Default::default();
        'cells: for (key, summary) in &self.cells {
            for ((h, &cell_value), set) in schema.dims().zip(key).zip(range.dims()) {
                let lifted = h.ancestor_at(cell_value, set.level())?;
                if !set.contains_value(lifted) {
                    continue 'cells;
                }
            }
            let group = group_dim.ancestor_at(key[dim.as_usize()], level)?;
            groups.entry(group).or_default().merge(summary);
        }
        Ok(groups.into_iter().collect())
    }

    /// Answers `range` from the cells, or errors if the view is too coarse.
    pub fn answer(&self, schema: &CubeSchema, range: &Mds) -> DcResult<MeasureSummary> {
        let query_levels = range.levels();
        if !self.spec.answers(&query_levels) {
            return Err(DcError::IncomparableMds(
                "view is coarser than the query in some dimension".into(),
            ));
        }
        let mut acc = MeasureSummary::empty();
        'cells: for (key, summary) in &self.cells {
            for ((h, &cell_value), set) in schema.dims().zip(key).zip(range.dims()) {
                let lifted = h.ancestor_at(cell_value, set.level())?;
                if !set.contains_value(lifted) {
                    continue 'cells;
                }
            }
            acc.merge(summary);
        }
        Ok(acc)
    }
}

/// A set of materialized views with the paper's static life cycle.
#[derive(Clone, Debug)]
pub struct ViewSet {
    schema: CubeSchema,
    views: Vec<MaterializedView>,
    records: u64,
    needs_rebuild: bool,
}

impl ViewSet {
    /// Builds the views over an initial load (one pass, all views).
    pub fn build(schema: CubeSchema, specs: Vec<ViewSpec>, records: &[Record]) -> DcResult<Self> {
        for spec in &specs {
            spec.validate(&schema)?;
        }
        let mut set = ViewSet {
            views: specs.into_iter().map(MaterializedView::new).collect(),
            schema,
            records: 0,
            needs_rebuild: false,
        };
        for r in records {
            set.insert(r)?;
        }
        Ok(set)
    }

    /// The schema the views aggregate.
    pub fn schema(&self) -> &CubeSchema {
        &self.schema
    }

    /// The materialized views.
    pub fn views(&self) -> &[MaterializedView] {
        &self.views
    }

    /// Records folded in so far.
    pub fn len(&self) -> u64 {
        self.records
    }

    /// `true` iff no records are loaded.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Incremental insert: touches **every** view — the cost structure the
    /// paper criticizes ("on the insertion of a data record all index
    /// entries have to be updated").
    pub fn insert(&mut self, record: &Record) -> DcResult<()> {
        self.schema.validate_record(record)?;
        for v in &mut self.views {
            v.apply(&self.schema, record)?;
        }
        self.records += 1;
        Ok(())
    }

    /// Registers a deletion. Summaries cannot subtract min/max, so the set
    /// is only marked stale; answers are refused until [`Self::rebuild`].
    pub fn delete(&mut self, _record: &Record) {
        self.needs_rebuild = true;
    }

    /// `true` once a delete has invalidated the views.
    pub fn needs_rebuild(&self) -> bool {
        self.needs_rebuild
    }

    /// Rebuilds every view from the authoritative record stream (the
    /// nightly batch window in the paper's framing).
    pub fn rebuild(&mut self, records: &[Record]) -> DcResult<()> {
        for v in &mut self.views {
            *v = MaterializedView::new(v.spec.clone());
        }
        self.records = 0;
        self.needs_rebuild = false;
        for r in records {
            self.insert(r)?;
        }
        Ok(())
    }

    /// Answers `range` from the cheapest answerable view. Returns
    /// `Ok(None)` when no view is fine enough (the lattice miss) and an
    /// error when the set is stale.
    pub fn answer(&self, range: &Mds) -> DcResult<Option<MeasureSummary>> {
        if self.needs_rebuild {
            return Err(DcError::Corrupt(
                "materialized views are stale after a delete; rebuild first".into(),
            ));
        }
        let query_levels = range.levels();
        let best = self
            .views
            .iter()
            .filter(|v| v.spec.answers(&query_levels))
            .min_by_key(|v| v.num_cells());
        match best {
            None => Ok(None),
            Some(v) => Ok(Some(v.answer(&self.schema, range)?)),
        }
    }

    /// Total occupied cells over all views (the storage bill of the
    /// lattice).
    pub fn total_cells(&self) -> usize {
        self.views.iter().map(MaterializedView::num_cells).sum()
    }
}

/// The canonical small lattice for a schema: the per-dimension roll-ups
/// (one dimension at each functional level, the rest at `ALL`) plus the
/// all-`ALL` grand total — the views a dashboard of per-dimension charts
/// needs.
pub fn rollup_lattice(schema: &CubeSchema) -> Vec<ViewSpec> {
    let tops: Vec<Level> = schema.dims().map(|h| h.top_level()).collect();
    let mut specs = vec![ViewSpec::new(tops.clone())];
    for (d, h) in schema.dims().enumerate() {
        for level in 0..h.top_level() {
            let mut levels = tops.clone();
            levels[d] = level;
            specs.push(ViewSpec::new(levels));
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_common::DimensionId;
    use dc_hierarchy::HierarchySchema;
    use dc_mds::DimSet;

    fn setup() -> (CubeSchema, Vec<Record>) {
        let mut schema = CubeSchema::new(
            vec![
                HierarchySchema::new("Customer", vec!["Region".into(), "Nation".into()]),
                HierarchySchema::new("Time", vec!["Year".into(), "Month".into()]),
            ],
            "Price",
        );
        let mut records = Vec::new();
        for (r, n, y, m, price) in [
            ("EU", "DE", "1996", "01", 100),
            ("EU", "FR", "1996", "02", 250),
            ("AS", "JP", "1997", "01", 400),
            ("EU", "DE", "1997", "03", 50),
        ] {
            records.push(
                schema
                    .intern_record(&[vec![r, n], vec![y, m]], price)
                    .unwrap(),
            );
        }
        (schema, records)
    }

    #[test]
    fn view_answers_matching_rollups() {
        let (schema, records) = setup();
        let specs = rollup_lattice(&schema);
        let set = ViewSet::build(schema.clone(), specs, &records).unwrap();
        // Region roll-up: EU.
        let eu = schema.dim(DimensionId(0)).lookup_path(&["EU"]).unwrap();
        let q = Mds::new(vec![
            DimSet::singleton(eu),
            DimSet::singleton(schema.dim(DimensionId(1)).all()),
        ]);
        let s = set
            .answer(&q)
            .unwrap()
            .expect("region roll-up is in the lattice");
        assert_eq!(s.sum, 400);
        assert_eq!(s.count, 3);
        // Grand total.
        let s = set.answer(&Mds::all(&schema)).unwrap().unwrap();
        assert_eq!(s.count, 4);
    }

    #[test]
    fn lattice_misses_unanticipated_shapes() {
        let (schema, records) = setup();
        let set = ViewSet::build(schema.clone(), rollup_lattice(&schema), &records).unwrap();
        // A two-dimensional constraint needs a view finer than any
        // single-dimension roll-up: the lattice misses.
        let eu = schema.dim(DimensionId(0)).lookup_path(&["EU"]).unwrap();
        let y96 = schema.dim(DimensionId(1)).lookup_path(&["1996"]).unwrap();
        let q = Mds::new(vec![DimSet::singleton(eu), DimSet::singleton(y96)]);
        assert_eq!(
            set.answer(&q).unwrap(),
            None,
            "the static lattice cannot serve this"
        );
    }

    #[test]
    fn inserts_touch_every_view_and_stay_correct() {
        let (mut schema, records) = setup();
        let extra = schema
            .intern_record(&[vec!["EU", "DE"], vec!["1996", "04"]], 75)
            .unwrap();
        // Build against the fully interned schema, then insert dynamically.
        let mut set = ViewSet::build(schema.clone(), rollup_lattice(&schema), &records).unwrap();
        set.insert(&extra).unwrap();
        let eu = schema.dim(DimensionId(0)).lookup_path(&["EU"]).unwrap();
        let q = Mds::new(vec![
            DimSet::singleton(eu),
            DimSet::singleton(schema.dim(DimensionId(1)).all()),
        ]);
        assert_eq!(set.answer(&q).unwrap().unwrap().sum, 475);
    }

    #[test]
    fn deletes_invalidate_until_rebuild() {
        let (schema, records) = setup();
        let mut set = ViewSet::build(schema.clone(), rollup_lattice(&schema), &records).unwrap();
        set.delete(&records[0]);
        assert!(set.needs_rebuild());
        assert!(
            set.answer(&Mds::all(&schema)).is_err(),
            "stale views must refuse"
        );
        let remaining = &records[1..];
        set.rebuild(remaining).unwrap();
        assert_eq!(set.answer(&Mds::all(&schema)).unwrap().unwrap().count, 3);
    }

    #[test]
    fn view_group_by_rolls_cells_up_to_groups() {
        let (schema, records) = setup();
        // Nation-level view answers GROUP BY Region by rolling cells up.
        let mut view = MaterializedView::new(ViewSpec::new(vec![0, 2]));
        for r in &records {
            view.apply(&schema, r).unwrap();
        }
        let all = Mds::all(&schema);
        assert!(view.answers_group_by(&all.levels(), DimensionId(0), 1));
        let groups = view.group_by(&schema, DimensionId(0), 1, &all).unwrap();
        let h = schema.dim(DimensionId(0));
        let by_name: Vec<(&str, u64, i64)> = groups
            .iter()
            .map(|(v, s)| (h.name(*v).unwrap(), s.count, s.sum))
            .collect();
        assert!(by_name.contains(&("EU", 3, 400)));
        assert!(by_name.contains(&("AS", 1, 400)));
        // A region-level view cannot serve GROUP BY Nation.
        let mut coarse = MaterializedView::new(ViewSpec::new(vec![1, 2]));
        for r in &records {
            coarse.apply(&schema, r).unwrap();
        }
        assert!(!coarse.answers_group_by(&all.levels(), DimensionId(0), 0));
        assert!(coarse.group_by(&schema, DimensionId(0), 0, &all).is_err());
    }

    #[test]
    fn bad_specs_are_rejected() {
        let (schema, _) = setup();
        assert!(ViewSpec::new(vec![0]).validate(&schema).is_err());
        assert!(ViewSpec::new(vec![0, 9]).validate(&schema).is_err());
        assert!(ViewSpec::new(vec![0, 0]).validate(&schema).is_ok());
    }

    #[test]
    fn cheapest_view_is_chosen() {
        let (schema, records) = setup();
        // Two views can answer a region roll-up: region-level (coarse, few
        // cells) and nation-level (finer, more cells). The set must pick
        // the coarse one.
        let specs = vec![
            ViewSpec::new(vec![1, 2]), // region × ALL
            ViewSpec::new(vec![0, 2]), // nation × ALL
        ];
        let set = ViewSet::build(schema.clone(), specs, &records).unwrap();
        let eu = schema.dim(DimensionId(0)).lookup_path(&["EU"]).unwrap();
        let q = Mds::new(vec![
            DimSet::singleton(eu),
            DimSet::singleton(schema.dim(DimensionId(1)).all()),
        ]);
        // Both agree on the answer…
        assert_eq!(set.answer(&q).unwrap().unwrap().sum, 400);
        // …and the chosen (minimal) one is the 2-cell region view.
        let answerable: Vec<usize> = set
            .views()
            .iter()
            .filter(|v| v.spec().answers(&q.levels()))
            .map(MaterializedView::num_cells)
            .collect();
        assert_eq!(answerable.iter().min(), Some(&2));
    }
}
