//! The static/dynamic face-off from the paper's introduction, executable:
//! materialized views answer anticipated roll-ups exactly like the DC-tree,
//! miss unanticipated shapes entirely, and go stale on deletion — while the
//! DC-tree answers everything and stays current.

use dc_mview::{rollup_lattice, ViewSet};
use dc_query::{RangeQueryGen, ValuePick};
use dc_tpcd::{generate, TpcdConfig};
use dc_tree::{DcTree, DcTreeConfig};

#[test]
fn views_and_tree_agree_on_anticipated_rollups() {
    let data = generate(&TpcdConfig::scaled(2_000, 21));
    let mut tree = DcTree::new(data.schema.clone(), DcTreeConfig::default());
    for r in &data.records {
        tree.insert(r.clone()).unwrap();
    }
    let views = ViewSet::build(
        data.schema.clone(),
        rollup_lattice(&data.schema),
        &data.records,
    )
    .unwrap();

    // Every single-dimension roll-up at every level: both engines agree.
    use dc_common::DimensionId;
    use dc_mds::{DimSet, Mds};
    let mut hits = 0;
    for d in 0..data.schema.num_dims() {
        let h = data.schema.dim(DimensionId(d as u16));
        for level in 0..h.top_level() {
            for v in h.values_at(level).take(10) {
                let dims = (0..data.schema.num_dims())
                    .map(|dd| {
                        if dd == d {
                            DimSet::singleton(v)
                        } else {
                            DimSet::singleton(data.schema.dim(DimensionId(dd as u16)).all())
                        }
                    })
                    .collect();
                let q = Mds::new(dims);
                let from_views = views.answer(&q).unwrap().expect("roll-up in lattice");
                let from_tree = tree.range_summary(&q).unwrap();
                assert_eq!(from_views, from_tree);
                hits += 1;
            }
        }
    }
    assert!(
        hits > 30,
        "the sweep must actually exercise queries ({hits})"
    );
}

#[test]
fn unanticipated_queries_miss_the_lattice_but_not_the_tree() {
    let data = generate(&TpcdConfig::scaled(1_500, 23));
    let mut tree = DcTree::new(data.schema.clone(), DcTreeConfig::default());
    for r in &data.records {
        tree.insert(r.clone()).unwrap();
    }
    let views = ViewSet::build(
        data.schema.clone(),
        rollup_lattice(&data.schema),
        &data.records,
    )
    .unwrap();

    // §5.2-style conjunctive queries constrain several dimensions at once —
    // never anticipated by the per-dimension roll-up lattice.
    let mut gen = RangeQueryGen::new(0.25, ValuePick::ContiguousRun, 5);
    let mut misses = 0;
    for _ in 0..25 {
        let q = gen.generate(&data.schema);
        if views.answer(&q).unwrap().is_none() {
            misses += 1;
        }
        // The DC-tree answers regardless.
        let _ = tree.range_summary(&q).unwrap();
    }
    assert!(
        misses >= 20,
        "conjunctive queries should essentially always miss a roll-up lattice ({misses}/25)"
    );
}

#[test]
fn dynamism_gap_deletion() {
    let data = generate(&TpcdConfig::scaled(800, 29));
    let mut tree = DcTree::new(data.schema.clone(), DcTreeConfig::default());
    for r in &data.records {
        tree.insert(r.clone()).unwrap();
    }
    let mut views = ViewSet::build(
        data.schema.clone(),
        rollup_lattice(&data.schema),
        &data.records,
    )
    .unwrap();

    // One delete: the DC-tree absorbs it; the views go stale until a full
    // rebuild over the remaining records.
    let victim = data.records[0].clone();
    assert!(tree.delete(&victim).unwrap());
    views.delete(&victim);
    let all = dc_mds::Mds::all(&data.schema);
    assert!(views.answer(&all).is_err());
    let tree_total = tree.range_summary(&all).unwrap();
    views.rebuild(&data.records[1..]).unwrap();
    assert_eq!(views.answer(&all).unwrap().unwrap(), tree_total);
}
