//! Pretty-printer ↔ parser round-trip: `parse_statement(stmt.to_string())`
//! must reproduce the statement exactly, for arbitrary well-formed ASTs —
//! and malformed text must come back as a positioned error, never a panic
//! and never a silently "repaired" statement.

use dc_common::AggregateOp;
use dc_ql::{parse_statement, QlError, RawCondition, RawPath, SelectBody, Statement};
use proptest::prelude::*;

/// Keywords the grammar claims; identifiers must avoid them (the printer
/// would otherwise emit text the parser reads as structure).
const KEYWORDS: &[&str] = &[
    "SELECT", "EXPLAIN", "WHERE", "AND", "GROUP", "BY", "TOP", "IN", "SUM", "COUNT", "AVG", "MIN",
    "MAX",
];

fn ident() -> impl Strategy<Value = String> {
    let first: Vec<char> = ('a'..='z').chain('A'..='Z').collect();
    let rest: Vec<char> = ('a'..='z')
        .chain('A'..='Z')
        .chain('0'..='9')
        .chain(['_', '#', '-'])
        .collect();
    (
        prop::sample::select(first),
        prop::collection::vec(prop::sample::select(rest), 0..10),
    )
        .prop_map(|(f, r)| std::iter::once(f).chain(r).collect::<String>())
        .prop_filter("identifiers must not collide with keywords", |s| {
            !KEYWORDS.iter().any(|k| k.eq_ignore_ascii_case(s))
        })
}

/// Value names exercise the full quoted charset: spaces, punctuation, and
/// embedded `'` (printed doubled, unescaped on reparse).
fn value() -> impl Strategy<Value = String> {
    let printable: Vec<char> = (0x20u8..0x7f).map(|b| b as char).collect();
    prop::collection::vec(prop::sample::select(printable), 1..13)
        .prop_map(|v| v.into_iter().collect::<String>())
}

fn raw_path() -> impl Strategy<Value = RawPath> {
    (ident(), ident()).prop_map(|(dimension, attribute)| RawPath {
        dimension,
        attribute,
    })
}

fn condition() -> impl Strategy<Value = RawCondition> {
    (raw_path(), prop::collection::vec(value(), 1..4))
        .prop_map(|(path, values)| RawCondition { path, values })
}

/// A non-empty subset of the aggregates in varied order (the grammar
/// rejects `SELECT SUM, SUM`, so draws must be distinct).
fn ops() -> impl Strategy<Value = Vec<AggregateOp>> {
    (1u8..32, 0usize..120).prop_map(|(mask, rot)| {
        let mut v: Vec<AggregateOp> = AggregateOp::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &op)| op)
            .collect();
        let n = v.len();
        v.rotate_left(rot % n);
        v
    })
}

fn body() -> impl Strategy<Value = SelectBody> {
    (
        ops(),
        prop::collection::vec(condition(), 0..4),
        any::<bool>(),
        raw_path(),
        any::<bool>(),
        1usize..100,
    )
        .prop_map(
            |(ops, conditions, has_group, group, has_top, k)| SelectBody {
                ops,
                conditions,
                // TOP is only grammatical with GROUP BY.
                top: (has_group && has_top).then_some(k),
                group_by: has_group.then_some(group),
            },
        )
}

fn statement() -> impl Strategy<Value = Statement> {
    (body(), any::<bool>()).prop_map(|(b, explain)| {
        if explain {
            Statement::Explain(b)
        } else {
            Statement::Select(b)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(768))]

    /// print → parse is the identity on well-formed statements.
    #[test]
    fn pretty_printed_statements_reparse_identically(stmt in statement()) {
        let text = stmt.to_string();
        let reparsed = parse_statement(&text);
        prop_assert_eq!(reparsed.as_ref(), Ok(&stmt), "text: {}", text);
        // And printing is a fixed point: parse(print(x)) prints the same.
        prop_assert_eq!(reparsed.unwrap().to_string(), text);
    }

    /// Statements that differ print differently (the printer loses nothing
    /// the parser can see).
    #[test]
    fn distinct_statements_print_distinctly(a in statement(), b in statement()) {
        if a != b {
            prop_assert_ne!(a.to_string(), b.to_string());
        }
    }
}

/// Malformed inputs: each must fail with a diagnosable error — and the
/// error must carry the offending fragment or a clear message, because the
/// server forwards it verbatim to the client.
#[test]
fn malformed_statements_error_cleanly() {
    let cases: &[(&str, &str)] = &[
        ("", "aggregate"),
        ("SELECT", "aggregate"),
        ("SELECT SUM,", "aggregate"),
        ("SELECT SUM COUNT", "end of statement"),
        ("FROB WHERE x.y = 'z'", "aggregate"),
        ("SUM WHERE", "dimension"),
        ("SUM WHERE Customer", "`.`"),
        ("SUM WHERE Customer.Region", "IN (...) or ="),
        ("SUM WHERE Customer.Region =", "value"),
        ("SUM WHERE Customer.Region IN", "`(`"),
        ("SUM WHERE Customer.Region IN (", "value"),
        ("SUM WHERE Customer.Region IN ('EU' 'ASIA')", "IN list"),
        ("SUM WHERE Customer.Region = 'EU' AND", "dimension"),
        ("SUM GROUP", "BY"),
        ("SUM GROUP BY", "dimension"),
        ("SUM TOP 3", "TOP requires GROUP BY"),
        ("SUM GROUP BY Customer.Region TOP 0", "positive integer"),
        ("SUM GROUP BY Customer.Region TOP x", "positive integer"),
        ("SUM trailing", "end of statement"),
        ("EXPLAIN", "aggregate"),
        ("EXPLAIN EXPLAIN SUM", "aggregate"),
        ("SUM WHERE Customer.Region = 'unterminated", "unterminated"),
        ("SUM ? COUNT", "unexpected character"),
    ];
    for (input, needle) in cases {
        match parse_statement(input) {
            Ok(stmt) => panic!("`{input}` parsed as {stmt:?}"),
            Err(e) => {
                let msg = e.to_string();
                assert!(
                    msg.to_lowercase().contains(&needle.to_lowercase()),
                    "`{input}` errored with `{msg}`, expected it to mention `{needle}`"
                );
            }
        }
    }
}

/// The parser reports *where* it stopped: parse errors embed the nearest
/// token so clients can locate the problem in longer statements.
#[test]
fn parse_errors_carry_position_context() {
    let err = parse_statement("SELECT SUM WHERE Customer.Region = 'EU' GROUP Customer.Nation")
        .unwrap_err();
    match err {
        QlError::Parse { near, .. } => assert_eq!(near, "Customer"),
        other => panic!("expected a parse error, got {other:?}"),
    }
}
