//! End-to-end: queries written in the little language, executed on a
//! DC-tree over TPC-D data, validated against brute force.

use dc_common::{AggregateOp, MeasureSummary};
use dc_ql::parse_query;
use dc_tpcd::{generate, TpcdConfig};
use dc_tree::{DcTree, DcTreeConfig};

fn load(n: usize) -> (dc_tpcd::TpcdData, DcTree) {
    let data = generate(&TpcdConfig::scaled(n, 3));
    let mut tree = DcTree::new(data.schema.clone(), DcTreeConfig::default());
    for r in &data.records {
        tree.insert(r.clone()).unwrap();
    }
    (data, tree)
}

#[test]
fn language_queries_match_brute_force() {
    let (data, tree) = load(3_000);
    let cases = [
        "SUM WHERE Customer.Region = 'EUROPE'",
        "COUNT WHERE Customer.Region IN ('EUROPE', 'ASIA') AND Time.Year = '1996'",
        "AVG WHERE Part.Brand = 'Brand#11'",
        "MIN WHERE Supplier.Nation = 'CANADA'", // small cubes only intern the first few supplier nations
        "MAX WHERE Time.Month = '1996-07'",
        "SUM",
    ];
    for q in cases {
        let parsed = parse_query(&data.schema, q).unwrap();
        let got = tree.range_query(&parsed.filter, parsed.op).unwrap();
        let want: MeasureSummary = data
            .records
            .iter()
            .filter(|r| parsed.filter.contains_record(&data.schema, r).unwrap())
            .map(|r| r.measure)
            .collect();
        assert_eq!(got, want.eval(parsed.op), "query: {q}");
    }
}

#[test]
fn group_by_queries_execute_through_the_single_pass_plan() {
    let (data, tree) = load(2_000);
    let parsed = parse_query(
        &data.schema,
        "SUM WHERE Time.Year = '1996' GROUP BY Customer.Region",
    )
    .unwrap();
    let (dim, level) = parsed.group_by.unwrap();
    let groups = tree.group_by(dim, level, &parsed.filter).unwrap();
    assert!(!groups.is_empty());
    let h = data.schema.dim(dim);
    let mut total = 0f64;
    for (value, summary) in &groups {
        // Cross-check each group against an equality query in the language.
        let name = h.name(*value).unwrap();
        let q = format!("SUM WHERE Customer.Region = '{name}' AND Time.Year = '1996'");
        let parsed = parse_query(&data.schema, &q).unwrap();
        let direct = tree
            .range_query(&parsed.filter, AggregateOp::Sum)
            .unwrap()
            .unwrap();
        assert_eq!(direct, summary.sum as f64, "group {name}");
        total += direct;
    }
    let all_1996 = parse_query(&data.schema, "SUM WHERE Time.Year = '1996'").unwrap();
    assert_eq!(
        tree.range_query(&all_1996.filter, AggregateOp::Sum)
            .unwrap(),
        Some(total)
    );
}

#[test]
fn errors_surface_cleanly_at_runtime() {
    let (data, _) = load(200);
    for bad in [
        "SUM WHERE Customer.Region = 'NOWHERE'",
        "EXPLODE",
        "SUM WHERE Customer.Region IN ()",
    ] {
        assert!(parse_query(&data.schema, bad).is_err(), "{bad} must fail");
    }
}
