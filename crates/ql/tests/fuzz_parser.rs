//! Parser robustness: arbitrary input never panics, and every accepted
//! query produces a structurally valid filter.

use dc_hierarchy::{CubeSchema, HierarchySchema};
use dc_ql::parse_query;
use proptest::prelude::*;

fn schema() -> CubeSchema {
    let mut s = CubeSchema::new(
        vec![
            HierarchySchema::new("Customer", vec!["Region".into(), "Nation".into()]),
            HierarchySchema::new("Time", vec!["Year".into(), "Month".into()]),
        ],
        "Revenue",
    );
    s.intern_record(&[vec!["EU", "DE"], vec!["1996", "01"]], 1)
        .unwrap();
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary strings never panic the lexer or parser.
    #[test]
    fn arbitrary_input_never_panics(input in ".{0,120}") {
        let s = schema();
        let _ = parse_query(&s, &input);
    }

    /// Token-shaped noise (keywords, idents, punctuation in random order)
    /// never panics and, when accepted, yields a filter with one set per
    /// dimension.
    #[test]
    fn token_soup_never_panics(
        pieces in prop::collection::vec(
            prop::sample::select(vec![
                "SUM", "COUNT", "WHERE", "AND", "GROUP", "BY", "TOP", "IN",
                "Customer", "Time", "Region", "Year", ".", ",", "(", ")",
                "=", "'EU'", "'1996'", "3", "x",
            ]),
            0..14,
        )
    ) {
        let s = schema();
        let input = pieces.join(" ");
        if let Ok(q) = parse_query(&s, &input) {
            prop_assert_eq!(q.filter.num_dims(), s.num_dims());
            for set in q.filter.dims() {
                prop_assert!(!set.is_empty());
            }
        }
    }
}
