//! The statement AST (syntactic and resolved forms) and the error type.
//!
//! Parsing is two-phase. [`crate::parse_statement`] produces a purely
//! syntactic [`Statement`] — names are strings, nothing touches a schema —
//! which pretty-prints back to canonical text via [`std::fmt::Display`]
//! (the round-trip the property tests pin). [`crate::resolve`] then binds a
//! statement against a [`CubeSchema`](dc_hierarchy::CubeSchema), merging
//! per-dimension predicates through the dimension tables (the star-schema
//! semi-join) into the executable [`ParsedStatement`].

use std::fmt;

use dc_common::{AggregateOp, DimensionId, Level};
use dc_mds::Mds;

/// One raw `Dimension.Attribute` path, unresolved.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RawPath {
    /// Dimension name as written.
    pub dimension: String,
    /// Hierarchy attribute name as written.
    pub attribute: String,
}

impl fmt::Display for RawPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.dimension, self.attribute)
    }
}

/// One raw `WHERE` predicate: a path and the value names it admits.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RawCondition {
    /// The constrained `Dimension.Attribute`.
    pub path: RawPath,
    /// Admitted value names (one for `=`, several for `IN`).
    pub values: Vec<String>,
}

/// The body of a `SELECT` (or legacy bare-aggregate) statement, syntax
/// only — nothing is resolved against a schema yet.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SelectBody {
    /// The requested aggregates, in statement order (`SELECT SUM, COUNT`).
    pub ops: Vec<AggregateOp>,
    /// The `WHERE` predicates, in statement order. Several predicates may
    /// constrain the *same* dimension; resolution joins them through the
    /// dimension table.
    pub conditions: Vec<RawCondition>,
    /// Optional `GROUP BY Dimension.Attribute`.
    pub group_by: Option<RawPath>,
    /// Optional `TOP k` (requires `GROUP BY`).
    pub top: Option<usize>,
}

/// A parsed statement: a query, optionally wrapped in `EXPLAIN`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Statement {
    /// Execute the query and return its result.
    Select(SelectBody),
    /// Plan (and run) the query, reporting the chosen backends and costs.
    Explain(SelectBody),
}

impl Statement {
    /// The statement's query body, `EXPLAIN` or not.
    pub fn body(&self) -> &SelectBody {
        match self {
            Statement::Select(b) | Statement::Explain(b) => b,
        }
    }

    /// `true` for `EXPLAIN` statements.
    pub fn is_explain(&self) -> bool {
        matches!(self, Statement::Explain(_))
    }
}

/// Quotes a value name as a dc-ql string literal (`'` doubled).
fn quote(value: &str) -> String {
    format!("'{}'", value.replace('\'', "''"))
}

impl fmt::Display for SelectBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{op}")?;
        }
        for (i, c) in self.conditions.iter().enumerate() {
            write!(f, " {} ", if i == 0 { "WHERE" } else { "AND" })?;
            match c.values.as_slice() {
                [one] => write!(f, "{} = {}", c.path, quote(one))?,
                many => {
                    write!(f, "{} IN (", c.path)?;
                    for (j, v) in many.iter().enumerate() {
                        if j > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{}", quote(v))?;
                    }
                    write!(f, ")")?;
                }
            }
        }
        if let Some(g) = &self.group_by {
            write!(f, " GROUP BY {g}")?;
        }
        if let Some(k) = self.top {
            write!(f, " TOP {k}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(b) => write!(f, "{b}"),
            Statement::Explain(b) => write!(f, "EXPLAIN {b}"),
        }
    }
}

/// How one dimension's predicates were folded into the range: the
/// star-schema semi-join record the planner surfaces in `EXPLAIN`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JoinInfo {
    /// The constrained dimension.
    pub dim: DimensionId,
    /// Number of `WHERE` predicates on this dimension.
    pub predicates: usize,
    /// The level the merged predicate selects at (the finest constrained
    /// attribute).
    pub level: Level,
    /// How many values at that level survived the join.
    pub values: usize,
}

/// A parsed, name-resolved statement, ready to plan and execute.
#[derive(Clone, Debug)]
pub struct ParsedStatement {
    /// The requested aggregates, in statement order (at least one).
    pub ops: Vec<AggregateOp>,
    /// The filter as a range MDS (unconstrained dimensions hold `ALL`).
    pub filter: Mds,
    /// Optional `GROUP BY`: the dimension and hierarchy level to group on.
    pub group_by: Option<(DimensionId, Level)>,
    /// Optional `TOP k` limit for grouped output (largest first aggregate
    /// first).
    pub top: Option<usize>,
    /// Per-dimension join summaries (one per constrained dimension).
    pub joins: Vec<JoinInfo>,
}

/// A parsed, name-resolved single-aggregate query (the original dc-ql
/// surface, kept for callers that predate [`ParsedStatement`]).
#[derive(Clone, Debug)]
pub struct ParsedQuery {
    /// The aggregation operator.
    pub op: AggregateOp,
    /// The filter as a range MDS (unconstrained dimensions hold `ALL`).
    pub filter: Mds,
    /// Optional `GROUP BY`: the dimension and hierarchy level to group on.
    pub group_by: Option<(DimensionId, Level)>,
    /// Optional `TOP k` limit for grouped output (largest aggregate first).
    pub top: Option<usize>,
}

/// Parse / resolution errors, with positions where applicable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum QlError {
    /// Lexical error at a byte offset.
    Lex { offset: usize, message: String },
    /// Grammar violation.
    Parse { near: String, message: String },
    /// The query referenced an unknown dimension.
    UnknownDimension(String),
    /// The query referenced an attribute the dimension does not have.
    UnknownAttribute {
        dimension: String,
        attribute: String,
    },
    /// No value with this name exists on the referenced level.
    UnknownValue {
        dimension: String,
        attribute: String,
        value: String,
    },
    /// Joining a dimension's predicates left no admissible value — the
    /// predicates contradict (e.g. `Nation = 'JAPAN' AND Region = 'EUROPE'`).
    EmptySelection(String),
}

impl fmt::Display for QlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QlError::Lex { offset, message } => {
                write!(f, "lexical error at byte {offset}: {message}")
            }
            QlError::Parse { near, message } => write!(f, "parse error near `{near}`: {message}"),
            QlError::UnknownDimension(d) => write!(f, "unknown dimension `{d}`"),
            QlError::UnknownAttribute {
                dimension,
                attribute,
            } => {
                write!(f, "dimension `{dimension}` has no attribute `{attribute}`")
            }
            QlError::UnknownValue {
                dimension,
                attribute,
                value,
            } => write!(
                f,
                "no value named '{value}' on level {attribute} of dimension {dimension}"
            ),
            QlError::EmptySelection(d) => {
                write!(
                    f,
                    "predicates on dimension `{d}` contradict: no value satisfies all of them"
                )
            }
        }
    }
}

impl std::error::Error for QlError {}
