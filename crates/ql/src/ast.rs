//! The compiled query and the error type.

use std::fmt;

use dc_common::{AggregateOp, DimensionId, Level};
use dc_mds::Mds;

/// A parsed, name-resolved query, ready to execute against a DC-tree.
#[derive(Clone, Debug)]
pub struct ParsedQuery {
    /// The aggregation operator.
    pub op: AggregateOp,
    /// The filter as a range MDS (unconstrained dimensions hold `ALL`).
    pub filter: Mds,
    /// Optional `GROUP BY`: the dimension and hierarchy level to group on.
    pub group_by: Option<(DimensionId, Level)>,
    /// Optional `TOP k` limit for grouped output (largest aggregate first).
    pub top: Option<usize>,
}

/// Parse / resolution errors, with positions where applicable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum QlError {
    /// Lexical error at a byte offset.
    Lex { offset: usize, message: String },
    /// Grammar violation.
    Parse { near: String, message: String },
    /// The query referenced an unknown dimension.
    UnknownDimension(String),
    /// The query referenced an attribute the dimension does not have.
    UnknownAttribute {
        dimension: String,
        attribute: String,
    },
    /// No value with this name exists on the referenced level.
    UnknownValue {
        dimension: String,
        attribute: String,
        value: String,
    },
    /// Two conditions constrained the same dimension.
    DuplicateCondition(String),
}

impl fmt::Display for QlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QlError::Lex { offset, message } => {
                write!(f, "lexical error at byte {offset}: {message}")
            }
            QlError::Parse { near, message } => write!(f, "parse error near `{near}`: {message}"),
            QlError::UnknownDimension(d) => write!(f, "unknown dimension `{d}`"),
            QlError::UnknownAttribute {
                dimension,
                attribute,
            } => {
                write!(f, "dimension `{dimension}` has no attribute `{attribute}`")
            }
            QlError::UnknownValue {
                dimension,
                attribute,
                value,
            } => write!(
                f,
                "no value named '{value}' on level {attribute} of dimension {dimension}"
            ),
            QlError::DuplicateCondition(d) => {
                write!(
                    f,
                    "dimension `{d}` is constrained twice (combine the values with IN)"
                )
            }
        }
    }
}

impl std::error::Error for QlError {}
