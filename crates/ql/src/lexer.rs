//! Tokenizer for the query language.

use crate::ast::QlError;

/// A token with its source text.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Token {
    /// Bare identifier or keyword (`SUM`, `WHERE`, `Customer`, …).
    Ident(String),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `=`
    Eq,
}

impl Token {
    /// Source-like rendering for error messages.
    pub fn render(&self) -> String {
        match self {
            Token::Ident(s) => s.clone(),
            Token::Str(s) => format!("'{s}'"),
            Token::Dot => ".".into(),
            Token::Comma => ",".into(),
            Token::LParen => "(".into(),
            Token::RParen => ")".into(),
            Token::Eq => "=".into(),
        }
    }
}

/// Tokenizes `input`. Identifiers may contain letters, digits, `_`, `#` and
/// `-` (TPC-D value names like `Brand#11` appear in attribute positions of
/// example scripts, and `MIDDLE EAST` is quoted instead).
pub fn tokenize(input: &str) -> Result<Vec<Token>, QlError> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '\'' => {
                let mut value = String::new();
                let mut j = i + 1;
                loop {
                    match bytes.get(j) {
                        None => {
                            return Err(QlError::Lex {
                                offset: i,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(b'\'') if bytes.get(j + 1) == Some(&b'\'') => {
                            value.push('\'');
                            j += 2;
                        }
                        Some(b'\'') => {
                            j += 1;
                            break;
                        }
                        Some(&b) => {
                            value.push(b as char);
                            j += 1;
                        }
                    }
                }
                tokens.push(Token::Str(value));
                i = j;
            }
            c if c.is_ascii_alphanumeric() || c == '_' || c == '#' || c == '-' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' || c == '#' || c == '-' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(QlError::Lex {
                    offset: i,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_full_query() {
        let toks = tokenize(
            "SUM WHERE Customer.Region IN ('EUROPE', 'MIDDLE EAST') AND Time.Year = '1996'",
        )
        .unwrap();
        assert_eq!(toks[0], Token::Ident("SUM".into()));
        assert!(toks.contains(&Token::Str("MIDDLE EAST".into())));
        assert!(toks.contains(&Token::Eq));
        assert_eq!(toks.iter().filter(|t| **t == Token::Dot).count(), 2);
    }

    #[test]
    fn string_escapes_and_errors() {
        assert_eq!(
            tokenize("'it''s'").unwrap(),
            vec![Token::Str("it's".into())]
        );
        assert!(matches!(tokenize("'open"), Err(QlError::Lex { .. })));
        assert!(matches!(tokenize("a ? b"), Err(QlError::Lex { .. })));
    }

    #[test]
    fn identifier_charset_covers_tpcd_names() {
        let toks = tokenize("Brand#11 Customer_1 1996-03").unwrap();
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0], Token::Ident("Brand#11".into()));
        assert_eq!(toks[2], Token::Ident("1996-03".into()));
    }
}
