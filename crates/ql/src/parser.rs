//! Recursive-descent parser and name resolution.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query      := agg where? group?
//! agg        := 'SUM' | 'COUNT' | 'AVG' | 'MIN' | 'MAX'
//! where      := 'WHERE' condition ('AND' condition)*
//! condition  := path 'IN' '(' value (',' value)* ')'
//!             | path '=' value
//! group      := 'GROUP' 'BY' path ('TOP' int)?
//! path       := ident '.' ident          // Dimension.Attribute
//! value      := string | ident           // 'EUROPE' or 1996-03
//! ```

use dc_common::{AggregateOp, DimensionId, Level, ValueId};
use dc_hierarchy::{ConceptHierarchy, CubeSchema};
use dc_mds::{DimSet, Mds};

use crate::ast::{ParsedQuery, QlError};
use crate::lexer::{tokenize, Token};

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    schema: &'a CubeSchema,
}

/// Parses and resolves one query against `schema`.
pub fn parse_query(schema: &CubeSchema, input: &str) -> Result<ParsedQuery, QlError> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        schema,
    };
    let q = p.query()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("expected end of query"));
    }
    Ok(q)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: &str) -> QlError {
        QlError::Parse {
            near: self
                .peek()
                .map(Token::render)
                .unwrap_or_else(|| "<end>".into()),
            message: message.into(),
        }
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn ident(&mut self, what: &str) -> Result<String, QlError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err(&format!("expected {what}")))
            }
        }
    }

    fn value_name(&mut self) -> Result<String, QlError> {
        match self.next() {
            Some(Token::Str(s)) => Ok(s),
            Some(Token::Ident(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected a value (quoted string or bare name)"))
            }
        }
    }

    fn query(&mut self) -> Result<ParsedQuery, QlError> {
        let op = self.aggregate()?;
        let mut per_dim: Vec<Option<DimSet>> = vec![None; self.schema.num_dims()];
        if self.keyword("WHERE") {
            loop {
                self.condition(&mut per_dim)?;
                if !self.keyword("AND") {
                    break;
                }
            }
        }
        let group_by = if self.keyword("GROUP") {
            if !self.keyword("BY") {
                return Err(self.err("expected BY after GROUP"));
            }
            let (dim, level, _) = self.path()?;
            Some((dim, level))
        } else {
            None
        };
        let top = if self.keyword("TOP") {
            if group_by.is_none() {
                return Err(self.err("TOP requires GROUP BY"));
            }
            let n = self.ident("a positive count after TOP")?;
            let n: usize = n.parse().map_err(|_| QlError::Parse {
                near: n.clone(),
                message: "TOP expects a positive integer".into(),
            })?;
            if n == 0 {
                return Err(QlError::Parse {
                    near: "0".into(),
                    message: "TOP expects a positive integer".into(),
                });
            }
            Some(n)
        } else {
            None
        };
        let dims = per_dim
            .into_iter()
            .enumerate()
            .map(|(d, set)| {
                set.unwrap_or_else(|| {
                    DimSet::singleton(self.schema.dim(DimensionId(d as u16)).all())
                })
            })
            .collect();
        Ok(ParsedQuery {
            op,
            filter: Mds::new(dims),
            group_by,
            top,
        })
    }

    fn aggregate(&mut self) -> Result<AggregateOp, QlError> {
        let name = self.ident("an aggregate (SUM, COUNT, AVG, MIN, MAX)")?;
        match name.to_ascii_uppercase().as_str() {
            "SUM" => Ok(AggregateOp::Sum),
            "COUNT" => Ok(AggregateOp::Count),
            "AVG" => Ok(AggregateOp::Avg),
            "MIN" => Ok(AggregateOp::Min),
            "MAX" => Ok(AggregateOp::Max),
            _ => Err(QlError::Parse {
                near: name,
                message: "expected an aggregate (SUM, COUNT, AVG, MIN, MAX)".into(),
            }),
        }
    }

    /// `Dimension.Attribute` resolved to (dimension, level, hierarchy).
    fn path(&mut self) -> Result<(DimensionId, Level, &'a ConceptHierarchy), QlError> {
        let dim_name = self.ident("a dimension name")?;
        if self.next() != Some(Token::Dot) {
            self.pos = self.pos.saturating_sub(1);
            return Err(self.err("expected `.` after the dimension name"));
        }
        let attr_name = self.ident("an attribute name")?;
        let dim = self
            .schema
            .dims()
            .position(|h| h.schema().name().eq_ignore_ascii_case(&dim_name))
            .ok_or_else(|| QlError::UnknownDimension(dim_name.clone()))?;
        let h = self.schema.dim(DimensionId(dim as u16));
        let level = (0..h.top_level())
            .find(|&l| {
                h.schema()
                    .attribute_name(l)
                    .is_some_and(|a| a.eq_ignore_ascii_case(&attr_name))
            })
            .ok_or(QlError::UnknownAttribute {
                dimension: dim_name,
                attribute: attr_name,
            })?;
        Ok((DimensionId(dim as u16), level, h))
    }

    fn condition(&mut self, per_dim: &mut [Option<DimSet>]) -> Result<(), QlError> {
        let (dim, level, h) = self.path()?;
        if per_dim[dim.as_usize()].is_some() {
            return Err(QlError::DuplicateCondition(h.schema().name().to_string()));
        }
        let names: Vec<String> = if self.keyword("IN") {
            if self.next() != Some(Token::LParen) {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.err("expected `(` after IN"));
            }
            let mut names = vec![self.value_name()?];
            loop {
                match self.next() {
                    Some(Token::Comma) => names.push(self.value_name()?),
                    Some(Token::RParen) => break,
                    _ => {
                        self.pos = self.pos.saturating_sub(1);
                        return Err(self.err("expected `,` or `)` in the IN list"));
                    }
                }
            }
            names
        } else if self.next() == Some(Token::Eq) {
            vec![self.value_name()?]
        } else {
            self.pos = self.pos.saturating_sub(1);
            return Err(self.err("expected IN (...) or = after the attribute"));
        };

        let mut values: Vec<ValueId> = Vec::new();
        for name in &names {
            // Every value with this name on the level qualifies (names can
            // repeat under different parents, e.g. month '03').
            let matches: Vec<ValueId> = h
                .values_at(level)
                .filter(|&v| h.name(v).is_ok_and(|n| n == name))
                .collect();
            if matches.is_empty() {
                return Err(QlError::UnknownValue {
                    dimension: h.schema().name().to_string(),
                    attribute: h.schema().attribute_name(level).unwrap_or("?").to_string(),
                    value: name.clone(),
                });
            }
            values.extend(matches);
        }
        per_dim[dim.as_usize()] = Some(DimSet::new(level, values));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_hierarchy::HierarchySchema;

    fn schema() -> CubeSchema {
        let mut s = CubeSchema::new(
            vec![
                HierarchySchema::new("Customer", vec!["Region".into(), "Nation".into()]),
                HierarchySchema::new("Time", vec!["Year".into(), "Month".into()]),
            ],
            "Revenue",
        );
        for (r, n, y, m) in [
            ("EUROPE", "GERMANY", "1996", "03"),
            ("EUROPE", "FRANCE", "1996", "07"),
            ("ASIA", "JAPAN", "1997", "03"),
        ] {
            s.intern_record(&[vec![r, n], vec![y, m]], 1).unwrap();
        }
        s
    }

    #[test]
    fn parses_full_query() {
        let s = schema();
        let q = parse_query(
            &s,
            "sum where Customer.Region in ('EUROPE') and Time.Year = '1996'",
        )
        .unwrap();
        assert_eq!(q.op, AggregateOp::Sum);
        assert_eq!(q.filter.dim(0).len(), 1);
        assert_eq!(q.filter.dim(0).level(), 1);
        assert_eq!(q.filter.dim(1).level(), 1);
        assert!(q.group_by.is_none());
    }

    #[test]
    fn bare_aggregate_is_unconstrained() {
        let s = schema();
        let q = parse_query(&s, "COUNT").unwrap();
        assert_eq!(q.op, AggregateOp::Count);
        for (d, h) in s.dims().enumerate() {
            assert_eq!(q.filter.dim(d).values(), &[h.all()]);
        }
    }

    #[test]
    fn repeating_names_match_every_parent() {
        let s = schema();
        // Month '03' exists under 1996 and 1997.
        let q = parse_query(&s, "SUM WHERE Time.Month = '03'").unwrap();
        assert_eq!(q.filter.dim(1).len(), 2);
        assert_eq!(q.filter.dim(1).level(), 0);
    }

    #[test]
    fn group_by_resolves_level() {
        let s = schema();
        let q = parse_query(&s, "AVG GROUP BY Customer.Nation").unwrap();
        assert_eq!(q.group_by, Some((DimensionId(0), 0)));
        let q = parse_query(&s, "AVG GROUP BY Customer.Region").unwrap();
        assert_eq!(q.group_by, Some((DimensionId(0), 1)));
    }

    #[test]
    fn top_k_parses_and_validates() {
        let s = schema();
        let q = parse_query(&s, "SUM GROUP BY Customer.Region TOP 3").unwrap();
        assert_eq!(q.top, Some(3));
        assert!(q.group_by.is_some());
        assert!(
            parse_query(&s, "SUM TOP 3").is_err(),
            "TOP without GROUP BY"
        );
        assert!(parse_query(&s, "SUM GROUP BY Customer.Region TOP 0").is_err());
        assert!(parse_query(&s, "SUM GROUP BY Customer.Region TOP x").is_err());
    }

    #[test]
    fn bare_identifiers_work_as_values() {
        let s = schema();
        let q = parse_query(&s, "SUM WHERE Time.Year IN (1996, 1997)").unwrap();
        assert_eq!(q.filter.dim(1).len(), 2);
    }

    #[test]
    fn error_paths_are_reported() {
        let s = schema();
        assert!(matches!(
            parse_query(&s, "FROB"),
            Err(QlError::Parse { .. })
        ));
        assert!(matches!(
            parse_query(&s, "SUM WHERE Nope.Region = 'EUROPE'"),
            Err(QlError::UnknownDimension(_))
        ));
        assert!(matches!(
            parse_query(&s, "SUM WHERE Customer.Shoe = 'EUROPE'"),
            Err(QlError::UnknownAttribute { .. })
        ));
        assert!(matches!(
            parse_query(&s, "SUM WHERE Customer.Region = 'ATLANTIS'"),
            Err(QlError::UnknownValue { .. })
        ));
        assert!(matches!(
            parse_query(
                &s,
                "SUM WHERE Customer.Region = 'EUROPE' AND Customer.Nation = 'GERMANY'"
            ),
            Err(QlError::DuplicateCondition(_))
        ));
        assert!(matches!(
            parse_query(&s, "SUM trailing"),
            Err(QlError::Parse { .. })
        ));
    }
}
