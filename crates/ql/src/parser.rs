//! Recursive-descent parser and name resolution.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! statement  := 'EXPLAIN'? body
//! body       := 'SELECT' agg (',' agg)* tail      // multi-aggregate form
//!             | agg tail                          // legacy single-aggregate
//! agg        := 'SUM' | 'COUNT' | 'AVG' | 'MIN' | 'MAX'
//! tail       := where? group? ('TOP' int)?
//! where      := 'WHERE' condition ('AND' condition)*
//! condition  := path 'IN' '(' value (',' value)* ')'
//!             | path '=' value
//! group      := 'GROUP' 'BY' path
//! path       := ident '.' ident          // Dimension.Attribute
//! value      := string | ident           // 'EUROPE' or 1996-03
//! ```
//!
//! Parsing is schema-free ([`parse_statement`]); name resolution happens in
//! a second phase ([`resolve`]). Several conditions may constrain the same
//! dimension: resolution performs a star-schema semi-join through the
//! dimension's concept hierarchy — the finest constrained attribute supplies
//! the candidate values, and every coarser condition filters them by
//! ancestor membership (exactly the restriction a join against the
//! denormalized dimension table would produce).

use dc_common::{AggregateOp, DimensionId, ValueId};
use dc_hierarchy::{ConceptHierarchy, CubeSchema};
use dc_mds::{DimSet, Mds};

use crate::ast::{
    JoinInfo, ParsedQuery, ParsedStatement, QlError, RawCondition, RawPath, SelectBody, Statement,
};
use crate::lexer::{tokenize, Token};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Parses one statement (no schema needed; names stay raw strings).
pub fn parse_statement(input: &str) -> Result<Statement, QlError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let s = p.statement()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("expected end of statement"));
    }
    Ok(s)
}

/// Resolves a statement body's names against `schema`, joining multiple
/// conditions on one dimension through its hierarchy.
pub fn resolve(schema: &CubeSchema, body: &SelectBody) -> Result<ParsedStatement, QlError> {
    Resolver { schema }.resolve(body)
}

/// Parses and resolves one single-aggregate query against `schema` — the
/// original dc-ql entry point, kept source-compatible. Multi-aggregate
/// `SELECT` and `EXPLAIN` statements are rejected here; use
/// [`parse_statement`] + [`resolve`] for those.
pub fn parse_query(schema: &CubeSchema, input: &str) -> Result<ParsedQuery, QlError> {
    let stmt = parse_statement(input)?;
    if stmt.is_explain() {
        return Err(QlError::Parse {
            near: "EXPLAIN".into(),
            message: "EXPLAIN is not supported by parse_query".into(),
        });
    }
    let resolved = resolve(schema, stmt.body())?;
    if resolved.ops.len() != 1 {
        return Err(QlError::Parse {
            near: "SELECT".into(),
            message: "parse_query accepts exactly one aggregate".into(),
        });
    }
    Ok(ParsedQuery {
        op: resolved.ops[0],
        filter: resolved.filter,
        group_by: resolved.group_by,
        top: resolved.top,
    })
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: &str) -> QlError {
        QlError::Parse {
            near: self
                .peek()
                .map(Token::render)
                .unwrap_or_else(|| "<end>".into()),
            message: message.into(),
        }
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn ident(&mut self, what: &str) -> Result<String, QlError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err(&format!("expected {what}")))
            }
        }
    }

    fn value_name(&mut self) -> Result<String, QlError> {
        match self.next() {
            Some(Token::Str(s)) => Ok(s),
            Some(Token::Ident(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected a value (quoted string or bare name)"))
            }
        }
    }

    fn statement(&mut self) -> Result<Statement, QlError> {
        let explain = self.keyword("EXPLAIN");
        let body = self.body()?;
        Ok(if explain {
            Statement::Explain(body)
        } else {
            Statement::Select(body)
        })
    }

    fn body(&mut self) -> Result<SelectBody, QlError> {
        let ops = if self.keyword("SELECT") {
            let mut ops = vec![self.aggregate()?];
            while self.peek() == Some(&Token::Comma) {
                self.pos += 1;
                let op = self.aggregate()?;
                if ops.contains(&op) {
                    return Err(QlError::Parse {
                        near: op.to_string(),
                        message: "aggregate requested twice".into(),
                    });
                }
                ops.push(op);
            }
            ops
        } else {
            vec![self.aggregate()?]
        };

        let mut conditions = Vec::new();
        if self.keyword("WHERE") {
            loop {
                conditions.push(self.condition()?);
                if !self.keyword("AND") {
                    break;
                }
            }
        }
        let group_by = if self.keyword("GROUP") {
            if !self.keyword("BY") {
                return Err(self.err("expected BY after GROUP"));
            }
            Some(self.path()?)
        } else {
            None
        };
        let top = if self.keyword("TOP") {
            if group_by.is_none() {
                return Err(self.err("TOP requires GROUP BY"));
            }
            let n = self.ident("a positive count after TOP")?;
            let n: usize = n.parse().map_err(|_| QlError::Parse {
                near: n.clone(),
                message: "TOP expects a positive integer".into(),
            })?;
            if n == 0 {
                return Err(QlError::Parse {
                    near: "0".into(),
                    message: "TOP expects a positive integer".into(),
                });
            }
            Some(n)
        } else {
            None
        };
        Ok(SelectBody {
            ops,
            conditions,
            group_by,
            top,
        })
    }

    fn aggregate(&mut self) -> Result<AggregateOp, QlError> {
        let name = self.ident("an aggregate (SUM, COUNT, AVG, MIN, MAX)")?;
        match name.to_ascii_uppercase().as_str() {
            "SUM" => Ok(AggregateOp::Sum),
            "COUNT" => Ok(AggregateOp::Count),
            "AVG" => Ok(AggregateOp::Avg),
            "MIN" => Ok(AggregateOp::Min),
            "MAX" => Ok(AggregateOp::Max),
            _ => Err(QlError::Parse {
                near: name,
                message: "expected an aggregate (SUM, COUNT, AVG, MIN, MAX)".into(),
            }),
        }
    }

    /// `Dimension.Attribute`, raw.
    fn path(&mut self) -> Result<RawPath, QlError> {
        let dimension = self.ident("a dimension name")?;
        if self.next() != Some(Token::Dot) {
            self.pos = self.pos.saturating_sub(1);
            return Err(self.err("expected `.` after the dimension name"));
        }
        let attribute = self.ident("an attribute name")?;
        Ok(RawPath {
            dimension,
            attribute,
        })
    }

    fn condition(&mut self) -> Result<RawCondition, QlError> {
        let path = self.path()?;
        let values: Vec<String> = if self.keyword("IN") {
            if self.next() != Some(Token::LParen) {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.err("expected `(` after IN"));
            }
            let mut names = vec![self.value_name()?];
            loop {
                match self.next() {
                    Some(Token::Comma) => names.push(self.value_name()?),
                    Some(Token::RParen) => break,
                    _ => {
                        self.pos = self.pos.saturating_sub(1);
                        return Err(self.err("expected `,` or `)` in the IN list"));
                    }
                }
            }
            names
        } else if self.next() == Some(Token::Eq) {
            vec![self.value_name()?]
        } else {
            self.pos = self.pos.saturating_sub(1);
            return Err(self.err("expected IN (...) or = after the attribute"));
        };
        Ok(RawCondition { path, values })
    }
}

struct Resolver<'a> {
    schema: &'a CubeSchema,
}

impl<'a> Resolver<'a> {
    fn resolve(&self, body: &SelectBody) -> Result<ParsedStatement, QlError> {
        // Gather the resolved conditions per dimension, in statement order.
        let mut per_dim: Vec<Vec<DimSet>> = vec![Vec::new(); self.schema.num_dims()];
        for cond in &body.conditions {
            let (dim, set) = self.condition(cond)?;
            per_dim[dim.as_usize()].push(set);
        }

        let mut joins = Vec::new();
        let mut dims = Vec::with_capacity(self.schema.num_dims());
        for (d, sets) in per_dim.into_iter().enumerate() {
            let dim = DimensionId(d as u16);
            let h = self.schema.dim(dim);
            if sets.is_empty() {
                dims.push(DimSet::singleton(h.all()));
                continue;
            }
            let predicates = sets.len();
            let merged = self.join_dimension(h, sets)?;
            joins.push(JoinInfo {
                dim,
                predicates,
                level: merged.level(),
                values: merged.len(),
            });
            dims.push(merged);
        }

        let group_by = match &body.group_by {
            Some(p) => {
                let (dim, level, _) = self.lookup_path(p)?;
                Some((dim, level))
            }
            None => None,
        };
        Ok(ParsedStatement {
            ops: body.ops.clone(),
            filter: Mds::new(dims),
            group_by,
            top: body.top,
            joins,
        })
    }

    fn lookup_path(&self, p: &RawPath) -> Result<(DimensionId, u8, &'a ConceptHierarchy), QlError> {
        let dim = self
            .schema
            .dims()
            .position(|h| h.schema().name().eq_ignore_ascii_case(&p.dimension))
            .ok_or_else(|| QlError::UnknownDimension(p.dimension.clone()))?;
        let h = self.schema.dim(DimensionId(dim as u16));
        let level = (0..h.top_level())
            .find(|&l| {
                h.schema()
                    .attribute_name(l)
                    .is_some_and(|a| a.eq_ignore_ascii_case(&p.attribute))
            })
            .ok_or_else(|| QlError::UnknownAttribute {
                dimension: p.dimension.clone(),
                attribute: p.attribute.clone(),
            })?;
        Ok((DimensionId(dim as u16), level, h))
    }

    /// One condition resolved to the values it names on its level.
    fn condition(&self, cond: &RawCondition) -> Result<(DimensionId, DimSet), QlError> {
        let (dim, level, h) = self.lookup_path(&cond.path)?;
        let mut values: Vec<ValueId> = Vec::new();
        for name in &cond.values {
            // Every value with this name on the level qualifies (names can
            // repeat under different parents, e.g. month '03').
            let matches: Vec<ValueId> = h
                .values_at(level)
                .filter(|&v| h.name(v).is_ok_and(|n| n == name))
                .collect();
            if matches.is_empty() {
                return Err(QlError::UnknownValue {
                    dimension: h.schema().name().to_string(),
                    attribute: h.schema().attribute_name(level).unwrap_or("?").to_string(),
                    value: name.clone(),
                });
            }
            values.extend(matches);
        }
        Ok((dim, DimSet::new(level, values)))
    }

    /// Joins all of one dimension's resolved conditions into a single
    /// DimSet at the finest constrained level: candidates come from the
    /// finest condition(s); coarser conditions keep a candidate only when
    /// its ancestor at their level is admitted (the dimension-table
    /// semi-join of a star schema).
    fn join_dimension(
        &self,
        h: &ConceptHierarchy,
        mut sets: Vec<DimSet>,
    ) -> Result<DimSet, QlError> {
        sets.sort_by_key(DimSet::level);
        let finest = sets[0].level();
        let mut candidates: Vec<ValueId> = sets[0].values().to_vec();
        for set in &sets[1..] {
            if set.level() == finest {
                candidates.retain(|v| set.values().contains(v));
            } else {
                candidates.retain(|v| {
                    h.ancestor_at(*v, set.level())
                        .is_ok_and(|a| set.values().contains(&a))
                });
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        if candidates.is_empty() {
            return Err(QlError::EmptySelection(h.schema().name().to_string()));
        }
        Ok(DimSet::new(finest, candidates))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_hierarchy::HierarchySchema;

    fn schema() -> CubeSchema {
        let mut s = CubeSchema::new(
            vec![
                HierarchySchema::new("Customer", vec!["Region".into(), "Nation".into()]),
                HierarchySchema::new("Time", vec!["Year".into(), "Month".into()]),
            ],
            "Revenue",
        );
        for (r, n, y, m) in [
            ("EUROPE", "GERMANY", "1996", "03"),
            ("EUROPE", "FRANCE", "1996", "07"),
            ("ASIA", "JAPAN", "1997", "03"),
        ] {
            s.intern_record(&[vec![r, n], vec![y, m]], 1).unwrap();
        }
        s
    }

    #[test]
    fn parses_full_query() {
        let s = schema();
        let q = parse_query(
            &s,
            "sum where Customer.Region in ('EUROPE') and Time.Year = '1996'",
        )
        .unwrap();
        assert_eq!(q.op, AggregateOp::Sum);
        assert_eq!(q.filter.dim(0).len(), 1);
        assert_eq!(q.filter.dim(0).level(), 1);
        assert_eq!(q.filter.dim(1).level(), 1);
        assert!(q.group_by.is_none());
    }

    #[test]
    fn bare_aggregate_is_unconstrained() {
        let s = schema();
        let q = parse_query(&s, "COUNT").unwrap();
        assert_eq!(q.op, AggregateOp::Count);
        for (d, h) in s.dims().enumerate() {
            assert_eq!(q.filter.dim(d).values(), &[h.all()]);
        }
    }

    #[test]
    fn repeating_names_match_every_parent() {
        let s = schema();
        // Month '03' exists under 1996 and 1997.
        let q = parse_query(&s, "SUM WHERE Time.Month = '03'").unwrap();
        assert_eq!(q.filter.dim(1).len(), 2);
        assert_eq!(q.filter.dim(1).level(), 0);
    }

    #[test]
    fn group_by_resolves_level() {
        let s = schema();
        let q = parse_query(&s, "AVG GROUP BY Customer.Nation").unwrap();
        assert_eq!(q.group_by, Some((DimensionId(0), 0)));
        let q = parse_query(&s, "AVG GROUP BY Customer.Region").unwrap();
        assert_eq!(q.group_by, Some((DimensionId(0), 1)));
    }

    #[test]
    fn top_k_parses_and_validates() {
        let s = schema();
        let q = parse_query(&s, "SUM GROUP BY Customer.Region TOP 3").unwrap();
        assert_eq!(q.top, Some(3));
        assert!(q.group_by.is_some());
        assert!(
            parse_query(&s, "SUM TOP 3").is_err(),
            "TOP without GROUP BY"
        );
        assert!(parse_query(&s, "SUM GROUP BY Customer.Region TOP 0").is_err());
        assert!(parse_query(&s, "SUM GROUP BY Customer.Region TOP x").is_err());
    }

    #[test]
    fn bare_identifiers_work_as_values() {
        let s = schema();
        let q = parse_query(&s, "SUM WHERE Time.Year IN (1996, 1997)").unwrap();
        assert_eq!(q.filter.dim(1).len(), 2);
    }

    #[test]
    fn select_multi_aggregate_parses() {
        let s = schema();
        let stmt =
            parse_statement("SELECT SUM, COUNT, MAX WHERE Customer.Region = 'EUROPE'").unwrap();
        let r = resolve(&s, stmt.body()).unwrap();
        assert_eq!(
            r.ops,
            vec![AggregateOp::Sum, AggregateOp::Count, AggregateOp::Max]
        );
        assert!(parse_statement("SELECT SUM, SUM").is_err(), "duplicate agg");
        assert!(
            parse_query(&s, "SELECT SUM, COUNT").is_err(),
            "parse_query is single-aggregate"
        );
    }

    #[test]
    fn explain_wraps_any_body() {
        let s = schema();
        let stmt = parse_statement("EXPLAIN SELECT SUM GROUP BY Customer.Region").unwrap();
        assert!(stmt.is_explain());
        assert!(resolve(&s, stmt.body()).is_ok());
        assert!(parse_query(&s, "EXPLAIN SUM").is_err());
    }

    #[test]
    fn same_dimension_conditions_join_through_the_hierarchy() {
        let s = schema();
        // Region narrows the Nation candidates: GERMANY is in EUROPE.
        let q = parse_query(
            &s,
            "SUM WHERE Customer.Region = 'EUROPE' AND Customer.Nation = 'GERMANY'",
        )
        .unwrap();
        assert_eq!(q.filter.dim(0).level(), 0);
        assert_eq!(q.filter.dim(0).len(), 1);
        // Contradiction: JAPAN is not in EUROPE.
        assert!(matches!(
            parse_query(
                &s,
                "SUM WHERE Customer.Region = 'EUROPE' AND Customer.Nation = 'JAPAN'"
            ),
            Err(QlError::EmptySelection(_))
        ));
        // Two finest-level conditions intersect.
        let q = parse_query(
            &s,
            "SUM WHERE Customer.Nation IN ('GERMANY', 'FRANCE') AND Customer.Nation IN ('FRANCE', 'JAPAN')",
        )
        .unwrap();
        assert_eq!(q.filter.dim(0).len(), 1);
    }

    #[test]
    fn join_summaries_record_the_semi_join() {
        let s = schema();
        let stmt = parse_statement(
            "SELECT SUM WHERE Customer.Region = 'EUROPE' AND Customer.Nation IN ('GERMANY', 'FRANCE')",
        )
        .unwrap();
        let r = resolve(&s, stmt.body()).unwrap();
        assert_eq!(r.joins.len(), 1);
        assert_eq!(r.joins[0].dim, DimensionId(0));
        assert_eq!(r.joins[0].predicates, 2);
        assert_eq!(r.joins[0].level, 0);
        assert_eq!(r.joins[0].values, 2);
    }

    #[test]
    fn error_paths_are_reported() {
        let s = schema();
        assert!(matches!(
            parse_query(&s, "FROB"),
            Err(QlError::Parse { .. })
        ));
        assert!(matches!(
            parse_query(&s, "SUM WHERE Nope.Region = 'EUROPE'"),
            Err(QlError::UnknownDimension(_))
        ));
        assert!(matches!(
            parse_query(&s, "SUM WHERE Customer.Shoe = 'EUROPE'"),
            Err(QlError::UnknownAttribute { .. })
        ));
        assert!(matches!(
            parse_query(&s, "SUM WHERE Customer.Region = 'ATLANTIS'"),
            Err(QlError::UnknownValue { .. })
        ));
        assert!(matches!(
            parse_query(&s, "SUM trailing"),
            Err(QlError::Parse { .. })
        ));
        assert!(matches!(
            parse_statement("SELECT"),
            Err(QlError::Parse { .. })
        ));
        assert!(matches!(
            parse_statement("EXPLAIN"),
            Err(QlError::Parse { .. })
        ));
        assert!(matches!(
            parse_statement("SELECT SUM,"),
            Err(QlError::Parse { .. })
        ));
    }

    #[test]
    fn statements_round_trip_through_pretty_print() {
        for text in [
            "SELECT SUM",
            "SELECT SUM, COUNT WHERE Customer.Region = 'EUROPE'",
            "EXPLAIN SELECT AVG WHERE Time.Year IN ('1996', '1997') GROUP BY Customer.Nation TOP 5",
            "SELECT MIN WHERE Customer.Region IN ('EUROPE', 'MIDDLE EAST') AND Time.Month = 'it''s'",
        ] {
            let stmt = parse_statement(text).unwrap();
            let pretty = stmt.to_string();
            let again = parse_statement(&pretty).unwrap();
            assert_eq!(stmt, again, "round-trip of `{text}` via `{pretty}`");
        }
        // Legacy form canonicalizes to SELECT but stays semantically equal.
        let legacy = parse_statement("SUM WHERE Customer.Region = 'EUROPE'").unwrap();
        let canon = parse_statement(&legacy.to_string()).unwrap();
        assert_eq!(legacy, canon);
    }
}
