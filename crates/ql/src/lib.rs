//! # dc-ql
//!
//! A small aggregate-query language over data cubes, compiled to the range
//! MDSs the DC-tree executes. The paper's future work calls for integrating
//! the DC-tree "into a commercial DBMS"; this crate supplies the thin
//! declarative front-end such an integration needs:
//!
//! ```text
//! SUM WHERE Customer.Region IN ('EUROPE', 'ASIA') AND Time.Year = '1996'
//! AVG WHERE Part.Brand = 'Brand#11'
//! COUNT
//! ```
//!
//! * the aggregate keyword selects the [`AggregateOp`](dc_common::AggregateOp);
//! * each condition names a dimension and one of its hierarchy attributes —
//!   the attribute determines the *relevant level* of the range MDS;
//! * values are resolved by name on that level (every match is included
//!   when a name repeats under different parents, e.g. month `'03'` of
//!   every year);
//! * dimensions without a condition stay unconstrained (`ALL`);
//! * several conditions on the *same* dimension are joined through its
//!   concept hierarchy (a star-schema semi-join): the finest attribute
//!   supplies the candidates and coarser predicates filter them by
//!   ancestor membership;
//! * `GROUP BY <dim>.<attr>` compiles to the DC-tree's single-pass
//!   [`group_by`](https://docs.rs/dc-tree) plan;
//! * `SELECT SUM, COUNT, … [WHERE …] [GROUP BY …] [TOP k]` requests
//!   several aggregates at once, and `EXPLAIN <statement>` asks the
//!   planner to report its chosen backend and costs instead of (as well
//!   as) the answer.
//!
//! Parsing is two-phase: [`parse_statement`] is pure syntax (no schema) and
//! produces a [`Statement`] that pretty-prints back to canonical text;
//! [`resolve`] binds it against a schema into a [`ParsedStatement`].
//!
//! ```
//! use dc_hierarchy::{CubeSchema, HierarchySchema};
//! use dc_ql::parse_query;
//!
//! let mut schema = CubeSchema::new(
//!     vec![HierarchySchema::new("Customer", vec!["Region".into(), "Nation".into()])],
//!     "Revenue",
//! );
//! schema.intern_record(&[vec!["EUROPE", "GERMANY"]], 1).unwrap();
//! let q = parse_query(&schema, "SUM WHERE Customer.Region IN ('EUROPE')").unwrap();
//! assert_eq!(q.op, dc_common::AggregateOp::Sum);
//! assert!(q.group_by.is_none());
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{
    JoinInfo, ParsedQuery, ParsedStatement, QlError, RawCondition, RawPath, SelectBody, Statement,
};
pub use parser::{parse_query, parse_statement, resolve};
