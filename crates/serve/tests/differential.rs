//! Differential tests: the sharded engine must answer every query exactly
//! like one monolithic `DcTree` over the same records — under concurrent
//! ingest, both partition policies, dynamic interning, deletes, and WAL
//! recovery.

use std::sync::Arc;

use dc_common::{AggregateOp, DimensionId, MeasureSummary, ValueId};
use dc_query::{RangeQueryGen, ValuePick};
use dc_serve::{EngineConfig, PartitionPolicy, ShardedDcTree, SyncPolicy, WalOptions};
use dc_tpcd::{generate, TpcdConfig, TpcdData};
use dc_tree::{DcTree, DcTreeConfig};

const RECORDS: usize = 4_000;

fn tpcd() -> TpcdData {
    generate(&TpcdConfig::scaled(RECORDS, 11))
}

fn monolith(data: &TpcdData) -> DcTree {
    let mut tree = DcTree::new(data.schema.clone(), DcTreeConfig::default());
    for r in &data.records {
        tree.insert(r.clone()).unwrap();
    }
    tree
}

/// TPC-D partitions naturally by customer region: dimension 0, whose top
/// functional level (Region) sits just below ALL.
fn region_policy(data: &TpcdData) -> PartitionPolicy {
    let dim = DimensionId(0);
    PartitionPolicy::ByDimension {
        dim,
        level: data.schema.dim(dim).top_level() - 1,
    }
}

fn engine_config(policy: PartitionPolicy) -> EngineConfig {
    EngineConfig {
        num_shards: 4,
        policy,
        ..EngineConfig::default()
    }
}

/// Concurrently ingests the cube from four producer threads.
fn ingest_concurrently(engine: &ShardedDcTree, data: &TpcdData, producers: usize) {
    std::thread::scope(|s| {
        for p in 0..producers {
            s.spawn(move || {
                for r in data.records.iter().skip(p).step_by(producers) {
                    engine.insert_raw(&data.paths_for(r), r.measure).unwrap();
                }
            });
        }
    });
    engine.flush();
}

/// 100 random §5.2 queries across the paper's three selectivities.
fn queries(data: &TpcdData) -> Vec<dc_mds::Mds> {
    let mut out = Vec::new();
    for (sel, seed) in [(0.01, 3), (0.05, 4), (0.25, 5)] {
        let mut gen = RangeQueryGen::new(sel, ValuePick::Scattered, seed);
        for _ in 0..34 {
            out.push(gen.generate(&data.schema));
        }
    }
    assert!(out.len() >= 100);
    out
}

fn assert_engine_matches_monolith(engine: &ShardedDcTree, mono: &DcTree, data: &TpcdData) {
    assert_eq!(engine.len(), mono.len());
    assert_eq!(engine.total_summary(), mono.total_summary());
    for q in queries(data) {
        assert_eq!(
            engine.range_summary(&q).unwrap(),
            mono.range_summary(&q).unwrap(),
            "summary mismatch for {q:?}"
        );
        for op in AggregateOp::ALL {
            assert_eq!(
                engine.range_query(&q, op).unwrap(),
                mono.range_query(&q, op).unwrap(),
                "{op} mismatch for {q:?}"
            );
        }
    }
}

#[test]
fn concurrent_ingest_matches_monolith_hash_partitioning() {
    let data = tpcd();
    let mono = monolith(&data);
    let engine =
        ShardedDcTree::new(data.schema.clone(), engine_config(PartitionPolicy::Hash)).unwrap();
    ingest_concurrently(&engine, &data, 4);
    assert_engine_matches_monolith(&engine, &mono, &data);
    engine.shutdown();
}

#[test]
fn concurrent_ingest_matches_monolith_dimension_partitioning() {
    let data = tpcd();
    let mono = monolith(&data);
    let engine =
        ShardedDcTree::new(data.schema.clone(), engine_config(region_policy(&data))).unwrap();
    ingest_concurrently(&engine, &data, 4);
    // Dimension partitioning must actually spread the records.
    let populated = (0..engine.num_shards())
        .filter(|&s| !engine.shard_snapshot(s).is_empty())
        .count();
    assert!(populated >= 2, "regions all hashed to one shard?");
    assert_engine_matches_monolith(&engine, &mono, &data);
}

#[test]
fn group_by_merges_across_shards() {
    let data = tpcd();
    let mono = monolith(&data);
    let engine =
        ShardedDcTree::new(data.schema.clone(), engine_config(region_policy(&data))).unwrap();
    ingest_concurrently(&engine, &data, 4);
    let mut gen = RangeQueryGen::new(0.25, ValuePick::Scattered, 9);
    for case in 0..20 {
        let filter = gen.generate(&data.schema);
        let dim = DimensionId((case % data.schema.num_dims()) as u16);
        let level = (case as u8 / 4) % data.schema.dim(dim).top_level();
        let mut got: Vec<(ValueId, MeasureSummary)> = engine.group_by(dim, level, &filter).unwrap();
        let mut want = mono.group_by(dim, level, &filter).unwrap();
        got.sort_by_key(|(v, _)| *v);
        want.sort_by_key(|(v, _)| *v);
        // Shards report groups only for values they interned; the merged
        // result may omit empty groups the monolith reports (or vice
        // versa) — compare the non-empty rows.
        got.retain(|(_, s)| s.count > 0);
        want.retain(|(_, s)| s.count > 0);
        assert_eq!(got, want, "group_by({dim:?}, {level}) under {filter:?}");
    }
}

#[test]
fn parallel_scatter_gather_matches_monolith() {
    // Same assertions as the sequential tests, but with the per-query
    // worker threads force-enabled (the default only turns them on when
    // spare cores exist — correctness must not depend on that).
    let data = tpcd();
    let mono = monolith(&data);
    let engine = ShardedDcTree::new(
        data.schema.clone(),
        EngineConfig {
            parallel_queries: true,
            ..engine_config(region_policy(&data))
        },
    )
    .unwrap();
    ingest_concurrently(&engine, &data, 4);
    assert_engine_matches_monolith(&engine, &mono, &data);
}

/// The persistent query pool must be answer-invisible: a pool-enabled
/// engine and a sequential engine, both churned by concurrent inserts and
/// then deletes (with queries issued *during* the ingest to exercise
/// catalog-prepared ranges against lagging shard schemas), end up agreeing
/// with each other and with a monolith over the same final records.
#[test]
fn pooled_executor_matches_sequential_and_monolith_under_churn() {
    let data = tpcd();
    for policy in [PartitionPolicy::Hash, region_policy(&data)] {
        let pooled = ShardedDcTree::new(
            data.schema.clone(),
            EngineConfig {
                parallel_queries: true,
                pool_workers: Some(3),
                cache: None,
                ..engine_config(policy)
            },
        )
        .unwrap();
        let sequential = ShardedDcTree::new(
            data.schema.clone(),
            EngineConfig {
                parallel_queries: false,
                cache: None,
                ..engine_config(policy)
            },
        )
        .unwrap();
        let qs = queries(&data);
        std::thread::scope(|scope| {
            for p in 0..2 {
                let pooled = &pooled;
                let data = &data;
                scope.spawn(move || {
                    for r in data.records.iter().skip(p).step_by(2) {
                        pooled.insert_raw(&data.paths_for(r), r.measure).unwrap();
                    }
                });
            }
            let sequential = &sequential;
            let data = &data;
            scope.spawn(move || {
                for r in &data.records {
                    sequential
                        .insert_raw(&data.paths_for(r), r.measure)
                        .unwrap();
                }
            });
            // Two query threads race the ingest: each answer reflects *some*
            // set of published snapshots, so it must simply succeed — the
            // exact comparison happens after the flush below.
            for t in 0..2 {
                let pooled = &pooled;
                let qs = &qs;
                scope.spawn(move || {
                    for q in qs.iter().skip(t).step_by(2) {
                        pooled.range_summary(q).unwrap();
                    }
                });
            }
        });
        // Deletes flow through both engines identically.
        for r in data.records.iter().step_by(4) {
            pooled.delete_raw(&data.paths_for(r), r.measure).unwrap();
            sequential
                .delete_raw(&data.paths_for(r), r.measure)
                .unwrap();
        }
        pooled.flush();
        sequential.flush();
        let mut mono = monolith(&data);
        for r in data.records.iter().step_by(4) {
            assert!(mono.delete(r).unwrap());
        }
        assert_eq!(pooled.len(), mono.len());
        assert_eq!(sequential.len(), mono.len());
        for q in &qs {
            let want = mono.range_summary(q).unwrap();
            assert_eq!(
                pooled.range_summary(q).unwrap(),
                want,
                "pooled mismatch under {policy:?} for {q:?}"
            );
            assert_eq!(
                sequential.range_summary(q).unwrap(),
                want,
                "sequential mismatch under {policy:?} for {q:?}"
            );
        }
        // The pooled run must actually have exercised the executor.
        use std::sync::atomic::Ordering::Relaxed;
        let pm = &pooled.metrics().pool;
        assert_eq!(pm.workers.load(Relaxed), 3);
        assert!(
            pm.tasks.load(Relaxed) + pm.inline_tasks.load(Relaxed) > 0,
            "no query ever ran on the pool under {policy:?}"
        );
        pooled.shutdown();
        sequential.shutdown();
    }
}

/// Regression for snapshot over-acquisition: a shard whose schema cannot
/// match the query (it never interned any of the query's values) must be
/// skipped *before* the `shard_visits` counter ticks, not after.
#[test]
fn schema_empty_shards_are_skipped_without_visits() {
    let data = tpcd();
    let engine = ShardedDcTree::new(
        dc_tpcd::cube_schema(),
        EngineConfig {
            num_shards: 2,
            policy: PartitionPolicy::Hash,
            cache: None,
            parallel_queries: false,
            ..Default::default()
        },
    )
    .unwrap();
    // One record: it routes to exactly one shard; the other shard never
    // receives a command, so its snapshot keeps the value-free construction
    // schema.
    let r = &data.records[0];
    engine.insert_raw(&data.paths_for(r), r.measure).unwrap();
    engine.flush();
    let populated = (0..2)
        .filter(|&s| !engine.shard_snapshot(s).is_empty())
        .count();
    assert_eq!(populated, 1);
    // Query the record's own leaf in dimension 0, unconstrained elsewhere.
    let s = engine.schema();
    let q = dc_mds::Mds::new(
        (0..s.num_dims())
            .map(|d| {
                let h = s.dim(DimensionId(d as u16));
                if d == 0 {
                    dc_mds::DimSet::new(0, vec![h.values_at(0).next().unwrap()])
                } else {
                    dc_mds::DimSet::new(h.top_level(), vec![h.all()])
                }
            })
            .collect(),
    );
    use std::sync::atomic::Ordering::Relaxed;
    for _ in 0..3 {
        let before = engine.metrics().shard_visits.load(Relaxed);
        let sum = engine.range_summary(&q).unwrap();
        assert_eq!(sum.count, 1);
        assert_eq!(
            engine.metrics().shard_visits.load(Relaxed) - before,
            1,
            "schema-empty shard counted as a visit"
        );
    }
}

#[test]
fn dynamic_interning_from_empty_schema_matches_monolith() {
    // Sequential ingest starting from an empty (value-free) schema: the
    // catalog log and shard replay carry every value. Sequential, so the
    // monolith's intern order matches the catalog's and IDs are comparable.
    let data = tpcd();
    let schema = dc_tpcd::cube_schema();
    let mut mono = DcTree::new(schema.clone(), DcTreeConfig::default());
    let engine = ShardedDcTree::new(
        schema,
        EngineConfig {
            num_shards: 4,
            policy: PartitionPolicy::Hash,
            ..Default::default()
        },
    )
    .unwrap();
    for r in &data.records {
        let paths = data.paths_for(r);
        mono.insert_raw(&paths, r.measure).unwrap();
        engine.insert_raw(&paths, r.measure).unwrap();
    }
    engine.flush();
    // Queries must be generated against the *engine's* schema (same IDs as
    // the monolith's, since both interned the identical sequence).
    let engine_schema = engine.schema();
    let mut gen = RangeQueryGen::new(0.05, ValuePick::Scattered, 6);
    assert_eq!(engine.len(), mono.len());
    for _ in 0..50 {
        let q = gen.generate(&engine_schema);
        assert_eq!(
            engine.range_summary(&q).unwrap(),
            mono.range_summary(&q).unwrap()
        );
    }
}

#[test]
fn deletes_flow_through_shards() {
    let data = tpcd();
    let mut mono = monolith(&data);
    let engine =
        ShardedDcTree::new(data.schema.clone(), engine_config(region_policy(&data))).unwrap();
    ingest_concurrently(&engine, &data, 2);
    // Delete every third record.
    for r in data.records.iter().step_by(3) {
        assert!(mono.delete(r).unwrap());
        engine.delete_raw(&data.paths_for(r), r.measure).unwrap();
    }
    engine.flush();
    assert_eq!(engine.len(), mono.len());
    assert_eq!(engine.total_summary(), mono.total_summary());
    let mut gen = RangeQueryGen::new(0.25, ValuePick::Scattered, 13);
    for _ in 0..30 {
        let q = gen.generate(&data.schema);
        assert_eq!(
            engine.range_summary(&q).unwrap(),
            mono.range_summary(&q).unwrap()
        );
    }
}

#[test]
fn wal_recovery_restores_the_engine() {
    let data = tpcd();
    let dir = std::env::temp_dir().join(format!("dc-serve-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = EngineConfig {
        num_shards: 4,
        policy: PartitionPolicy::Hash,
        wal: Some(WalOptions {
            sync: SyncPolicy::EveryN(64),
            ..WalOptions::new(&dir)
        }),
        ..Default::default()
    };
    let cut = data.records.len() / 2;
    {
        let engine = ShardedDcTree::new(data.schema.clone(), config.clone()).unwrap();
        for r in &data.records[..cut] {
            engine.insert_raw(&data.paths_for(r), r.measure).unwrap();
        }
        engine.flush();
        engine.shutdown();
    }
    // Reopen: the WAL replays the first half; then ingest the second half.
    let engine = Arc::new(ShardedDcTree::new(data.schema.clone(), config).unwrap());
    assert_eq!(engine.len(), cut as u64);
    for r in &data.records[cut..] {
        engine.insert_raw(&data.paths_for(r), r.measure).unwrap();
    }
    engine.flush();
    let mono = monolith(&data);
    assert_eq!(engine.len(), mono.len());
    assert_eq!(engine.total_summary(), mono.total_summary());
    let mut gen = RangeQueryGen::new(0.05, ValuePick::Scattered, 17);
    for _ in 0..30 {
        let q = gen.generate(&data.schema);
        assert_eq!(
            engine.range_summary(&q).unwrap(),
            mono.range_summary(&q).unwrap()
        );
    }
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression: reopening an engine (even repeatedly, even with a flush
/// before any new ingest) must not re-log the replayed entries — every
/// open sees exactly the original records, never duplicates.
#[test]
fn double_open_does_not_duplicate_records() {
    let data = tpcd();
    let dir = std::env::temp_dir().join(format!("dc-serve-dblopen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = EngineConfig {
        num_shards: 2,
        wal: Some(WalOptions::new(&dir)),
        ..Default::default()
    };
    let n = 300;
    let expected = {
        let engine = ShardedDcTree::new(data.schema.clone(), config.clone()).unwrap();
        for r in &data.records[..n] {
            engine.insert_raw(&data.paths_for(r), r.measure).unwrap();
        }
        engine.flush();
        let total = engine.total_summary();
        engine.shutdown();
        total
    };
    for reopen in 0..3 {
        let engine = ShardedDcTree::new(data.schema.clone(), config.clone()).unwrap();
        // The flush-before-first-insert path must not re-log the replay.
        engine.flush();
        assert_eq!(
            engine.len(),
            n as u64,
            "reopen #{reopen} duplicated records"
        );
        assert_eq!(engine.total_summary(), expected);
        engine.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Checkpoints bound recovery: after a CHECKPOINT, reopening replays only
/// the tail (asserted via `recovery_replayed_entries`), and the recovered
/// engine still answers exactly like a never-restarted monolith.
#[test]
fn checkpoint_bounds_replay_on_recovery() {
    let data = tpcd();
    let dir = std::env::temp_dir().join(format!("dc-serve-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = EngineConfig {
        num_shards: 4,
        policy: PartitionPolicy::Hash,
        wal: Some(WalOptions::new(&dir)),
        ..Default::default()
    };
    let total = 1_000;
    let cut = 700;
    {
        let engine = ShardedDcTree::new(data.schema.clone(), config.clone()).unwrap();
        assert!(
            engine.checkpoint().unwrap() == 0,
            "empty engine checkpoints at LSN 0"
        );
        for r in &data.records[..cut] {
            engine.insert_raw(&data.paths_for(r), r.measure).unwrap();
        }
        let lsn = engine.checkpoint().unwrap();
        assert_eq!(lsn, cut as u64);
        for r in &data.records[cut..total] {
            engine.insert_raw(&data.paths_for(r), r.measure).unwrap();
        }
        engine.flush();
        let m = engine.metrics();
        use std::sync::atomic::Ordering::Relaxed;
        assert_eq!(m.durability.checkpoints.load(Relaxed), 2);
        assert_eq!(m.durability.checkpoint_last_lsn.load(Relaxed), cut as u64);
        engine.shutdown();
    }
    let engine = ShardedDcTree::new(data.schema.clone(), config).unwrap();
    use std::sync::atomic::Ordering::Relaxed;
    let d = &engine.metrics().durability;
    assert_eq!(d.recovery_checkpoint_lsn.load(Relaxed), cut as u64);
    assert_eq!(
        d.recovery_replayed_entries.load(Relaxed),
        (total - cut) as u64,
        "recovery must replay only the post-checkpoint tail"
    );
    let mut mono = DcTree::new(data.schema.clone(), DcTreeConfig::default());
    for r in &data.records[..total] {
        mono.insert_raw(&data.paths_for(r), r.measure).unwrap();
    }
    assert_eq!(engine.len(), mono.len());
    assert_eq!(engine.total_summary(), mono.total_summary());
    let mut gen = RangeQueryGen::new(0.05, ValuePick::Scattered, 23);
    for _ in 0..30 {
        let q = gen.generate(&data.schema);
        assert_eq!(
            engine.range_summary(&q).unwrap(),
            mono.range_summary(&q).unwrap()
        );
    }
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Auto-checkpoints fire from the ingest path and bound the replay too.
#[test]
fn auto_checkpoint_from_ingest_path() {
    let data = tpcd();
    let dir = std::env::temp_dir().join(format!("dc-serve-autockpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = EngineConfig {
        num_shards: 2,
        wal: Some(WalOptions {
            checkpoint_every: 100,
            sync: SyncPolicy::GroupCommitMs(5),
            ..WalOptions::new(&dir)
        }),
        ..Default::default()
    };
    let n = 450;
    {
        let engine = ShardedDcTree::new(data.schema.clone(), config.clone()).unwrap();
        for r in &data.records[..n] {
            engine.insert_raw(&data.paths_for(r), r.measure).unwrap();
        }
        engine.flush();
        use std::sync::atomic::Ordering::Relaxed;
        assert!(engine.metrics().durability.checkpoints.load(Relaxed) >= 4);
        engine.shutdown();
    }
    let engine = ShardedDcTree::new(data.schema, config).unwrap();
    use std::sync::atomic::Ordering::Relaxed;
    let d = &engine.metrics().durability;
    assert!(d.recovery_checkpoint_lsn.load(Relaxed) >= 400);
    assert!(d.recovery_replayed_entries.load(Relaxed) < 100);
    assert_eq!(engine.len(), n as u64);
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The aggregate cache must be answer-invisible: a cached engine, an
/// uncached engine, and the monolith agree on *repeated* queries (the
/// second ask is served from the cache) interleaved with concurrent
/// inserts and deletes, under both partition policies.
#[test]
fn cached_engine_matches_uncached_and_monolith_across_writes() {
    let data = tpcd();
    for policy in [PartitionPolicy::Hash, region_policy(&data)] {
        let mut mono = monolith(&data);
        let cached = ShardedDcTree::new(data.schema.clone(), engine_config(policy)).unwrap();
        let uncached = ShardedDcTree::new(
            data.schema.clone(),
            EngineConfig {
                cache: None,
                ..engine_config(policy)
            },
        )
        .unwrap();
        ingest_concurrently(&cached, &data, 4);
        ingest_concurrently(&uncached, &data, 4);

        let qs = queries(&data);
        // First pass populates the cache; nothing to compare yet.
        for q in &qs {
            cached.range_summary(q).unwrap();
        }
        // Writes: delete every 5th record, re-insert every 7th with a
        // flipped measure — cached entries must be patched, not stale.
        for (i, r) in data.records.iter().enumerate() {
            if i % 5 == 0 {
                assert!(mono.delete(r).unwrap());
                cached.delete_raw(&data.paths_for(r), r.measure).unwrap();
                uncached.delete_raw(&data.paths_for(r), r.measure).unwrap();
            }
            if i % 7 == 0 {
                let paths = data.paths_for(r);
                mono.insert_raw(&paths, r.measure ^ 1).unwrap();
                cached.insert_raw(&paths, r.measure ^ 1).unwrap();
                uncached.insert_raw(&paths, r.measure ^ 1).unwrap();
            }
        }
        cached.flush();
        uncached.flush();

        // Second pass: repeats served through patched cache entries (or
        // recomputed after extremum invalidation) must equal both baselines.
        for q in &qs {
            let want = mono.range_summary(q).unwrap();
            assert_eq!(
                cached.range_summary(q).unwrap(),
                want,
                "cached mismatch under {policy:?} for {q:?}"
            );
            assert_eq!(
                uncached.range_summary(q).unwrap(),
                want,
                "uncached mismatch under {policy:?} for {q:?}"
            );
            for op in AggregateOp::ALL {
                assert_eq!(
                    cached.range_query(q, op).unwrap(),
                    mono.range_query(q, op).unwrap(),
                    "cached {op} mismatch under {policy:?} for {q:?}"
                );
            }
        }
        let cm = &cached.metrics().cache;
        let hits = cm.hits.load(std::sync::atomic::Ordering::Relaxed);
        assert!(hits > 0, "repeat pass never hit the cache under {policy:?}");
        cached.shutdown();
        uncached.shutdown();
    }
}

/// Deleting the record that carries a cached range's extremum degrades the
/// entry's MIN/MAX (an invalidation), but every aggregate stays exact:
/// SUM/COUNT/AVG keep serving from the patched entry, MIN/MAX recompute.
#[test]
fn extremum_deletes_invalidate_minmax_but_stay_exact() {
    let data = tpcd();
    let mut mono = monolith(&data);
    let engine =
        ShardedDcTree::new(data.schema.clone(), engine_config(PartitionPolicy::Hash)).unwrap();
    ingest_concurrently(&engine, &data, 2);

    let all = engine.with_schema(dc_mds::Mds::all);
    engine.range_summary(&all).unwrap(); // cache the whole-cube entry

    // Delete the records holding the global max until the extremum moves.
    let max = mono.range_summary(&all).unwrap().max;
    for r in data.records.iter().filter(|r| r.measure == max) {
        assert!(mono.delete(r).unwrap());
        engine.delete_raw(&data.paths_for(r), r.measure).unwrap();
    }
    engine.flush();

    let want = mono.range_summary(&all).unwrap();
    assert!(want.max < max, "extremum did not move");
    for op in AggregateOp::ALL {
        assert_eq!(
            engine.range_query(&all, op).unwrap(),
            mono.range_query(&all, op).unwrap(),
            "{op} drifted after extremum delete"
        );
    }
    assert_eq!(engine.range_summary(&all).unwrap(), want);
    let invalidations = engine
        .metrics()
        .cache
        .invalidations
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(invalidations > 0, "extremum delete was not counted");
}

#[test]
fn queued_inserts_are_drained_on_shutdown() {
    let data = tpcd();
    let engine =
        ShardedDcTree::new(data.schema.clone(), engine_config(PartitionPolicy::Hash)).unwrap();
    for r in &data.records {
        engine.insert_raw(&data.paths_for(r), r.measure).unwrap();
    }
    // No flush: shutdown itself must drain the queues into the final
    // snapshots.
    engine.shutdown();
    assert_eq!(engine.len(), data.records.len() as u64);
    // Ingest after shutdown fails instead of silently dropping.
    assert!(engine
        .insert_raw(&data.paths_for(&data.records[0]), 1)
        .is_err());
}
