//! Property tests for the `DCB1` binary codec: every opcode round-trips,
//! arbitrary truncation is `Incomplete` (never a panic), corrupt length
//! fields are fatal, and corrupt payload bytes never desync the stream —
//! the following frame still decodes.

use dc_serve::codec::{
    decode_request, decode_response, encode_request, encode_response, DecodeStep, FrameError,
    ResponseStep, MAX_FRAME,
};
use dc_serve::protocol::Request;
use proptest::prelude::*;

fn component() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "EUROPE", "ASIA", "GERMANY", "JAPAN", "1996", "Jan", "a/b|c;d", "x y", "ü", "-",
    ])
    .prop_map(str::to_string)
}

fn paths() -> impl Strategy<Value = Vec<Vec<String>>> {
    prop::collection::vec(prop::collection::vec(component(), 1..4), 1..4)
}

fn tenant() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["default", "analytics-7", "t.x:y@z", "A_1"]).prop_map(str::to_string)
}

fn query_text() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "SUM",
        "COUNT WHERE Time.Year = '1999'",
        "SELECT SUM, MAX GROUP BY Customer.Region TOP 3",
        "EXPLAIN SUM GROUP BY Customer.Region",
        "",
    ])
    .prop_map(str::to_string)
}

fn request() -> impl Strategy<Value = Request> {
    prop_oneof![
        tenant().prop_map(|tenant| Request::Hello { tenant }),
        Just(Request::Ping),
        Just(Request::Stats),
        Just(Request::Flush),
        Just(Request::Checkpoint),
        Just(Request::Shutdown),
        (any::<i64>(), paths()).prop_map(|(measure, paths)| Request::Insert { measure, paths }),
        (any::<i64>(), paths()).prop_map(|(measure, paths)| Request::Delete { measure, paths }),
        prop::collection::vec((paths(), any::<i64>()), 1..5)
            .prop_map(|records| Request::InsertBatch { records }),
        query_text().prop_map(|text| Request::Query { text }),
        Just(Request::ReplStatus),
        (
            any::<u64>(),
            prop_oneof![Just(None), (0u64..100_000).prop_map(Some)]
        )
            .prop_map(|(lsn, timeout_ms)| Request::WaitLsn { lsn, timeout_ms }),
        (any::<u64>(), query_text()).prop_map(|(lsn, text)| Request::MinLsn {
            lsn,
            inner: Box::new(Request::Query { text }),
        }),
        any::<u64>().prop_map(|from_lsn| Request::FetchSegments { from_lsn }),
        Just(Request::FetchCheckpoint),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode is the identity for every opcode, and consumes
    /// exactly the encoded bytes.
    #[test]
    fn any_request_round_trips(req in request()) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        match decode_request(&buf) {
            DecodeStep::Frame { consumed, request } => {
                prop_assert_eq!(consumed, buf.len());
                prop_assert_eq!(request, Ok(req));
            }
            other => prop_assert!(false, "decoded to {:?}", other),
        }
    }

    /// A pipelined burst of frames decodes back to the same sequence.
    #[test]
    fn pipelined_frames_decode_in_order(reqs in prop::collection::vec(request(), 1..8)) {
        let mut buf = Vec::new();
        for req in &reqs {
            encode_request(req, &mut buf);
        }
        let mut off = 0;
        for req in &reqs {
            match decode_request(&buf[off..]) {
                DecodeStep::Frame { consumed, request } => {
                    off += consumed;
                    prop_assert_eq!(request.as_ref(), Ok(req));
                }
                other => prop_assert!(false, "decoded to {:?}", other),
            }
        }
        prop_assert_eq!(off, buf.len());
    }

    /// Every proper prefix of a frame is `Incomplete` — truncation never
    /// panics and never yields a bogus frame.
    #[test]
    fn any_truncation_is_incomplete(req in request(), frac in 0.0f64..1.0) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let cut = ((buf.len() as f64) * frac) as usize; // < len since frac < 1
        prop_assert_eq!(decode_request(&buf[..cut]), DecodeStep::Incomplete);
    }

    /// Corrupting one payload byte (length field intact) never panics and
    /// never desyncs: whatever the first frame decodes to, the next frame
    /// still comes out whole.
    #[test]
    fn corrupt_payload_byte_keeps_stream_in_sync(
        req in request(),
        victim in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let frame_len = buf.len();
        // Corrupt one byte past the 4-byte length field.
        let at = 4 + (victim as usize) % (frame_len - 4);
        buf[at] ^= flip;
        let follower = Request::Ping;
        encode_request(&follower, &mut buf);
        match decode_request(&buf) {
            DecodeStep::Frame { consumed, .. } => {
                prop_assert_eq!(consumed, frame_len, "length field was not corrupted");
                match decode_request(&buf[consumed..]) {
                    DecodeStep::Frame { request, .. } =>
                        prop_assert_eq!(request, Ok(follower)),
                    other => prop_assert!(false, "follower frame lost: {:?}", other),
                }
            }
            other => prop_assert!(false, "intact length must consume the frame: {:?}", other),
        }
    }

    /// A length field outside `1..=MAX_FRAME` is fatal, whatever follows.
    #[test]
    fn oversized_length_is_fatal(extra in 1u32..1_000_000, junk in 0u8..=255) {
        let len = (MAX_FRAME as u32).saturating_add(extra);
        let mut buf = len.to_le_bytes().to_vec();
        buf.extend_from_slice(&[junk; 8]);
        prop_assert!(matches!(
            decode_request(&buf),
            DecodeStep::Fatal(FrameError::BadLength(_))
        ));
    }

    /// Response frames round-trip with their status byte intact.
    #[test]
    fn responses_round_trip(line in prop::sample::select(vec![
        "OK PONG", "OK 1234.00", "OK INSERTED 17", "ERR no such dimension",
        "BUSY tenant over rate", "BUSY engine overloaded", "OK BYE",
    ])) {
        let mut buf = Vec::new();
        encode_response(line, &mut buf);
        match decode_response(&buf) {
            ResponseStep::Frame { consumed, response, .. } => {
                prop_assert_eq!(consumed, buf.len());
                prop_assert_eq!(response, line);
            }
            other => prop_assert!(false, "decoded to {:?}", other),
        }
    }
}
