//! End-to-end test of the TCP front-end: a real client over a real socket,
//! speaking the newline protocol against a TPC-D-loaded engine.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use dc_serve::{serve, EngineConfig, PartitionPolicy, ServerConfig, ShardedDcTree};
use dc_tpcd::{generate, TpcdConfig};

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn request(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        let mut response = String::new();
        self.reader.read_line(&mut response).unwrap();
        response.trim_end().to_string()
    }
}

fn start_server() -> (Arc<ShardedDcTree>, dc_serve::ServerHandle) {
    let data = generate(&TpcdConfig::scaled(1_000, 77));
    let engine = Arc::new(
        ShardedDcTree::new(
            data.schema.clone(),
            EngineConfig {
                num_shards: 2,
                policy: PartitionPolicy::Hash,
                ..Default::default()
            },
        )
        .unwrap(),
    );
    for r in &data.records {
        engine.insert_raw(&data.paths_for(r), r.measure).unwrap();
    }
    engine.flush();
    let config = ServerConfig {
        poll_interval: Duration::from_millis(5),
        ..Default::default()
    };
    let handle = serve(Arc::clone(&engine), "127.0.0.1:0", config).unwrap();
    (engine, handle)
}

#[test]
fn full_protocol_round_trip() {
    let (engine, handle) = start_server();
    let mut client = Client::connect(handle.local_addr());

    assert_eq!(client.request("PING"), "OK PONG");

    // A dc-ql scalar query must match the engine's direct answer exactly.
    let query = "SUM WHERE Customer.Region = 'EUROPE'";
    let parsed = engine
        .with_schema(|s| dc_ql::parse_query(s, query))
        .unwrap();
    let expected = engine
        .range_query(&parsed.filter, parsed.op)
        .unwrap()
        .unwrap();
    assert_eq!(client.request(query), format!("OK {expected:.2}"));

    let count_all = client.request("COUNT");
    assert_eq!(count_all, "OK 1000.00");

    // Mutations flow through: INSERT + FLUSH becomes visible to COUNT.
    let insert = "INSERT 500 EUROPE/GERMANY/BUILDING/Customer#000000001\
                  |ASIA/JAPAN/Supplier#000000002\
                  |Brand#11/ECONOMY ANODIZED/Part#000000003\
                  |1999/1999-01/1999-01-15";
    assert_eq!(client.request(insert), "OK INSERTED");
    assert_eq!(client.request("FLUSH"), "OK FLUSHED");
    assert_eq!(client.request("COUNT"), "OK 1001.00");
    assert_eq!(client.request("COUNT WHERE Time.Year = '1999'"), "OK 1.00");

    let delete = insert.replacen("INSERT", "DELETE", 1);
    assert_eq!(client.request(&delete), "OK DELETED");
    assert_eq!(client.request("FLUSH"), "OK FLUSHED");
    assert_eq!(client.request("COUNT"), "OK 1000.00");

    // GROUP BY renders name=value rows.
    let grouped = client.request("SUM GROUP BY Customer.Region TOP 3");
    assert!(grouped.starts_with("OK "), "{grouped}");
    let rows: Vec<&str> = grouped[3..].split(',').collect();
    assert_eq!(rows.len(), 3);
    assert!(rows.iter().all(|r| r.contains('=')), "{grouped}");

    // STATS is JSON with the documented keys.
    let stats = client.request("STATS");
    assert!(stats.starts_with("OK {"), "{stats}");
    for key in [
        "uptime_secs",
        "inserts_total",
        "queries_per_sec",
        "query_latency_us",
        "p99",
        "queue_depth",
        "snapshot_age_ms",
        "io_reads",
    ] {
        assert!(stats.contains(key), "STATS missing {key}: {stats}");
    }

    // Garbage comes back as ERR, and the connection keeps working.
    assert!(client.request("FROB NICATE").starts_with("ERR "));
    assert!(client
        .request("SUM WHERE Nope.Region = 'EUROPE'")
        .starts_with("ERR "));
    assert!(client.request("INSERT abc x/y").starts_with("ERR "));
    assert_eq!(client.request("PING"), "OK PONG");

    // A second concurrent client is served too.
    let mut second = Client::connect(handle.local_addr());
    assert_eq!(second.request("PING"), "OK PONG");

    // SHUTDOWN stops the whole server; join returns and further connects
    // are refused once the listener is gone.
    assert_eq!(client.request("SHUTDOWN"), "OK BYE");
    handle.join();
    engine.shutdown();
    assert_eq!(engine.len(), 1000);
}

/// SELECT / EXPLAIN flow through the planner-enabled engine over a real
/// socket, answers match the legacy direct path, and STATS grows a `plan`
/// section with the chosen-backend counters.
#[test]
fn select_and_explain_over_tcp() {
    let data = generate(&TpcdConfig::scaled(800, 41));
    let engine = Arc::new(
        ShardedDcTree::new(
            data.schema.clone(),
            EngineConfig {
                num_shards: 2,
                policy: PartitionPolicy::Hash,
                planner: Some(dc_serve::PlannerOptions::default()),
                ..Default::default()
            },
        )
        .unwrap(),
    );
    for r in &data.records {
        engine.insert_raw(&data.paths_for(r), r.measure).unwrap();
    }
    engine.flush();
    let config = ServerConfig {
        poll_interval: Duration::from_millis(5),
        ..Default::default()
    };
    let handle = serve(Arc::clone(&engine), "127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(handle.local_addr());

    // Multi-aggregate scalar: labelled values, matching the direct answers.
    let query = "SELECT SUM, COUNT WHERE Customer.Region = 'EUROPE'";
    let parsed = engine
        .with_schema(|s| dc_ql::parse_query(s, "SUM WHERE Customer.Region = 'EUROPE'"))
        .unwrap();
    let sum = engine
        .range_query(&parsed.filter, dc_common::AggregateOp::Sum)
        .unwrap()
        .unwrap();
    let count = engine
        .range_query(&parsed.filter, dc_common::AggregateOp::Count)
        .unwrap()
        .unwrap();
    assert_eq!(
        client.request(query),
        format!("OK sum={sum:.2} count={count:.2}")
    );

    // Multi-aggregate GROUP BY pipe-joins values in SELECT-list order.
    let grouped = client.request("SELECT SUM, MAX GROUP BY Time.Year TOP 2");
    assert!(grouped.starts_with("OK "), "{grouped}");
    let rows: Vec<&str> = grouped[3..].split(',').collect();
    assert_eq!(rows.len(), 2, "{grouped}");
    for row in rows {
        let (_, vals) = row.split_once('=').expect(row);
        assert_eq!(vals.split('|').count(), 2, "{grouped}");
    }

    // EXPLAIN reports the chosen backend and estimated vs. measured pages.
    let explain = client.request("EXPLAIN SUM GROUP BY Customer.Region");
    assert!(explain.starts_with("OK backend="), "{explain}");
    assert!(explain.contains("est_pages="), "{explain}");
    assert!(explain.contains("actual_pages="), "{explain}");
    assert!(explain.contains("shards=["), "{explain}");
    // The explained answer itself must agree with the plain query.
    let direct = client.request("SUM GROUP BY Customer.Region");
    assert!(direct.starts_with("OK "), "{direct}");

    // The planner section shows up in STATS with a chosen-backend split.
    let stats = client.request("STATS");
    for key in ["\"plan\":", "\"plans\":", "\"explains\":", "\"chose\":"] {
        assert!(stats.contains(key), "STATS missing {key}: {stats}");
    }

    assert_eq!(client.request("SHUTDOWN"), "OK BYE");
    handle.join();
    engine.shutdown();
}

#[test]
fn stop_joins_all_threads() {
    let (engine, handle) = start_server();
    let mut client = Client::connect(handle.local_addr());
    assert_eq!(client.request("PING"), "OK PONG");
    let addr = handle.local_addr();
    handle.stop();
    // The listener is closed: a fresh connect must fail or be unusable.
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(s) => {
            // Some platforms accept briefly from the backlog; the server
            // must not answer on it.
            s.set_read_timeout(Some(Duration::from_millis(200)))
                .unwrap();
            let mut r = BufReader::new(s.try_clone().unwrap());
            let mut s2 = s;
            let _ = s2.write_all(b"PING\n");
            let mut buf = String::new();
            assert!(
                matches!(r.read_line(&mut buf), Ok(0) | Err(_)),
                "server still answering"
            );
        }
    }
    engine.shutdown();
}
