//! End-to-end tests of the event-loop front-end: real sockets against a
//! TPC-D-loaded engine, covering both codecs on one server, request
//! pipelining with in-order responses, protocol autodetection (including
//! a magic split across writes), admission shedding, `net` STATS, and
//! shutdown semantics.
#![cfg(target_os = "linux")]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use dc_serve::codec::{self, ResponseStep};
use dc_serve::protocol::Request;
use dc_serve::{
    serve_reactor, AdmissionConfig, EngineConfig, PartitionPolicy, ReactorConfig, ShardedDcTree,
};
use dc_tpcd::{generate, TpcdConfig};

struct TextClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl TextClient {
    fn connect(addr: std::net::SocketAddr) -> TextClient {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        TextClient {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn request(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        self.read_response()
    }

    fn read_response(&mut self) -> String {
        let mut response = String::new();
        self.reader.read_line(&mut response).unwrap();
        response.trim_end().to_string()
    }
}

/// A binary-protocol client; `roundtrip` pipelines all requests in one
/// write and returns the responses in order.
struct BinClient {
    stream: TcpStream,
    inbox: Vec<u8>,
}

impl BinClient {
    fn connect(addr: std::net::SocketAddr) -> BinClient {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut c = BinClient {
            stream,
            inbox: Vec::new(),
        };
        c.stream.write_all(&codec::MAGIC).unwrap();
        c
    }

    fn roundtrip(&mut self, reqs: &[Request]) -> Vec<(u8, String)> {
        let mut out = Vec::new();
        for r in reqs {
            codec::encode_request(r, &mut out);
        }
        self.stream.write_all(&out).unwrap();
        self.read_responses(reqs.len())
    }

    fn read_responses(&mut self, n: usize) -> Vec<(u8, String)> {
        let mut responses = Vec::new();
        let mut chunk = [0u8; 16 * 1024];
        while responses.len() < n {
            loop {
                match codec::decode_response(&self.inbox) {
                    ResponseStep::Incomplete => break,
                    ResponseStep::Frame {
                        consumed,
                        status,
                        response,
                    } => {
                        self.inbox.drain(..consumed);
                        responses.push((status, response));
                        if responses.len() == n {
                            return responses;
                        }
                    }
                    other => panic!("{other:?}"),
                }
            }
            let got = self.stream.read(&mut chunk).unwrap();
            assert!(got > 0, "server closed with {} responses", responses.len());
            self.inbox.extend_from_slice(&chunk[..got]);
        }
        responses
    }
}

fn start(
    admission: AdmissionConfig,
) -> (
    Arc<ShardedDcTree>,
    dc_serve::ServerHandle,
    dc_tpcd::TpcdData,
) {
    let data = generate(&TpcdConfig::scaled(1_000, 77));
    let engine = Arc::new(
        ShardedDcTree::new(
            data.schema.clone(),
            EngineConfig {
                num_shards: 2,
                policy: PartitionPolicy::Hash,
                ..Default::default()
            },
        )
        .unwrap(),
    );
    for r in &data.records {
        engine.insert_raw(&data.paths_for(r), r.measure).unwrap();
    }
    engine.flush();
    let config = ReactorConfig {
        admission,
        ..Default::default()
    };
    let handle = serve_reactor(Arc::clone(&engine), "127.0.0.1:0", config).unwrap();
    (engine, handle, data)
}

#[test]
fn full_text_protocol_over_the_reactor() {
    let (engine, handle, _) = start(AdmissionConfig::default());
    let mut client = TextClient::connect(handle.local_addr());

    assert_eq!(client.request("PING"), "OK PONG");
    assert_eq!(client.request("HELLO analytics"), "OK HELLO analytics");
    let count = client.request("COUNT");
    assert_eq!(count, "OK 1000.00");
    let insert = "INSERT 41 EUROPE/GERMANY/BUILDING/Customer#000000001\
                  |ASIA/JAPAN/Supplier#000000002\
                  |Brand#11/ECONOMY ANODIZED/Part#000000003\
                  |1999/1999-01/1999-01-15";
    assert_eq!(client.request(insert), "OK INSERTED");
    assert_eq!(client.request("FLUSH"), "OK FLUSHED");
    assert_eq!(client.request("COUNT"), "OK 1001.00");
    assert!(client.request("FROB NICATE").starts_with("ERR "));
    assert_eq!(client.request("PING"), "OK PONG"); // errors don't kill the conn

    // The net STATS block is live on this front-end.
    let stats = client.request("STATS");
    assert!(stats.contains("\"net\":{"), "no net block in {stats}");
    assert!(stats.contains("\"active_connections\":1"));
    assert!(stats.contains("\"tenants\":{"));
    assert!(stats.contains("\"analytics\":{"));

    // A second concurrent text client works while the first is connected.
    let mut second = TextClient::connect(handle.local_addr());
    assert_eq!(second.request("PING"), "OK PONG");

    // SHUTDOWN answers before the server stops, then everything joins.
    assert_eq!(client.request("SHUTDOWN"), "OK BYE");
    handle.join();
    engine.shutdown();
}

#[test]
fn pipelined_binary_responses_come_back_in_request_order() {
    let (engine, handle, _) = start(AdmissionConfig::default());
    let mut client = BinClient::connect(handle.local_addr());

    // A burst of mixed fast (PING, inline) and slow (queries, worker pool)
    // requests: in-order delivery means every PING response sits exactly
    // where its request was, behind the slower queries that preceded it.
    let burst = vec![
        Request::Query {
            text: "COUNT".into(),
        },
        Request::Ping,
        Request::Query {
            text: "SUM WHERE Customer.Region = 'EUROPE'".into(),
        },
        Request::Ping,
        Request::Query {
            text: "SELECT SUM, COUNT GROUP BY Customer.Region TOP 2".into(),
        },
        Request::Stats,
        Request::Ping,
    ];
    let responses = client.roundtrip(&burst);
    assert_eq!(responses.len(), burst.len());
    assert_eq!(responses[0].1, "OK 1000.00");
    assert_eq!(responses[1].1, "OK PONG");
    assert!(responses[2].1.starts_with("OK "), "{}", responses[2].1);
    assert_eq!(responses[3].1, "OK PONG");
    assert!(responses[4].1.starts_with("OK "), "{}", responses[4].1);
    assert!(responses[5].1.contains("\"net\":{"));
    assert_eq!(responses[6].1, "OK PONG");
    for (status, line) in &responses {
        assert_eq!(*status, codec::status_of(line));
    }

    // The depth histogram saw the burst.
    let stats = &responses[5].1;
    assert!(
        stats.contains("\"pipeline_depth\":{"),
        "no depth histogram in {stats}"
    );

    // Binary mutations round-trip through the same engine the text side
    // sees.
    let mutate = vec![
        Request::Insert {
            measure: 17,
            paths: vec![
                vec![
                    "EUROPE".into(),
                    "GERMANY".into(),
                    "BUILDING".into(),
                    "Customer#000000009".into(),
                ],
                vec!["ASIA".into(), "JAPAN".into(), "Supplier#000000002".into()],
                vec![
                    "Brand#11".into(),
                    "ECONOMY ANODIZED".into(),
                    "Part#000000003".into(),
                ],
                vec!["1999".into(), "1999-01".into(), "1999-01-15".into()],
            ],
        },
        Request::Flush,
        Request::Query {
            text: "COUNT".into(),
        },
    ];
    let responses = client.roundtrip(&mutate);
    assert_eq!(responses[0].1, "OK INSERTED");
    assert_eq!(responses[1].1, "OK FLUSHED");
    assert_eq!(responses[2].1, "OK 1001.00");

    handle.stop();
    engine.shutdown();
}

#[test]
fn autodetect_handles_split_magic_and_mixed_transports() {
    let (engine, handle, _) = start(AdmissionConfig::default());
    let addr = handle.local_addr();

    // Binary magic dribbled in across three writes: the connection must
    // stay Undecided (not fall back to text) until the 4th byte arrives.
    let mut slow = TcpStream::connect(addr).unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    slow.write_all(b"D").unwrap();
    std::thread::sleep(Duration::from_millis(20));
    slow.write_all(b"CB").unwrap();
    std::thread::sleep(Duration::from_millis(20));
    slow.write_all(b"1").unwrap();
    let mut frame = Vec::new();
    codec::encode_request(&Request::Ping, &mut frame);
    slow.write_all(&frame).unwrap();
    let mut got = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match codec::decode_response(&got) {
            ResponseStep::Incomplete => {
                let n = slow.read(&mut chunk).unwrap();
                assert!(n > 0);
                got.extend_from_slice(&chunk[..n]);
            }
            ResponseStep::Frame { response, .. } => {
                assert_eq!(response, "OK PONG");
                break;
            }
            other => panic!("{other:?}"),
        }
    }

    // A text line starting with 'D' (shares the magic's first byte) still
    // detects as text.
    let mut text = TextClient::connect(addr);
    assert!(text.request("DELETE 1 nope").starts_with("ERR "));
    assert_eq!(text.request("PING"), "OK PONG");

    // And a pure binary client runs alongside both.
    let mut bin = BinClient::connect(addr);
    let r = bin.roundtrip(std::slice::from_ref(&Request::Ping));
    assert_eq!(r[0].1, "OK PONG");

    handle.stop();
    engine.shutdown();
}

#[test]
fn tenant_buckets_shed_with_busy_and_control_plane_survives() {
    let (engine, handle, _) = start(AdmissionConfig {
        tenant_rate: 0.000_001, // no refill within the test
        tenant_burst: 3.0,
        queue_high_water: 1_000_000,
    });
    let mut client = TextClient::connect(handle.local_addr());
    assert_eq!(client.request("HELLO greedy"), "OK HELLO greedy");
    for _ in 0..3 {
        assert_eq!(client.request("COUNT"), "OK 1000.00");
    }
    // Bucket empty: data plane sheds…
    assert_eq!(client.request("COUNT"), "BUSY tenant over rate");
    // …while the control plane keeps answering.
    assert_eq!(client.request("PING"), "OK PONG");
    let stats = client.request("STATS");
    assert!(stats.contains("\"shed_total\":1"), "{stats}");
    assert!(
        stats.contains("\"greedy\":{\"admitted\":3,\"denied\":1}"),
        "{stats}"
    );

    // A different tenant on a fresh connection is unaffected.
    let mut other = TextClient::connect(handle.local_addr());
    assert_eq!(other.request("HELLO polite"), "OK HELLO polite");
    assert_eq!(other.request("COUNT"), "OK 1000.00");

    // Same shedding over the binary codec, with the BUSY status byte.
    let mut bin = BinClient::connect(handle.local_addr());
    let responses = bin.roundtrip(&[
        Request::Hello {
            tenant: "greedy".into(),
        },
        Request::Query {
            text: "COUNT".into(),
        },
    ]);
    assert_eq!(responses[0].1, "OK HELLO greedy");
    assert_eq!(
        responses[1],
        (codec::STATUS_BUSY, "BUSY tenant over rate".to_string())
    );

    handle.stop();
    engine.shutdown();
}

#[test]
fn stop_joins_every_thread() {
    let (engine, handle, _) = start(AdmissionConfig::default());
    let mut client = TextClient::connect(handle.local_addr());
    assert_eq!(client.request("PING"), "OK PONG");
    handle.stop(); // must not hang with a connection open
    engine.shutdown();
}
