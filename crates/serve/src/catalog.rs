//! The shared schema catalog: one globally ordered intern log that keeps
//! every shard's `ValueId` space identical to the engine's.
//!
//! Concept-hierarchy IDs are assigned sequentially per level, in insertion
//! order (`dc-hierarchy`), so any two schemas that intern the same sequence
//! of attribute paths assign the same IDs. The catalog exploits this: it
//! interns every incoming record's paths into a master schema and appends
//! the paths of *state-changing* interns (those that created at least one
//! new value) to a log. Shard writer threads replay the log — in order,
//! through [`dc_tree::DcTree::intern_paths`] — before applying records, so
//! a `ValueId` means the same value in the catalog and in every shard.

use std::sync::Arc;

use dc_common::{DcResult, Measure};
use dc_hierarchy::{CubeSchema, Record};
use parking_lot::Mutex;

/// One logged intern: the attribute paths (top → leaf, one per dimension)
/// that introduced at least one new hierarchy value.
pub type InternEntry = Arc<Vec<Vec<String>>>;

/// The master schema plus the ordered intern log.
pub struct SchemaCatalog {
    inner: Mutex<Inner>,
}

struct Inner {
    schema: CubeSchema,
    log: Vec<InternEntry>,
}

impl SchemaCatalog {
    /// Wraps an initial schema. Values already present in `schema` are the
    /// shared baseline: shard trees must be constructed from a clone of the
    /// same schema (see [`ShardedDcTree`](crate::ShardedDcTree)), so the
    /// log only needs to carry values interned after this point.
    pub fn new(schema: CubeSchema) -> Self {
        SchemaCatalog {
            inner: Mutex::new(Inner {
                schema,
                log: Vec::new(),
            }),
        }
    }

    /// Interns a record's paths into the master schema. Returns the
    /// pre-interned record and the log epoch a shard must have replayed
    /// before it may apply this record.
    pub fn intern<S: AsRef<str>>(
        &self,
        paths: &[Vec<S>],
        measure: Measure,
    ) -> DcResult<(Record, u64)> {
        let mut inner = self.inner.lock();
        let before: usize = inner.schema.dims().map(|h| h.num_values()).sum();
        let record = inner.schema.intern_record(paths, measure)?;
        let after: usize = inner.schema.dims().map(|h| h.num_values()).sum();
        if after != before {
            let owned: Vec<Vec<String>> = paths
                .iter()
                .map(|dim| dim.iter().map(|s| s.as_ref().to_string()).collect())
                .collect();
            inner.log.push(Arc::new(owned));
        }
        Ok((record, inner.log.len() as u64))
    }

    /// The current log length — the epoch a fully caught-up shard has
    /// replayed.
    pub fn epoch(&self) -> u64 {
        self.inner.lock().log.len() as u64
    }

    /// Clones the log entries in `[from, to)` for shard replay. Entries are
    /// `Arc`s, so this copies pointers, not paths.
    pub fn entries(&self, from: u64, to: u64) -> Vec<InternEntry> {
        let inner = self.inner.lock();
        inner.log[from as usize..to as usize].to_vec()
    }

    /// Runs `f` against the master schema (parsing queries, resolving
    /// routing ancestors). Keep `f` short: the catalog lock is shared with
    /// the ingest path.
    pub fn with_schema<R>(&self, f: impl FnOnce(&CubeSchema) -> R) -> R {
        f(&self.inner.lock().schema)
    }

    /// A clone of the current master schema.
    pub fn schema(&self) -> CubeSchema {
        self.inner.lock().schema.clone()
    }
}

impl std::fmt::Debug for SchemaCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("SchemaCatalog")
            .field("log_len", &inner.log.len())
            .field("dims", &inner.schema.num_dims())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_hierarchy::HierarchySchema;

    fn schema() -> CubeSchema {
        CubeSchema::new(
            vec![HierarchySchema::new("D", vec!["Top".into(), "Leaf".into()])],
            "m",
        )
    }

    #[test]
    fn only_state_changing_interns_are_logged() {
        let cat = SchemaCatalog::new(schema());
        let (_, e1) = cat.intern(&[vec!["a", "a1"]], 1).unwrap();
        assert_eq!(e1, 1);
        // Same paths again: no new values, no new log entry.
        let (_, e2) = cat.intern(&[vec!["a", "a1"]], 2).unwrap();
        assert_eq!(e2, 1);
        let (_, e3) = cat.intern(&[vec!["a", "a2"]], 3).unwrap();
        assert_eq!(e3, 2);
        assert_eq!(cat.entries(0, 2).len(), 2);
    }

    #[test]
    fn replaying_log_reproduces_ids() {
        let cat = SchemaCatalog::new(schema());
        let inputs = [
            vec!["a", "a1"],
            vec!["b", "b1"],
            vec!["a", "a2"],
            vec!["b", "b1"],
        ];
        let mut records = Vec::new();
        for p in &inputs {
            records.push(cat.intern(std::slice::from_ref(p), 0).unwrap());
        }
        // An independent schema replaying the log assigns identical IDs.
        let mut replica = schema();
        for entry in cat.entries(0, cat.epoch()) {
            replica.intern_record(&entry, 0).unwrap();
        }
        for (p, (rec, _)) in inputs.iter().zip(&records) {
            let via_replica = replica.intern_record(std::slice::from_ref(p), 0).unwrap();
            assert_eq!(via_replica.dims, rec.dims);
        }
    }
}
