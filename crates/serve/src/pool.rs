//! The persistent work-stealing query pool behind scatter-gather queries.
//!
//! The first engine iteration spawned one scoped thread per visited shard
//! *per query* — a 1ms query paid thread spawn/join for every shard, and
//! concurrent dc-ql connections serialized on their own scatter. This pool
//! replaces that with long-lived workers (sized by
//! `available_parallelism`) fed from one injector queue:
//!
//! * a query is submitted as a [`Job`] of per-shard **units**; every unit
//!   carries a shard-affinity hint (`shard_id % workers`), so repeated
//!   queries keep a shard's tree hot in the same worker's cache;
//! * an idle worker prefers units with its own affinity and otherwise
//!   **steals** the oldest queued unit, so no worker idles while work
//!   exists — the crossbeam-deque discipline, built on the std primitives
//!   this workspace ships;
//! * the submitting thread does not idle either: after enqueueing it pulls
//!   its own job's units back off the queue and executes them inline,
//!   then sleeps only for units another thread already claimed;
//! * multiple in-flight jobs interleave in the queue, so independent
//!   connections pipeline instead of serializing on one scatter-gather.
//!
//! The pool outlives individual queries but not the engine: dropping the
//! pool wakes the workers, which drain the queue and exit, and join-s them.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::Relaxed};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use dc_common::DcResult;
use dc_tree::{DcTree, PreparedRange};
use parking_lot::{Condvar, Mutex};

use crate::metrics::EngineMetrics;

/// One scatter-gather query: `remaining` per-shard units, each executed
/// exactly once by whichever thread claims it. Results are recorded inside
/// the `run` closure's captured state; the pool only tracks completion.
struct Job {
    /// Executes unit `i`.
    run: Box<dyn Fn(usize) + Send + Sync>,
    /// Preferred worker per unit (shard affinity).
    affinity: Vec<usize>,
    /// Units not yet finished.
    remaining: AtomicUsize,
    /// Completion latch the submitter waits on.
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl Job {
    /// Runs unit `idx` and releases the completion latch on the last one.
    fn run_unit(&self, idx: usize) {
        (self.run)(idx);
        if self.remaining.fetch_sub(1, Relaxed) == 1 {
            *self.done.lock() = true;
            self.done_cv.notify_all();
        }
    }
}

/// A claimable unit in the injector queue.
struct QueuedUnit {
    job: Arc<Job>,
    idx: usize,
}

struct Shared {
    queue: Mutex<VecDeque<QueuedUnit>>,
    cv: Condvar,
    shutdown: AtomicBool,
    metrics: Arc<EngineMetrics>,
}

/// The persistent executor. See the [module docs](self).
pub(crate) struct QueryPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryPool {
    /// Starts `workers` ≥ 1 worker threads.
    pub(crate) fn new(workers: usize, metrics: Arc<EngineMetrics>) -> Self {
        assert!(workers >= 1, "pool needs at least one worker");
        metrics.pool.workers.store(workers as u64, Relaxed);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            metrics,
        });
        let handles = (0..workers)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dc-query-{id}"))
                    .spawn(move || worker_loop(id, &shared))
                    .expect("spawn query worker")
            })
            .collect();
        QueryPool {
            shared,
            workers: handles,
        }
    }

    /// Evaluates `eval` on every snapshot against the shared prepared
    /// range, distributing per-shard units over the pool (with the
    /// submitting thread participating) and gathering the results in shard
    /// order. The first unit error wins, matching sequential evaluation.
    pub(crate) fn scatter_eval<R: Send + 'static>(
        &self,
        snaps: Vec<(usize, Arc<DcTree>)>,
        prepared: PreparedRange,
        eval: impl Fn(&DcTree, &PreparedRange) -> DcResult<R> + Send + Sync + 'static,
    ) -> DcResult<Vec<R>> {
        let n = snaps.len();
        let affinity = snaps.iter().map(|(s, _)| s % self.workers.len()).collect();
        let results: Arc<Mutex<Vec<Option<DcResult<R>>>>> =
            Arc::new(Mutex::new((0..n).map(|_| None).collect()));
        let job = Arc::new(Job {
            run: {
                let results = Arc::clone(&results);
                Box::new(move |i| {
                    let r = eval(&snaps[i].1, &prepared);
                    results.lock()[i] = Some(r);
                })
            },
            affinity,
            remaining: AtomicUsize::new(n),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        self.submit_and_help(&job, n);
        let mut out = Vec::with_capacity(n);
        for slot in results.lock().drain(..) {
            out.push(slot.expect("pool unit not executed")?);
        }
        Ok(out)
    }

    /// Enqueues the job's units, executes whatever the workers have not
    /// claimed yet inline, then sleeps until the claimed stragglers finish.
    fn submit_and_help(&self, job: &Arc<Job>, units: usize) {
        let pm = &self.shared.metrics.pool;
        {
            let mut q = self.shared.queue.lock();
            for idx in 0..units {
                q.push_back(QueuedUnit {
                    job: Arc::clone(job),
                    idx,
                });
            }
            pm.queued_tasks.store(q.len() as u64, Relaxed);
        }
        self.shared.cv.notify_all();
        // Help: pull back our own units; a stolen unit is a worker's win.
        loop {
            let mine = {
                let mut q = self.shared.queue.lock();
                let pos = q.iter().position(|u| Arc::ptr_eq(&u.job, job));
                let unit = pos.and_then(|p| q.remove(p));
                pm.queued_tasks.store(q.len() as u64, Relaxed);
                unit
            };
            let Some(unit) = mine else { break };
            let t0 = Instant::now();
            unit.job.run_unit(unit.idx);
            pm.inline_tasks.fetch_add(1, Relaxed);
            pm.task_latency.record(t0.elapsed());
        }
        let mut done = job.done.lock();
        while !*done {
            job.done_cv.wait(&mut done);
        }
    }
}

impl Drop for QueryPool {
    fn drop(&mut self) {
        {
            // Set the flag under the queue lock: a worker that checked it
            // just before this point is either still holding the lock (the
            // store waits for it, then its wait() sees the notify) or about
            // to re-check under the lock — no lost wakeup either way.
            let _q = self.shared.queue.lock();
            self.shared.shutdown.store(true, Relaxed);
        }
        self.shared.cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// A worker: claim affine units first, steal the oldest otherwise, exit on
/// shutdown once the queue is drained.
fn worker_loop(worker_id: usize, shared: &Shared) {
    let pm = &shared.metrics.pool;
    loop {
        let (unit, stolen) = {
            let mut q = shared.queue.lock();
            loop {
                if let Some(pos) = q.iter().position(|u| u.job.affinity[u.idx] == worker_id) {
                    break (q.remove(pos).expect("position in bounds"), false);
                }
                if let Some(unit) = q.pop_front() {
                    break (unit, true);
                }
                if shared.shutdown.load(Relaxed) {
                    return;
                }
                shared.cv.wait(&mut q);
            }
        };
        {
            let q = shared.queue.lock();
            pm.queued_tasks.store(q.len() as u64, Relaxed);
        }
        pm.busy_workers.fetch_add(1, Relaxed);
        let t0 = Instant::now();
        unit.job.run_unit(unit.idx);
        pm.task_latency.record(t0.elapsed());
        pm.tasks.fetch_add(1, Relaxed);
        if stolen {
            pm.steals.fetch_add(1, Relaxed);
        }
        pm.busy_workers.fetch_sub(1, Relaxed);
    }
}
