//! # dc-serve
//!
//! A sharded, concurrent OLAP serving engine over the DC-tree, with a
//! newline-delimited dc-ql network front-end.
//!
//! The paper's DC-tree removes the warehouse's nightly batch window: one
//! index that absorbs updates while answering aggregate queries. This
//! crate takes the next systems step and turns that single-writer index
//! into a serving engine:
//!
//! * [`ShardedDcTree`] partitions records across `N` shards (each an owned
//!   [`dc_tree::DcTree`]), one MPSC ingest queue + writer thread per shard,
//!   with `Arc`-published snapshots so queries never block on writers;
//! * [`serve`](server::serve) exposes the engine over TCP, speaking dc-ql
//!   (`SUM WHERE … GROUP BY …`) plus `INSERT`/`DELETE`/`STATS`/`FLUSH`
//!   verbs — see [`protocol`] for the wire format;
//! * [`EngineMetrics`] tracks throughput, queue depths, snapshot ages,
//!   per-shard page I/O and latency percentiles, served via `STATS`.
//!
//! ## Why the shard merge is exact
//!
//! Every query is answered per shard and merged. This is *exact*, not
//! approximate, because everything the engine serves is derived from
//! [`dc_common::MeasureSummary`] `{sum, count, min, max}`, and summaries
//! form a commutative monoid under [`dc_common::MeasureSummary::merge`]:
//! the summary of a disjoint union of record sets equals the merge of the
//! per-set summaries, in any order. Shards partition the records (each
//! record lives on exactly one shard), so for any range MDS `Q`
//!
//! ```text
//! summary(Q, all records) = merge over shards s of summary(Q, records(s))
//! ```
//!
//! and every aggregate the engine exposes — `SUM`, `COUNT`, `AVG` =
//! sum/count, `MIN`, `MAX` — is a function *of the merged summary*, so the
//! scatter-gather answer is bit-identical to a monolithic DC-tree over the
//! same records (asserted by `tests/differential.rs`). Two details make
//! the per-shard evaluation well-defined:
//!
//! * **One ID space.** Hierarchy `ValueId`s are assigned in intern order,
//!   so the [`SchemaCatalog`] keeps a globally ordered intern log that
//!   every shard replays (through [`dc_tree::DcTree::intern_paths`])
//!   before applying a record routed to it. A `ValueId` therefore denotes
//!   the same attribute value in every shard — which is what makes merging
//!   `GROUP BY` rows by key sound.
//! * **Shared range preparation.** The query's level-bitsets are adapted
//!   **once** against the catalog schema ([`dc_tree::PreparedRange`]) and
//!   shared by every shard evaluation: a shard schema is a prefix of the
//!   catalog's (same `ValueId`s, same parents), and the traversal only
//!   probes shard-known values against the prepared bitsets, so the shared
//!   preparation answers exactly like a per-shard one. A shard that lags
//!   the catalog and knows *none* of a dimension's query values cannot
//!   hold a matching record, so it is skipped outright ([`engine`]'s
//!   `shard_covers`) — before it costs a descent or a `shard_visits` tick.
//!
//! ## The query executor
//!
//! Multi-shard queries run on a persistent work-stealing pool (sized by
//! `available_parallelism`, see [`EngineConfig::pool_workers`]): per-shard
//! tasks carry a shard-affinity hint, idle workers steal the oldest queued
//! task, the submitting thread executes unclaimed tasks of its own query
//! inline, and independent connections pipeline their scatters through the
//! same workers instead of spawning threads per query. Pool gauges (queue
//! depth, busy workers, steals, task latency) are served under `"pool"` in
//! `STATS`.
//!
//! ## Where the speedup comes from
//!
//! With [`PartitionPolicy::ByDimension`], records are routed by their
//! ancestor at a chosen hierarchy level (say `Customer.Region`), and a
//! query constraining that dimension is only sent to the shards owning the
//! matching ancestors — the rest are pruned. Each visited shard also
//! descends a tree ~`1/N` the size. This prunes *logical work*, so it
//! speeds up aggregate throughput even on a single core, and it composes
//! with real parallelism on multi-core hosts.

pub mod admission;
pub mod catalog;
pub mod codec;
pub mod engine;
pub mod metrics;
mod pool;
pub mod protocol;
pub mod reactor;
pub mod server;

pub use admission::{AdmissionConfig, AdmissionController, Verdict};
pub use catalog::SchemaCatalog;
pub use dc_cache::CacheConfig;
pub use dc_durable::{CheckpointBundle, FetchOutcome, SegmentShipment, StdFs, SyncPolicy, WalFs};
pub use dc_oocore::OocOptions;
pub use dc_plan::{Backend, Explain, QueryOutput};
pub use engine::{
    BackendComparison, DiskOptions, EngineConfig, EngineRole, PartitionPolicy, PlannerOptions,
    ShardedDcTree, StorageMode, WalOptions,
};
pub use metrics::{
    BufferPoolMetrics, CacheMetrics, DurabilityMetrics, EngineMetrics, LatencyHistogram,
    PlanMetrics, PoolMetrics, ReplicationMetrics,
};
pub use reactor::{serve_reactor, ReactorConfig};
pub use server::{serve, ServerConfig, ServerHandle};
