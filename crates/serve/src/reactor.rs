//! The sharded event-loop front-end: a fixed set of reactor threads
//! driving non-blocking sockets off raw `epoll`, per-connection state
//! machines with reusable buffers, both wire codecs (auto-detected text
//! and pipelined `DCB1` binary — see [`crate::codec`]), per-tenant
//! admission control and load-shedding backpressure
//! ([`crate::admission`]).
//!
//! ## Thread layout
//!
//! ```text
//! reactor 0 ──► owns the listener; accepted sockets are dealt
//! reactor 1..R     round-robin across all reactors (handoff via an
//!                  injection queue + eventfd wake)
//! worker 0..W ──► execute decoded requests through protocol::execute;
//!                  completions return to the owning reactor's queue
//! supervisor  ──► joins everything; ServerHandle joins the supervisor
//! ```
//!
//! Reactors never execute engine verbs themselves (a `WAIT_LSN` may
//! legally block for ten seconds; a reactor must not): every
//! admission-approved data-plane request becomes a job for the worker
//! pool. Only `PING` and `HELLO` — pure connection-state operations — run
//! inline. Responses are delivered **in request order per connection**
//! regardless of worker completion order: each connection keeps a deque of
//! response slots, workers fill slots by sequence number, and the reactor
//! writes out the completed prefix.
//!
//! ## Why responses stay ordered under pipelining
//!
//! Request *k* on a connection is assigned slot `base_seq + len(slots)` at
//! decode time; inline responses fill their slot immediately, worker
//! responses arrive tagged `(slot, generation, seq)`. The reactor only
//! pops the front of the deque while it is `Some`, so a slow request
//! parks every response behind it — exactly the in-order contract — while
//! later requests still *execute* concurrently on the workers. The
//! `generation` tag makes a late completion for a closed connection a
//! no-op instead of a write into whatever connection reused the slot.
//!
//! Linux-only (raw `epoll`/`eventfd` via `extern "C"` declarations — the
//! container has no `mio`/`libc` crates); on other platforms
//! [`serve_reactor`] returns [`std::io::ErrorKind::Unsupported`] and the
//! threaded [`crate::server`] remains available.

use std::io;
use std::sync::Arc;

use crate::engine::ShardedDcTree;

/// Reactor front-end knobs.
#[derive(Clone, Debug)]
pub struct ReactorConfig {
    /// Event-loop threads. Each owns an epoll instance and a share of the
    /// connections; reactor 0 also owns the listener.
    pub reactors: usize,
    /// Worker threads executing engine verbs (must cover the worst-case
    /// number of concurrently *blocking* requests, e.g. `WAIT_LSN`).
    pub workers: usize,
    /// A connection idle longer than this (nothing read, nothing pending)
    /// is closed.
    pub read_timeout: std::time::Duration,
    /// Granularity of stop-flag checks and idle scans when no I/O is
    /// happening. Unlike the legacy server's 25 ms socket-timeout spin,
    /// this is the *only* timed wakeup — readiness and completions wake
    /// the loop directly.
    pub tick: std::time::Duration,
    /// Admission control (token buckets + overload shedding).
    pub admission: crate::admission::AdmissionConfig,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            reactors: 2,
            workers: 4,
            read_timeout: std::time::Duration::from_secs(30),
            tick: std::time::Duration::from_millis(100),
            admission: crate::admission::AdmissionConfig::default(),
        }
    }
}

/// Binds `addr` and serves the engine on the event-loop front-end until
/// stopped. The returned [`crate::ServerHandle`] behaves exactly like the
/// threaded server's.
#[cfg(target_os = "linux")]
pub fn serve_reactor(
    engine: Arc<ShardedDcTree>,
    addr: &str,
    config: ReactorConfig,
) -> io::Result<crate::server::ServerHandle> {
    imp::serve_reactor(engine, addr, config)
}

/// Stub for platforms without epoll.
#[cfg(not(target_os = "linux"))]
pub fn serve_reactor(
    _engine: Arc<ShardedDcTree>,
    _addr: &str,
    _config: ReactorConfig,
) -> io::Result<crate::server::ServerHandle> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "the reactor front-end requires epoll (linux); use dc_serve::serve",
    ))
}

/// Thin safe wrappers over the three kernel facilities the reactor needs:
/// `epoll`, `eventfd`, and `fcntl`-free non-blocking I/O (sockets come
/// from std, already switchable; the eventfd is created non-blocking).
/// Declared directly against glibc symbols — std already links libc, so
/// no external crate is required.
#[cfg(target_os = "linux")]
mod sys {
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_uint, c_void};

    // glibc packs epoll_event on x86-64 only.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EFD_NONBLOCK: c_int = 0o4000;
    const EFD_CLOEXEC: c_int = 0o2000000;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// An epoll instance. Token = the u64 stashed in `epoll_event.data`.
    pub struct Epoll {
        fd: RawFd,
    }

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            let fd = unsafe { cvt(epoll_create1(EPOLL_CLOEXEC))? };
            Ok(Epoll { fd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            unsafe { cvt(epoll_ctl(self.fd, op, fd, &mut ev))? };
            Ok(())
        }

        pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, events, token)
        }

        pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, events, token)
        }

        pub fn del(&self, fd: RawFd) {
            let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
        }

        /// Waits up to `timeout_ms` (-1 = forever); fills `out` with up to
        /// its capacity in events. EINTR retries internally.
        pub fn wait(&self, out: &mut Vec<EpollEvent>, timeout_ms: i32) -> io::Result<()> {
            out.clear();
            let cap = out.capacity().max(64);
            out.reserve(cap);
            loop {
                let n = unsafe { epoll_wait(self.fd, out.as_mut_ptr(), cap as c_int, timeout_ms) };
                if n >= 0 {
                    unsafe { out.set_len(n as usize) };
                    return Ok(());
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            unsafe { close(self.fd) };
        }
    }

    /// A non-blocking eventfd used to wake a reactor from another thread.
    /// `notify` is safe from any thread; `drain` resets the counter.
    pub struct EventFd {
        fd: RawFd,
    }

    impl EventFd {
        pub fn new() -> io::Result<EventFd> {
            let fd = unsafe { cvt(eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC))? };
            Ok(EventFd { fd })
        }

        pub fn raw_fd(&self) -> RawFd {
            self.fd
        }

        pub fn notify(&self) {
            let one: u64 = 1;
            unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
        }

        pub fn drain(&self) {
            let mut buf: u64 = 0;
            unsafe { read(self.fd, (&mut buf as *mut u64).cast(), 8) };
        }
    }

    impl Drop for EventFd {
        fn drop(&mut self) {
            unsafe { close(self.fd) };
        }
    }

    // eventfd reads/writes are thread-safe syscalls on an owned fd.
    unsafe impl Send for EventFd {}
    unsafe impl Sync for EventFd {}
}

#[cfg(target_os = "linux")]
mod imp {
    use std::collections::VecDeque;
    use std::io::{self, Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed, Ordering::SeqCst};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use parking_lot::{Condvar, Mutex};

    use super::sys::{self, Epoll, EpollEvent, EventFd};
    use super::ReactorConfig;
    use crate::admission::{AdmissionController, TenantBucket, Verdict, DEFAULT_TENANT};
    use crate::codec::{self, DecodeStep, Protocol};
    use crate::engine::ShardedDcTree;
    use crate::metrics::TenantNetMetrics;
    use crate::protocol::{self, Control, Request};
    use crate::server::ServerHandle;

    /// epoll token of the listener (reactor 0 only).
    const TOKEN_LISTENER: u64 = u64::MAX;
    /// epoll token of the reactor's wake eventfd.
    const TOKEN_WAKE: u64 = u64::MAX - 1;

    /// Largest batch of one connection's pipelined requests moved to a
    /// worker as a single job. Batching amortises the dispatch handshake
    /// (jobs lock + condvar + completion lock + eventfd) across the burst —
    /// per-request that handshake costs more than a cheap verb itself — and
    /// the cap keeps a deep pipeline streaming responses in chunks instead
    /// of buffering the whole window.
    const JOB_BATCH_MAX: usize = 32;

    /// One executed batch coming back from a worker.
    struct Completion {
        slot: usize,
        generation: u64,
        /// `(seq, response, control)` in execution order.
        results: Vec<(u64, String, Control)>,
    }

    /// A batch of admitted requests of ONE connection on its way to a
    /// worker, executed sequentially in order.
    struct Job {
        reactor: usize,
        slot: usize,
        generation: u64,
        reqs: Vec<(u64, Request)>,
    }

    /// Cross-thread mailbox of one reactor.
    struct ReactorShared {
        wake: EventFd,
        /// Bounds eventfd writes to one outstanding notify.
        wake_pending: AtomicBool,
        /// Sockets handed over by the accepting reactor.
        injected: Mutex<Vec<TcpStream>>,
        /// Executed requests waiting to be written out.
        completions: Mutex<Vec<Completion>>,
    }

    impl ReactorShared {
        fn notify(&self) {
            if !self.wake_pending.swap(true, SeqCst) {
                self.wake.notify();
            }
        }
    }

    /// State shared by every thread of the front-end.
    struct Shared {
        engine: Arc<ShardedDcTree>,
        stop: Arc<AtomicBool>,
        admission: AdmissionController,
        cfg: ReactorConfig,
        jobs: Mutex<VecDeque<Job>>,
        jobs_cv: Condvar,
        /// Jobs decoded and admitted but not yet finished by a worker —
        /// queued work the engine metrics can't see, counted by the
        /// overload gate.
        jobs_depth: AtomicU64,
        reactors: Vec<ReactorShared>,
    }

    impl Shared {
        /// Wakes every thread (stop, shutdown, external `ServerHandle::stop`).
        fn wake_all(&self) {
            for r in &self.reactors {
                r.notify();
            }
            self.jobs_cv.notify_all();
        }
    }

    /// Per-connection state machine.
    struct Conn {
        stream: TcpStream,
        generation: u64,
        protocol: Protocol,
        rbuf: Vec<u8>,
        wbuf: Vec<u8>,
        /// Bytes of `wbuf` already written.
        wpos: usize,
        /// Response slots in request order; `None` = still executing.
        slots: VecDeque<Option<(String, Control)>>,
        /// Sequence number of `slots[0]`.
        base_seq: u64,
        /// Admitted requests awaiting their turn on the worker pool. One
        /// connection has at most ONE job (a batch of up to
        /// [`JOB_BATCH_MAX`] requests, executed in order) in flight:
        /// pipelining overlaps transport (one syscall carries many frames)
        /// and batching amortises the worker handshake, but execution stays
        /// sequential per connection, so `INSERT, FLUSH, COUNT` pipelined
        /// behaves exactly like the same verbs sent one at a time —
        /// different connections still execute concurrently.
        queued: VecDeque<(u64, Request)>,
        /// Whether a job of this connection is at the workers.
        inflight: bool,
        tenant_name: String,
        tenant: Arc<TenantNetMetrics>,
        /// The tenant's token bucket, resolved once per `HELLO` so the
        /// per-request admission check never touches the global bucket map.
        bucket: Arc<TenantBucket>,
        last_activity: Instant,
        /// Currently registered for EPOLLOUT.
        want_write: bool,
        /// Peer closed its write side; serve out pending work then close.
        read_closed: bool,
        /// Fatal protocol error; close once `wbuf` drains.
        closing: bool,
    }

    impl Conn {
        fn push_ready(&mut self, response: String, control: Control) {
            self.slots.push_back(Some((response, control)));
        }

        fn next_seq(&self) -> u64 {
            self.base_seq + self.slots.len() as u64
        }

        fn idle_and_drained(&self) -> bool {
            self.slots.is_empty() && self.wpos >= self.wbuf.len()
        }
    }

    pub fn serve_reactor(
        engine: Arc<ShardedDcTree>,
        addr: &str,
        config: ReactorConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let num_reactors = config.reactors.max(1);
        let num_workers = config.workers.max(1);

        let mut reactors = Vec::with_capacity(num_reactors);
        for _ in 0..num_reactors {
            reactors.push(ReactorShared {
                wake: EventFd::new()?,
                wake_pending: AtomicBool::new(false),
                injected: Mutex::new(Vec::new()),
                completions: Mutex::new(Vec::new()),
            });
        }
        let shared = Arc::new(Shared {
            admission: AdmissionController::new(config.admission.clone()),
            engine: Arc::clone(&engine),
            stop: Arc::clone(&stop),
            cfg: config,
            jobs: Mutex::new(VecDeque::new()),
            jobs_cv: Condvar::new(),
            jobs_depth: AtomicU64::new(0),
            reactors,
        });
        engine.metrics().net.enabled.store(1, Relaxed);

        let mut threads = Vec::new();
        for id in 0..num_reactors {
            let shared = Arc::clone(&shared);
            let listener = if id == 0 {
                Some(listener.try_clone()?)
            } else {
                None
            };
            threads.push(
                std::thread::Builder::new()
                    .name(format!("dc-reactor-{id}"))
                    .spawn(move || {
                        if let Ok(mut r) = Reactor::new(id, shared, listener) {
                            r.run();
                        }
                    })?,
            );
        }
        for id in 0..num_workers {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("dc-net-worker-{id}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        let supervisor_shared = Arc::clone(&shared);
        let supervisor = std::thread::Builder::new()
            .name("dc-reactor-supervisor".into())
            .spawn(move || {
                for t in threads {
                    let _ = t.join();
                }
                drop(supervisor_shared);
            })?;
        Ok(ServerHandle::with_waker(
            local,
            stop,
            supervisor,
            Box::new(move || shared.wake_all()),
        ))
    }

    fn worker_loop(shared: &Shared) {
        loop {
            let job = {
                let mut jobs = shared.jobs.lock();
                loop {
                    if shared.stop.load(SeqCst) {
                        return;
                    }
                    if let Some(job) = jobs.pop_front() {
                        break job;
                    }
                    // The timeout is a safety net; stop and submission both
                    // notify the condvar.
                    shared
                        .jobs_cv
                        .wait_for(&mut jobs, Duration::from_millis(500));
                }
            };
            let mut results = Vec::with_capacity(job.reqs.len());
            let mut remaining = job.reqs.len();
            for (seq, req) in &job.reqs {
                let (response, control) = protocol::execute(&shared.engine, req);
                shared.jobs_depth.fetch_sub(1, Relaxed);
                remaining -= 1;
                let stop = control == Control::StopServer;
                results.push((*seq, response, control));
                if stop {
                    // The rest of the batch is behind a SHUTDOWN; it never
                    // executes, but the overload gauge must not leak.
                    shared.jobs_depth.fetch_sub(remaining as u64, Relaxed);
                    break;
                }
            }
            let mailbox = &shared.reactors[job.reactor];
            mailbox.completions.lock().push(Completion {
                slot: job.slot,
                generation: job.generation,
                results,
            });
            mailbox.notify();
        }
    }

    struct Reactor {
        id: usize,
        shared: Arc<Shared>,
        epoll: Epoll,
        listener: Option<TcpListener>,
        conns: Vec<Option<Conn>>,
        free: Vec<usize>,
        /// Reusable socket-read scratch shared by all connections of this
        /// reactor (data lands in the per-connection `rbuf`).
        scratch: Box<[u8]>,
        events: Vec<EpollEvent>,
        next_generation: u64,
        /// Round-robin accept target.
        next_rr: usize,
        last_idle_scan: Instant,
        jobs_out: Vec<Job>,
    }

    impl Reactor {
        fn new(
            id: usize,
            shared: Arc<Shared>,
            listener: Option<TcpListener>,
        ) -> io::Result<Reactor> {
            let epoll = Epoll::new()?;
            if let Some(l) = &listener {
                epoll.add(l.as_raw_fd(), sys::EPOLLIN, TOKEN_LISTENER)?;
            }
            epoll.add(shared.reactors[id].wake.raw_fd(), sys::EPOLLIN, TOKEN_WAKE)?;
            Ok(Reactor {
                id,
                shared,
                epoll,
                listener,
                conns: Vec::new(),
                free: Vec::new(),
                scratch: vec![0u8; 64 * 1024].into_boxed_slice(),
                events: Vec::with_capacity(256),
                next_generation: 0,
                next_rr: 0,
                last_idle_scan: Instant::now(),
                jobs_out: Vec::new(),
            })
        }

        fn run(&mut self) {
            let tick_ms = self.shared.cfg.tick.as_millis().clamp(1, 60_000) as i32;
            while !self.shared.stop.load(SeqCst) {
                if self.epoll.wait(&mut self.events, tick_ms).is_err() {
                    break;
                }
                let events = std::mem::take(&mut self.events);
                for ev in &events {
                    let (bits, token) = (ev.events, ev.data);
                    match token {
                        TOKEN_LISTENER => self.accept_ready(),
                        TOKEN_WAKE => {
                            self.shared.reactors[self.id].wake.drain();
                            self.shared.reactors[self.id]
                                .wake_pending
                                .store(false, SeqCst);
                        }
                        slot => self.conn_ready(slot as usize, bits),
                    }
                }
                self.events = events;
                // Mailboxes are drained every iteration (not only on wake
                // events) so a coalesced eventfd tick never strands work.
                self.adopt_injected();
                self.apply_completions();
                if self.last_idle_scan.elapsed() >= self.shared.cfg.tick {
                    self.scan_idle();
                    self.last_idle_scan = Instant::now();
                }
            }
            // Unblock everyone else on the way out (idempotent).
            self.shared.wake_all();
        }

        // ---- accept path -------------------------------------------------

        fn accept_ready(&mut self) {
            loop {
                let Some(listener) = &self.listener else {
                    return;
                };
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let metrics = self.shared.engine.metrics();
                        metrics.net.accepted_total.fetch_add(1, Relaxed);
                        let target = self.next_rr % self.shared.reactors.len();
                        self.next_rr = self.next_rr.wrapping_add(1);
                        if target == self.id {
                            self.adopt(stream);
                        } else {
                            let mailbox = &self.shared.reactors[target];
                            mailbox.injected.lock().push(stream);
                            mailbox.notify();
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return,
                }
            }
        }

        fn adopt_injected(&mut self) {
            let streams = {
                let mut injected = self.shared.reactors[self.id].injected.lock();
                std::mem::take(&mut *injected)
            };
            for stream in streams {
                self.adopt(stream);
            }
        }

        fn adopt(&mut self, stream: TcpStream) {
            if stream.set_nonblocking(true).is_err() {
                return;
            }
            let _ = stream.set_nodelay(true);
            let metrics = self.shared.engine.metrics();
            self.next_generation += 1;
            let conn = Conn {
                generation: self.next_generation,
                protocol: Protocol::Undecided,
                rbuf: Vec::new(),
                wbuf: Vec::new(),
                wpos: 0,
                slots: VecDeque::new(),
                base_seq: 0,
                queued: VecDeque::new(),
                inflight: false,
                tenant_name: DEFAULT_TENANT.to_string(),
                tenant: metrics.net.tenant(DEFAULT_TENANT),
                bucket: self.shared.admission.bucket(DEFAULT_TENANT),
                last_activity: Instant::now(),
                want_write: false,
                read_closed: false,
                closing: false,
                stream,
            };
            let slot = match self.free.pop() {
                Some(s) => {
                    self.conns[s] = Some(conn);
                    s
                }
                None => {
                    self.conns.push(Some(conn));
                    self.conns.len() - 1
                }
            };
            let fd = self.conns[slot].as_ref().unwrap().stream.as_raw_fd();
            if self
                .epoll
                .add(fd, sys::EPOLLIN | sys::EPOLLRDHUP, slot as u64)
                .is_err()
            {
                self.conns[slot] = None;
                self.free.push(slot);
                return;
            }
            metrics.net.active_connections.fetch_add(1, Relaxed);
        }

        fn close(&mut self, slot: usize) {
            if let Some(conn) = self.conns[slot].take() {
                self.epoll.del(conn.stream.as_raw_fd());
                self.free.push(slot);
                // Undispatched requests die with the connection; the
                // backlog gauge must not leak them (the in-flight one, if
                // any, is decremented by its worker).
                if !conn.queued.is_empty() {
                    self.shared
                        .jobs_depth
                        .fetch_sub(conn.queued.len() as u64, Relaxed);
                }
                self.shared
                    .engine
                    .metrics()
                    .net
                    .active_connections
                    .fetch_sub(1, Relaxed);
            }
        }

        // ---- event dispatch ----------------------------------------------

        fn conn_ready(&mut self, slot: usize, bits: u32) {
            if self.conns.get(slot).is_none_or(Option::is_none) {
                return; // stale event for a slot freed earlier this batch
            }
            if bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
                self.close(slot);
                return;
            }
            if bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0 {
                self.readable(slot);
            }
            if self.conns[slot].is_some() && bits & sys::EPOLLOUT != 0 {
                self.flush_conn(slot);
            }
        }

        fn readable(&mut self, slot: usize) {
            loop {
                let conn = self.conns[slot].as_mut().unwrap();
                match conn.stream.read(&mut self.scratch) {
                    Ok(0) => {
                        conn.read_closed = true;
                        break;
                    }
                    Ok(n) => {
                        conn.last_activity = Instant::now();
                        conn.rbuf.extend_from_slice(&self.scratch[..n]);
                        self.shared
                            .engine
                            .metrics()
                            .net
                            .bytes_in
                            .fetch_add(n as u64, Relaxed);
                        if n < self.scratch.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.close(slot);
                        return;
                    }
                }
            }
            self.process_rbuf(slot);
            if self.conns[slot].is_some() {
                self.dispatch_jobs();
                self.pump(slot);
            }
        }

        /// Decodes every complete request sitting in the connection's read
        /// buffer, filling response slots / queueing worker jobs.
        fn process_rbuf(&mut self, slot: usize) {
            // The read buffer is taken out of the connection for the
            // duration of the pass so decoded requests can be admitted
            // (which mutates the connection) while slices of it are alive.
            let (protocol, mut rbuf) = {
                let conn = self.conns[slot].as_mut().unwrap();
                if conn.protocol == Protocol::Undecided {
                    conn.protocol = codec::detect_protocol(&conn.rbuf);
                    if conn.protocol == Protocol::Binary {
                        conn.rbuf.drain(..codec::MAGIC.len());
                    }
                }
                (conn.protocol, std::mem::take(&mut conn.rbuf))
            };
            let mut consumed = 0usize;
            match protocol {
                Protocol::Undecided => {}
                Protocol::Text => {
                    while let Some(nl) = rbuf[consumed..].iter().position(|&b| b == b'\n') {
                        let parsed = match std::str::from_utf8(&rbuf[consumed..consumed + nl]) {
                            Ok(s) => protocol::parse_request(s),
                            Err(_) => Err("request not UTF-8".to_string()),
                        };
                        consumed += nl + 1;
                        self.admit(slot, parsed);
                    }
                }
                Protocol::Binary => loop {
                    match codec::decode_request(&rbuf[consumed..]) {
                        DecodeStep::Incomplete => break,
                        DecodeStep::Frame {
                            consumed: n,
                            request,
                        } => {
                            consumed += n;
                            self.admit(slot, request.map_err(|e| e.to_string()));
                        }
                        DecodeStep::Fatal(e) => {
                            let conn = self.conns[slot].as_mut().unwrap();
                            conn.push_ready(format!("ERR {e}"), Control::Continue);
                            conn.closing = true;
                            consumed = rbuf.len();
                            break;
                        }
                    }
                },
            }
            if consumed > 0 {
                rbuf.drain(..consumed);
            }
            self.conns[slot].as_mut().unwrap().rbuf = rbuf;
        }

        /// Runs one decoded (or failed-to-decode) request through admission
        /// and either answers it inline or hands it to the worker pool.
        fn admit(&mut self, slot: usize, parsed: Result<Request, String>) {
            let metrics = self.shared.engine.metrics();
            metrics.net.requests_total.fetch_add(1, Relaxed);
            let conn = self.conns[slot].as_mut().unwrap();
            metrics
                .net
                .pipeline_depth
                .record(conn.slots.len() as u64 + 1);
            let req = match parsed {
                Err(msg) => {
                    conn.push_ready(format!("ERR {msg}"), Control::Continue);
                    return;
                }
                Ok(req) => req,
            };
            match req {
                // Connection-state verbs run inline: no engine resources.
                Request::Hello { tenant } => {
                    conn.tenant = metrics.net.tenant(&tenant);
                    conn.bucket = self.shared.admission.bucket(&tenant);
                    conn.tenant_name = tenant;
                    let line = format!("OK HELLO {}", conn.tenant_name);
                    conn.push_ready(line, Control::Continue);
                }
                Request::Ping => conn.push_ready("OK PONG".to_string(), Control::Continue),
                req => {
                    if req.admission_controlled() {
                        let extra = self.shared.jobs_depth.load(Relaxed);
                        match self
                            .shared
                            .admission
                            .check_bucket(&conn.bucket, metrics, extra)
                        {
                            Verdict::Admit => conn.tenant.admitted.fetch_add(1, Relaxed),
                            shed => {
                                conn.tenant.denied.fetch_add(1, Relaxed);
                                metrics.net.shed_total.fetch_add(1, Relaxed);
                                let line = shed.busy_line().unwrap().to_string();
                                conn.push_ready(line, Control::Continue);
                                return;
                            }
                        };
                    }
                    let seq = conn.next_seq();
                    conn.slots.push_back(None);
                    conn.queued.push_back((seq, req));
                    self.shared.jobs_depth.fetch_add(1, Relaxed);
                    self.maybe_dispatch(slot);
                }
            }
        }

        /// Moves the connection's queued requests (up to [`JOB_BATCH_MAX`])
        /// to the worker pool as one job, if none of its requests is
        /// currently executing (per-connection sequential execution — see
        /// the `queued` field).
        fn maybe_dispatch(&mut self, slot: usize) {
            let conn = self.conns[slot].as_mut().unwrap();
            if conn.inflight || conn.queued.is_empty() {
                return;
            }
            let take = conn.queued.len().min(JOB_BATCH_MAX);
            let reqs: Vec<(u64, Request)> = conn.queued.drain(..take).collect();
            conn.inflight = true;
            self.jobs_out.push(Job {
                reactor: self.id,
                slot,
                generation: conn.generation,
                reqs,
            });
        }

        /// Publishes the jobs collected during this read pass in one lock
        /// acquisition.
        fn dispatch_jobs(&mut self) {
            if self.jobs_out.is_empty() {
                return;
            }
            let n = self.jobs_out.len();
            self.shared.jobs.lock().extend(self.jobs_out.drain(..));
            if n == 1 {
                self.shared.jobs_cv.notify_one();
            } else {
                self.shared.jobs_cv.notify_all();
            }
        }

        // ---- completion path ---------------------------------------------

        fn apply_completions(&mut self) {
            let completions = {
                let mut mailbox = self.shared.reactors[self.id].completions.lock();
                std::mem::take(&mut *mailbox)
            };
            let mut touched = Vec::new();
            for c in completions {
                let valid = self.conns.get(c.slot).is_some_and(|s| {
                    s.as_ref()
                        .is_some_and(|conn| conn.generation == c.generation)
                });
                if !valid {
                    // The connection died while the batch ran. A SHUTDOWN
                    // must still stop the server even if its client is gone.
                    if c.results
                        .iter()
                        .any(|(_, _, ctl)| *ctl == Control::StopServer)
                    {
                        self.initiate_stop();
                    }
                    continue;
                }
                let conn = self.conns[c.slot].as_mut().unwrap();
                for (seq, response, control) in c.results {
                    let idx = (seq - conn.base_seq) as usize;
                    conn.slots[idx] = Some((response, control));
                }
                conn.inflight = false;
                self.maybe_dispatch(c.slot);
                if !touched.contains(&c.slot) {
                    touched.push(c.slot);
                }
            }
            self.dispatch_jobs();
            for slot in touched {
                self.pump(slot);
            }
        }

        /// Moves the completed in-order response prefix into the write
        /// buffer and pushes it to the socket.
        fn pump(&mut self, slot: usize) {
            let mut stop_after_flush = false;
            {
                let conn = self.conns[slot].as_mut().unwrap();
                while let Some(Some(_)) = conn.slots.front() {
                    let (response, control) = conn.slots.pop_front().unwrap().unwrap();
                    conn.base_seq += 1;
                    match conn.protocol {
                        Protocol::Binary => codec::encode_response(&response, &mut conn.wbuf),
                        _ => {
                            conn.wbuf.extend_from_slice(response.as_bytes());
                            conn.wbuf.push(b'\n');
                        }
                    }
                    if control == Control::StopServer {
                        stop_after_flush = true;
                        break;
                    }
                }
            }
            self.flush_conn(slot);
            if stop_after_flush {
                // Best-effort: give the closing client a beat to receive
                // `OK BYE` even if the socket buffer was momentarily full.
                let deadline = Instant::now() + Duration::from_millis(250);
                while self.conns[slot]
                    .as_ref()
                    .is_some_and(|c| c.wpos < c.wbuf.len())
                    && Instant::now() < deadline
                {
                    std::thread::sleep(Duration::from_millis(5));
                    self.flush_conn(slot);
                }
                self.initiate_stop();
            }
        }

        fn initiate_stop(&self) {
            self.shared.stop.store(true, SeqCst);
            self.shared.wake_all();
        }

        /// Writes as much of `wbuf` as the socket accepts; manages EPOLLOUT
        /// interest and end-of-life transitions.
        fn flush_conn(&mut self, slot: usize) {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            let mut written = 0u64;
            let mut dead = false;
            while conn.wpos < conn.wbuf.len() {
                match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.wpos += n;
                        written += n as u64;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if written > 0 {
                self.shared
                    .engine
                    .metrics()
                    .net
                    .bytes_out
                    .fetch_add(written, Relaxed);
            }
            if dead {
                self.close(slot);
                return;
            }
            let drained = conn.wpos >= conn.wbuf.len();
            if drained && conn.wpos > 0 {
                conn.wbuf.clear();
                conn.wpos = 0;
            }
            let want_write = !drained;
            if want_write != conn.want_write {
                conn.want_write = want_write;
                let mut events = sys::EPOLLIN | sys::EPOLLRDHUP;
                if want_write {
                    events |= sys::EPOLLOUT;
                }
                let fd = conn.stream.as_raw_fd();
                let _ = self.epoll.modify(fd, events, slot as u64);
            }
            let finished = self.conns[slot]
                .as_ref()
                .is_some_and(|c| (c.closing || c.read_closed) && c.idle_and_drained());
            if finished {
                self.close(slot);
            }
        }

        fn scan_idle(&mut self) {
            let timeout = self.shared.cfg.read_timeout;
            let mut expired = Vec::new();
            for (slot, conn) in self.conns.iter().enumerate() {
                if let Some(c) = conn {
                    if c.idle_and_drained() && c.last_activity.elapsed() >= timeout {
                        expired.push(slot);
                    }
                }
            }
            for slot in expired {
                self.close(slot);
            }
        }
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use crate::codec;
    use crate::engine::{EngineConfig, PartitionPolicy};
    use crate::protocol::Request;
    use dc_hierarchy::{CubeSchema, HierarchySchema};
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpStream;
    use std::time::Duration;

    fn tiny_engine() -> Arc<ShardedDcTree> {
        let schema = CubeSchema::new(
            vec![HierarchySchema::new(
                "Customer",
                vec!["Region".into(), "Nation".into()],
            )],
            "sales",
        );
        Arc::new(
            ShardedDcTree::new(
                schema,
                EngineConfig {
                    num_shards: 2,
                    policy: PartitionPolicy::Hash,
                    ..Default::default()
                },
            )
            .unwrap(),
        )
    }

    #[test]
    fn text_and_binary_clients_share_one_reactor() {
        let engine = tiny_engine();
        let handle =
            serve_reactor(Arc::clone(&engine), "127.0.0.1:0", ReactorConfig::default()).unwrap();
        let addr = handle.local_addr();

        // Text client.
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut w = stream.try_clone().unwrap();
        let mut r = BufReader::new(stream);
        w.write_all(b"PING\nINSERT 5 EUROPE/FRANCE\n").unwrap();
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "OK PONG");
        line.clear();
        r.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "OK INSERTED");
        engine.flush();
        w.write_all(b"SUM\n").unwrap();
        line.clear();
        r.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "OK 5.00");

        // Pipelined binary client over the same server.
        let mut bin = TcpStream::connect(addr).unwrap();
        bin.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut frames = codec::MAGIC.to_vec();
        codec::encode_request(&Request::Ping, &mut frames);
        codec::encode_request(
            &Request::Insert {
                measure: 7,
                paths: vec![vec!["ASIA".into(), "JAPAN".into()]],
            },
            &mut frames,
        );
        codec::encode_request(
            &Request::Query {
                text: "COUNT".into(),
            },
            &mut frames,
        );
        bin.write_all(&frames).unwrap();
        let mut got = Vec::new();
        let mut responses = Vec::new();
        let mut chunk = [0u8; 4096];
        while responses.len() < 3 {
            let n = bin.read(&mut chunk).unwrap();
            assert!(n > 0, "server closed early; got {responses:?}");
            got.extend_from_slice(&chunk[..n]);
            loop {
                match codec::decode_response(&got) {
                    codec::ResponseStep::Incomplete => break,
                    codec::ResponseStep::Frame {
                        consumed,
                        status,
                        response,
                    } => {
                        got.drain(..consumed);
                        responses.push((status, response));
                    }
                    other => panic!("{other:?}"),
                }
            }
        }
        assert_eq!(responses[0], (codec::STATUS_OK, "OK PONG".to_string()));
        assert_eq!(responses[1].0, codec::STATUS_OK);
        handle.stop();
    }
}
