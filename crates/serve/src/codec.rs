//! The `DCB1` binary wire codec: length-prefixed frames over a raw TCP
//! stream, supporting request pipelining (many in-flight requests per
//! connection; responses come back in request order).
//!
//! ## Connection preamble
//!
//! A binary client opens by sending the 4 magic bytes `DCB1`. The server
//! auto-detects the protocol from a connection's first bytes
//! ([`detect_protocol`]): the magic selects this codec, anything else
//! falls back to the newline-delimited text protocol — which is why every
//! pre-existing client, test, and replication transport keeps working
//! unchanged.
//!
//! ## Frame format
//!
//! ```text
//! request  := u32 len (LE) | u8 opcode | payload        len = 1 + |payload|
//! response := u32 len (LE) | u8 status | payload        len = 1 + |payload|
//! ```
//!
//! `len` counts everything after the length field and must be in
//! `1 ..= MAX_FRAME`. Response `status` is [`STATUS_OK`] / [`STATUS_ERR`] /
//! [`STATUS_BUSY`]; the response payload is exactly the text-protocol
//! response line (`OK PONG`, `ERR …`, `BUSY …`), which keeps the two
//! protocols byte-comparable end to end.
//!
//! | opcode | request            | payload |
//! |--------|--------------------|---------|
//! | 0x01   | `HELLO`            | tenant (UTF-8) |
//! | 0x02   | `PING`             | — |
//! | 0x03   | `STATS`            | — |
//! | 0x04   | `FLUSH`            | — |
//! | 0x05   | `CHECKPOINT`       | — |
//! | 0x06   | `SHUTDOWN`         | — |
//! | 0x07   | `INSERT`           | i64 measure, paths (see below) |
//! | 0x08   | `DELETE`           | i64 measure, paths |
//! | 0x09   | `INSERT_BATCH`     | u32 count, then count × (i64 measure, paths) |
//! | 0x0A   | query (dc-ql)      | statement text (UTF-8) |
//! | 0x0B   | `REPL_STATUS`      | — |
//! | 0x0C   | `WAIT_LSN`         | u64 lsn, u8 has_timeout, [u64 timeout_ms] |
//! | 0x0D   | `MIN_LSN`          | u64 lsn, nested request (u8 opcode + payload) |
//! | 0x0E   | `FETCH_SEGMENTS`   | u64 from_lsn |
//! | 0x0F   | `FETCH_CHECKPOINT` | — |
//!
//! Paths encode as `u16 ndims`, then per dimension `u8 ncomponents`, then
//! per component `u16 len + UTF-8 bytes` — the top→leaf hierarchy chain of
//! `INSERT 150 EUROPE/GERMANY|1996/Jan` without the separator grammar (so
//! binary clients may use names containing `/`, `|`, `;`).
//!
//! ## Error containment
//!
//! Decoding distinguishes recoverable from fatal malformations. A frame
//! with an intact length but an unknown opcode or a payload that does not
//! parse is consumed whole and answered `ERR …` — the stream stays in
//! sync and later frames are served. A length outside `1 ..= MAX_FRAME`
//! means the framing itself cannot be trusted; the connection is answered
//! `ERR …` once and closed ([`DecodeStep::Fatal`]). Truncated frames are
//! simply [`DecodeStep::Incomplete`] — more bytes may still arrive.

use crate::protocol::{valid_tenant, Request};

/// The binary-protocol connection preamble.
pub const MAGIC: [u8; 4] = *b"DCB1";

/// Hard ceiling on `len` (opcode/status byte + payload): 16 MiB, far above
/// any legal request (the text protocol's longest lines are segment
/// fetches, well under 1 MiB per frame on default segment sizing).
pub const MAX_FRAME: usize = 16 << 20;

/// Response status: the payload starts `OK `.
pub const STATUS_OK: u8 = 0;
/// Response status: the payload starts `ERR `.
pub const STATUS_ERR: u8 = 1;
/// Response status: shed by admission control, payload starts `BUSY `.
pub const STATUS_BUSY: u8 = 2;

const OP_HELLO: u8 = 0x01;
const OP_PING: u8 = 0x02;
const OP_STATS: u8 = 0x03;
const OP_FLUSH: u8 = 0x04;
const OP_CHECKPOINT: u8 = 0x05;
const OP_SHUTDOWN: u8 = 0x06;
const OP_INSERT: u8 = 0x07;
const OP_DELETE: u8 = 0x08;
const OP_INSERT_BATCH: u8 = 0x09;
const OP_QUERY: u8 = 0x0A;
const OP_REPL_STATUS: u8 = 0x0B;
const OP_WAIT_LSN: u8 = 0x0C;
const OP_MIN_LSN: u8 = 0x0D;
const OP_FETCH_SEGMENTS: u8 = 0x0E;
const OP_FETCH_CHECKPOINT: u8 = 0x0F;

/// `MIN_LSN` frames nest a request; the decoder bounds the depth like the
/// text parser does.
const MAX_NESTING: usize = 16;

/// What a connection's first bytes say it speaks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Protocol {
    /// Not enough bytes yet to rule the magic in or out.
    Undecided,
    /// The `DCB1` preamble: consume 4 bytes, then parse binary frames.
    Binary,
    /// Anything else: the newline-delimited text protocol.
    Text,
}

/// Sniffs a connection's opening bytes. Returns [`Protocol::Undecided`]
/// while `buf` is still a proper prefix of the magic.
pub fn detect_protocol(buf: &[u8]) -> Protocol {
    let probe = buf.len().min(MAGIC.len());
    if buf[..probe] != MAGIC[..probe] {
        return Protocol::Text;
    }
    if buf.len() >= MAGIC.len() {
        Protocol::Binary
    } else {
        Protocol::Undecided
    }
}

/// A malformed frame, with the recoverable/fatal split described in the
/// [module docs](self).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Frame length field outside `1 ..= MAX_FRAME` — framing is lost,
    /// close the connection (fatal).
    BadLength(u64),
    /// Unknown opcode; the frame was consumed whole (recoverable).
    UnknownOpcode(u8),
    /// The payload did not parse for its opcode; consumed (recoverable).
    Malformed(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadLength(n) => {
                write!(f, "frame length {n} outside 1..={MAX_FRAME}")
            }
            FrameError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            FrameError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

/// One step of incremental request decoding from a connection buffer.
#[derive(Debug, PartialEq)]
pub enum DecodeStep {
    /// Not enough bytes for a whole frame yet.
    Incomplete,
    /// A whole frame was consumed (`consumed` bytes): either a request, or
    /// a recoverable per-frame error to answer `ERR` while the stream
    /// stays usable.
    Frame {
        consumed: usize,
        request: Result<Request, FrameError>,
    },
    /// The length field itself is illegal: answer once, then close.
    Fatal(FrameError),
}

/// Tries to decode one request frame from the front of `buf`.
pub fn decode_request(buf: &[u8]) -> DecodeStep {
    let Some(len_bytes) = buf.get(..4) else {
        return DecodeStep::Incomplete;
    };
    let len = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
    if len == 0 || len > MAX_FRAME {
        return DecodeStep::Fatal(FrameError::BadLength(len as u64));
    }
    let Some(body) = buf.get(4..4 + len) else {
        return DecodeStep::Incomplete;
    };
    DecodeStep::Frame {
        consumed: 4 + len,
        request: decode_body(body[0], &body[1..], 0),
    }
}

fn decode_body(opcode: u8, payload: &[u8], depth: usize) -> Result<Request, FrameError> {
    let mut r = Reader { buf: payload };
    let req = match opcode {
        OP_HELLO => {
            let tenant = r.rest_utf8()?;
            if !valid_tenant(tenant) {
                return Err(FrameError::Malformed("illegal tenant name"));
            }
            Request::Hello {
                tenant: tenant.to_string(),
            }
        }
        OP_PING => Request::Ping,
        OP_STATS => Request::Stats,
        OP_FLUSH => Request::Flush,
        OP_CHECKPOINT => Request::Checkpoint,
        OP_SHUTDOWN => Request::Shutdown,
        OP_INSERT => {
            let (measure, paths) = r.record()?;
            Request::Insert { measure, paths }
        }
        OP_DELETE => {
            let (measure, paths) = r.record()?;
            Request::Delete { measure, paths }
        }
        OP_INSERT_BATCH => {
            let count = r.u32()? as usize;
            if count == 0 {
                return Err(FrameError::Malformed("empty INSERT_BATCH"));
            }
            // A count can claim at most one record per remaining payload
            // byte; reject early instead of pre-allocating on a lie.
            if count > r.buf.len() {
                return Err(FrameError::Malformed("INSERT_BATCH count exceeds payload"));
            }
            let mut records = Vec::with_capacity(count);
            for _ in 0..count {
                let (measure, paths) = r.record()?;
                records.push((paths, measure));
            }
            Request::InsertBatch { records }
        }
        OP_QUERY => Request::Query {
            text: r.rest_utf8()?.to_string(),
        },
        OP_REPL_STATUS => Request::ReplStatus,
        OP_WAIT_LSN => {
            let lsn = r.u64()?;
            let timeout_ms = match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                _ => return Err(FrameError::Malformed("WAIT_LSN timeout flag")),
            };
            Request::WaitLsn { lsn, timeout_ms }
        }
        OP_MIN_LSN => {
            if depth >= MAX_NESTING {
                return Err(FrameError::Malformed("MIN_LSN nesting too deep"));
            }
            let lsn = r.u64()?;
            let inner_op = r.u8()?;
            return decode_body(inner_op, r.buf, depth + 1).map(|inner| Request::MinLsn {
                lsn,
                inner: Box::new(inner),
            });
        }
        OP_FETCH_SEGMENTS => Request::FetchSegments { from_lsn: r.u64()? },
        OP_FETCH_CHECKPOINT => Request::FetchCheckpoint,
        other => return Err(FrameError::UnknownOpcode(other)),
    };
    if !r.buf.is_empty() {
        return Err(FrameError::Malformed("trailing bytes in frame"));
    }
    Ok(req)
}

/// Appends the frame for `req` to `out` (reusable buffer; the caller
/// clears between frames or lets frames accumulate for pipelining).
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    let at = out.len();
    out.extend_from_slice(&[0; 4]); // length back-patched below
    encode_body(req, out);
    let len = (out.len() - at - 4) as u32;
    out[at..at + 4].copy_from_slice(&len.to_le_bytes());
}

fn encode_body(req: &Request, out: &mut Vec<u8>) {
    match req {
        Request::Hello { tenant } => {
            out.push(OP_HELLO);
            out.extend_from_slice(tenant.as_bytes());
        }
        Request::Ping => out.push(OP_PING),
        Request::Stats => out.push(OP_STATS),
        Request::Flush => out.push(OP_FLUSH),
        Request::Checkpoint => out.push(OP_CHECKPOINT),
        Request::Shutdown => out.push(OP_SHUTDOWN),
        Request::Insert { measure, paths } => {
            out.push(OP_INSERT);
            encode_record(*measure, paths, out);
        }
        Request::Delete { measure, paths } => {
            out.push(OP_DELETE);
            encode_record(*measure, paths, out);
        }
        Request::InsertBatch { records } => {
            out.push(OP_INSERT_BATCH);
            out.extend_from_slice(&(records.len() as u32).to_le_bytes());
            for (paths, measure) in records {
                encode_record(*measure, paths, out);
            }
        }
        Request::Query { text } => {
            out.push(OP_QUERY);
            out.extend_from_slice(text.as_bytes());
        }
        Request::ReplStatus => out.push(OP_REPL_STATUS),
        Request::WaitLsn { lsn, timeout_ms } => {
            out.push(OP_WAIT_LSN);
            out.extend_from_slice(&lsn.to_le_bytes());
            match timeout_ms {
                None => out.push(0),
                Some(ms) => {
                    out.push(1);
                    out.extend_from_slice(&ms.to_le_bytes());
                }
            }
        }
        Request::MinLsn { lsn, inner } => {
            out.push(OP_MIN_LSN);
            out.extend_from_slice(&lsn.to_le_bytes());
            encode_body(inner, out);
        }
        Request::FetchSegments { from_lsn } => {
            out.push(OP_FETCH_SEGMENTS);
            out.extend_from_slice(&from_lsn.to_le_bytes());
        }
        Request::FetchCheckpoint => out.push(OP_FETCH_CHECKPOINT),
    }
}

fn encode_record(measure: i64, paths: &[Vec<String>], out: &mut Vec<u8>) {
    out.extend_from_slice(&measure.to_le_bytes());
    out.extend_from_slice(&(paths.len().min(u16::MAX as usize) as u16).to_le_bytes());
    for dim in paths {
        out.push(dim.len().min(u8::MAX as usize) as u8);
        for comp in dim {
            let bytes = comp.as_bytes();
            let n = bytes.len().min(u16::MAX as usize);
            out.extend_from_slice(&(n as u16).to_le_bytes());
            out.extend_from_slice(&bytes[..n]);
        }
    }
}

/// The status byte a response line maps to (`OK …` / `BUSY …` / `ERR …`).
pub fn status_of(response: &str) -> u8 {
    if response.starts_with("OK") {
        STATUS_OK
    } else if response.starts_with("BUSY") {
        STATUS_BUSY
    } else {
        STATUS_ERR
    }
}

/// Appends a response frame (status byte + the text-protocol response
/// line) to `out`.
pub fn encode_response(response: &str, out: &mut Vec<u8>) {
    let len = (1 + response.len()) as u32;
    out.extend_from_slice(&len.to_le_bytes());
    out.push(status_of(response));
    out.extend_from_slice(response.as_bytes());
}

/// One step of incremental response decoding (the client side).
#[derive(Debug, PartialEq)]
pub enum ResponseStep {
    Incomplete,
    /// A whole response frame: `consumed` bytes, its status byte, and the
    /// response line.
    Frame {
        consumed: usize,
        status: u8,
        response: String,
    },
    /// Illegal length or non-UTF-8 payload: the stream is unusable.
    Fatal(FrameError),
}

/// Tries to decode one response frame from the front of `buf`.
pub fn decode_response(buf: &[u8]) -> ResponseStep {
    let Some(len_bytes) = buf.get(..4) else {
        return ResponseStep::Incomplete;
    };
    let len = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
    if len == 0 || len > MAX_FRAME {
        return ResponseStep::Fatal(FrameError::BadLength(len as u64));
    }
    let Some(body) = buf.get(4..4 + len) else {
        return ResponseStep::Incomplete;
    };
    match std::str::from_utf8(&body[1..]) {
        Ok(s) => ResponseStep::Frame {
            consumed: 4 + len,
            status: body[0],
            response: s.to_string(),
        },
        Err(_) => ResponseStep::Fatal(FrameError::Malformed("response not UTF-8")),
    }
}

/// A little-endian payload cursor; every read is bounds-checked so a
/// truncated or lying payload yields [`FrameError::Malformed`], never a
/// panic.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.buf.len() < n {
            return Err(FrameError::Malformed("truncated payload"));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, FrameError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, FrameError> {
        let n = self.u16()? as usize;
        let bytes = self.take(n)?;
        std::str::from_utf8(bytes)
            .map(str::to_string)
            .map_err(|_| FrameError::Malformed("path component not UTF-8"))
    }

    fn rest_utf8(&mut self) -> Result<&'a str, FrameError> {
        let bytes = std::mem::take(&mut self.buf);
        std::str::from_utf8(bytes).map_err(|_| FrameError::Malformed("payload not UTF-8"))
    }

    #[allow(clippy::type_complexity)]
    fn record(&mut self) -> Result<(i64, Vec<Vec<String>>), FrameError> {
        let measure = self.i64()?;
        let ndims = self.u16()? as usize;
        if ndims == 0 {
            return Err(FrameError::Malformed("record with zero dimensions"));
        }
        let mut paths = Vec::with_capacity(ndims.min(64));
        for _ in 0..ndims {
            let ncomps = self.u8()? as usize;
            if ncomps == 0 {
                return Err(FrameError::Malformed("dimension with zero components"));
            }
            let mut dim = Vec::with_capacity(ncomps);
            for _ in 0..ncomps {
                let comp = self.string()?;
                if comp.is_empty() {
                    return Err(FrameError::Malformed("empty path component"));
                }
                dim.push(comp);
            }
            paths.push(dim);
        }
        Ok((measure, paths))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(req: Request) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        match decode_request(&buf) {
            DecodeStep::Frame { consumed, request } => {
                assert_eq!(consumed, buf.len());
                assert_eq!(request.as_ref(), Ok(&req));
            }
            other => panic!("{req:?} decoded to {other:?}"),
        }
    }

    #[test]
    fn every_opcode_round_trips() {
        let paths = vec![
            vec!["EUROPE".to_string(), "GERMANY".to_string()],
            vec!["1996".to_string(), "Jan".to_string()],
        ];
        for req in [
            Request::Hello {
                tenant: "analytics-7".into(),
            },
            Request::Ping,
            Request::Stats,
            Request::Flush,
            Request::Checkpoint,
            Request::Shutdown,
            Request::Insert {
                measure: -150,
                paths: paths.clone(),
            },
            Request::Delete {
                measure: i64::MAX,
                paths: paths.clone(),
            },
            Request::InsertBatch {
                records: vec![(paths.clone(), 1), (paths, -2)],
            },
            Request::Query {
                text: "SELECT SUM, COUNT WHERE Customer.Region = 'EUROPE'".into(),
            },
            Request::ReplStatus,
            Request::WaitLsn {
                lsn: 17,
                timeout_ms: None,
            },
            Request::WaitLsn {
                lsn: u64::MAX,
                timeout_ms: Some(250),
            },
            Request::MinLsn {
                lsn: 5,
                inner: Box::new(Request::Query {
                    text: "COUNT".into(),
                }),
            },
            Request::MinLsn {
                lsn: 5,
                inner: Box::new(Request::MinLsn {
                    lsn: 6,
                    inner: Box::new(Request::Ping),
                }),
            },
            Request::FetchSegments { from_lsn: 12 },
            Request::FetchCheckpoint,
        ] {
            round_trip(req);
        }
    }

    #[test]
    fn binary_paths_may_contain_text_separators() {
        // The text grammar reserves '/', '|', ';' — the binary encoding
        // doesn't need to.
        round_trip(Request::Insert {
            measure: 9,
            paths: vec![vec!["A/B|C;D".to_string(), "x y".to_string()]],
        });
    }

    #[test]
    fn truncated_frames_are_incomplete_never_panic() {
        let mut buf = Vec::new();
        encode_request(
            &Request::Insert {
                measure: 1,
                paths: vec![vec!["a".into(), "b".into()]],
            },
            &mut buf,
        );
        for cut in 0..buf.len() {
            assert_eq!(decode_request(&buf[..cut]), DecodeStep::Incomplete, "{cut}");
        }
    }

    #[test]
    fn oversized_and_zero_lengths_are_fatal() {
        let mut buf = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        buf.push(OP_PING);
        assert!(matches!(
            decode_request(&buf),
            DecodeStep::Fatal(FrameError::BadLength(_))
        ));
        let zero = 0u32.to_le_bytes();
        assert!(matches!(
            decode_request(&zero),
            DecodeStep::Fatal(FrameError::BadLength(0))
        ));
    }

    #[test]
    fn unknown_opcode_is_recoverable_and_stream_stays_in_sync() {
        let mut buf = Vec::new();
        // Bad frame…
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&[0xEE, 1, 2]);
        // …followed by a good one.
        encode_request(&Request::Ping, &mut buf);
        let DecodeStep::Frame { consumed, request } = decode_request(&buf) else {
            panic!("expected a frame");
        };
        assert_eq!(consumed, 7);
        assert_eq!(request, Err(FrameError::UnknownOpcode(0xEE)));
        match decode_request(&buf[consumed..]) {
            DecodeStep::Frame { request, .. } => assert_eq!(request, Ok(Request::Ping)),
            other => panic!("desynced: {other:?}"),
        }
    }

    #[test]
    fn corrupt_payloads_are_recoverable_errors() {
        // An INSERT whose payload lies about its component count.
        let mut body = vec![OP_INSERT];
        body.extend_from_slice(&5i64.to_le_bytes());
        body.extend_from_slice(&1u16.to_le_bytes()); // 1 dim
        body.push(3); // claims 3 components, provides none
        let mut buf = (body.len() as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&body);
        match decode_request(&buf) {
            DecodeStep::Frame { consumed, request } => {
                assert_eq!(consumed, buf.len());
                assert_eq!(request, Err(FrameError::Malformed("truncated payload")));
            }
            other => panic!("{other:?}"),
        }
        // Trailing garbage after a complete request is rejected too.
        let mut buf = Vec::new();
        encode_request(&Request::Ping, &mut buf);
        buf[0] += 2; // lengthen the frame over two junk bytes
        buf.extend_from_slice(&[9, 9]);
        match decode_request(&buf) {
            DecodeStep::Frame { request, .. } => {
                assert_eq!(
                    request,
                    Err(FrameError::Malformed("trailing bytes in frame"))
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn responses_round_trip_with_status() {
        for (line, status) in [
            ("OK PONG", STATUS_OK),
            ("OK 1234.00", STATUS_OK),
            ("ERR no such dimension", STATUS_ERR),
            ("BUSY tenant over rate", STATUS_BUSY),
        ] {
            let mut buf = Vec::new();
            encode_response(line, &mut buf);
            match decode_response(&buf) {
                ResponseStep::Frame {
                    consumed,
                    status: s,
                    response,
                } => {
                    assert_eq!(consumed, buf.len());
                    assert_eq!(s, status);
                    assert_eq!(response, line);
                }
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(decode_response(&[1, 2]), ResponseStep::Incomplete);
    }

    #[test]
    fn protocol_detection() {
        assert_eq!(detect_protocol(b""), Protocol::Undecided);
        assert_eq!(detect_protocol(b"D"), Protocol::Undecided);
        assert_eq!(detect_protocol(b"DCB"), Protocol::Undecided);
        assert_eq!(detect_protocol(b"DCB1"), Protocol::Binary);
        assert_eq!(detect_protocol(b"DCB1\x0a\x00\x00\x00"), Protocol::Binary);
        assert_eq!(detect_protocol(b"PING\n"), Protocol::Text);
        assert_eq!(detect_protocol(b"DCBX"), Protocol::Text);
        assert_eq!(detect_protocol(b"S"), Protocol::Text);
    }

    #[test]
    fn min_lsn_nesting_is_bounded() {
        let mut req = Request::Ping;
        for i in 0..40 {
            req = Request::MinLsn {
                lsn: i,
                inner: Box::new(req),
            };
        }
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        match decode_request(&buf) {
            DecodeStep::Frame { request, .. } => {
                assert_eq!(
                    request,
                    Err(FrameError::Malformed("MIN_LSN nesting too deep"))
                );
            }
            other => panic!("{other:?}"),
        }
    }
}
