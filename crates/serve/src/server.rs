//! The threaded TCP front-end: one accept loop, one thread per connection,
//! newline-delimited requests answered by [`crate::protocol`].

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::engine::ShardedDcTree;
use crate::protocol::{handle_line, Control};

/// Server knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// A connection idle longer than this is closed.
    pub read_timeout: Duration,
    /// Granularity at which blocked reads and the accept loop re-check the
    /// stop flag (bounds shutdown latency).
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_timeout: Duration::from_secs(30),
            poll_interval: Duration::from_millis(25),
        }
    }
}

/// A running server. Dropping the handle without calling
/// [`stop`](Self::stop) leaves the server running detached.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// `true` once the server has been asked to stop (by [`stop`](Self::stop)
    /// or a client's `SHUTDOWN`).
    pub fn is_stopped(&self) -> bool {
        self.stop.load(SeqCst)
    }

    /// Stops accepting, waits for the accept loop and every connection
    /// thread to exit.
    pub fn stop(mut self) {
        self.stop.store(true, SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Blocks until the server stops on its own (e.g. a client sent
    /// `SHUTDOWN`), joining all threads.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves the engine until stopped.
pub fn serve(
    engine: Arc<ShardedDcTree>,
    addr: &str,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::Builder::new()
        .name("dc-serve-accept".into())
        .spawn(move || accept_loop(listener, engine, accept_stop, config))?;
    Ok(ServerHandle {
        addr: local,
        stop,
        accept_thread: Some(accept_thread),
    })
}

fn accept_loop(
    listener: TcpListener,
    engine: Arc<ShardedDcTree>,
    stop: Arc<AtomicBool>,
    config: ServerConfig,
) {
    let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    while !stop.load(SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let engine = Arc::clone(&engine);
                let stop = Arc::clone(&stop);
                let handle = std::thread::Builder::new()
                    .name("dc-serve-conn".into())
                    .spawn(move || {
                        let _ = serve_connection(stream, &engine, &stop, config);
                    });
                match handle {
                    Ok(h) => {
                        let mut conns = connections.lock();
                        // Opportunistically reap finished threads so the
                        // vector doesn't grow with connection churn.
                        conns.retain(|c| !c.is_finished());
                        conns.push(h);
                    }
                    Err(_) => continue,
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(config.poll_interval);
            }
            Err(_) => break,
        }
    }
    stop.store(true, SeqCst);
    for c in connections.lock().drain(..) {
        let _ = c.join();
    }
}

fn serve_connection(
    stream: TcpStream,
    engine: &ShardedDcTree,
    stop: &AtomicBool,
    config: ServerConfig,
) -> std::io::Result<()> {
    // Short socket timeouts act as the poll interval; `read_timeout` is
    // enforced on top via `last_activity`.
    stream.set_read_timeout(Some(config.poll_interval))?;
    stream.set_write_timeout(Some(config.read_timeout))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut last_activity = Instant::now();
    loop {
        if stop.load(SeqCst) {
            return Ok(());
        }
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client closed
            Ok(_) => {
                last_activity = Instant::now();
                let (response, control) = handle_line(engine, &line);
                line.clear();
                writer.write_all(response.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                if control == Control::StopServer {
                    stop.store(true, SeqCst);
                    return Ok(());
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // Idle poll tick; a partial line may sit in `line` and is
                // completed by the next successful read.
                if last_activity.elapsed() >= config.read_timeout {
                    return Ok(()); // per-connection idle timeout
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}
