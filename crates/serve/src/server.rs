//! The threaded TCP front-end: one accept loop, one thread per connection,
//! newline-delimited requests answered by [`crate::protocol`].

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed, Ordering::SeqCst};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::admission::DEFAULT_TENANT;
use crate::engine::ShardedDcTree;
use crate::protocol::{self, Control, Request};

/// Server knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// A connection idle longer than this is closed.
    pub read_timeout: Duration,
    /// Granularity at which blocked reads and the accept loop re-check the
    /// stop flag (bounds shutdown latency).
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_timeout: Duration::from_secs(30),
            // The poll interval only bounds stop-flag/idle-timeout checks —
            // a blocked read returns the moment data arrives regardless —
            // so a coarse tick costs nothing in request latency while a
            // fine one (this used to be 25 ms) woke every idle connection
            // thread 40×/s for nothing.
            poll_interval: Duration::from_millis(250),
        }
    }
}

/// A running server. Dropping the handle without calling
/// [`stop`](Self::stop) leaves the server running detached.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    /// Kicks blocked event loops after the stop flag flips (reactor
    /// front-end; the threaded server polls and needs no waker).
    waker: Option<Box<dyn Fn() + Send + Sync>>,
}

impl ServerHandle {
    /// Handle over an arbitrary front-end: `thread` is joined on
    /// stop/join, `waker` is invoked right after the stop flag is set.
    pub(crate) fn with_waker(
        addr: SocketAddr,
        stop: Arc<AtomicBool>,
        thread: JoinHandle<()>,
        waker: Box<dyn Fn() + Send + Sync>,
    ) -> ServerHandle {
        ServerHandle {
            addr,
            stop,
            accept_thread: Some(thread),
            waker: Some(waker),
        }
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// `true` once the server has been asked to stop (by [`stop`](Self::stop)
    /// or a client's `SHUTDOWN`).
    pub fn is_stopped(&self) -> bool {
        self.stop.load(SeqCst)
    }

    /// Stops accepting, waits for the accept loop and every connection
    /// thread to exit.
    pub fn stop(mut self) {
        self.stop.store(true, SeqCst);
        if let Some(w) = &self.waker {
            w();
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Blocks until the server stops on its own (e.g. a client sent
    /// `SHUTDOWN`), joining all threads.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves the engine until stopped.
pub fn serve(
    engine: Arc<ShardedDcTree>,
    addr: &str,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    engine.metrics().net.enabled.store(1, Relaxed);
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::Builder::new()
        .name("dc-serve-accept".into())
        .spawn(move || accept_loop(listener, engine, accept_stop, config))?;
    Ok(ServerHandle {
        addr: local,
        stop,
        accept_thread: Some(accept_thread),
        waker: None,
    })
}

fn accept_loop(
    listener: TcpListener,
    engine: Arc<ShardedDcTree>,
    stop: Arc<AtomicBool>,
    config: ServerConfig,
) {
    let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    while !stop.load(SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let engine = Arc::clone(&engine);
                let stop = Arc::clone(&stop);
                let handle = std::thread::Builder::new()
                    .name("dc-serve-conn".into())
                    .spawn(move || {
                        let _ = serve_connection(stream, &engine, &stop, config);
                    });
                match handle {
                    Ok(h) => {
                        let mut conns = connections.lock();
                        // Opportunistically reap finished threads so the
                        // vector doesn't grow with connection churn.
                        conns.retain(|c| !c.is_finished());
                        conns.push(h);
                    }
                    Err(_) => continue,
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(config.poll_interval);
            }
            Err(_) => break,
        }
    }
    stop.store(true, SeqCst);
    for c in connections.lock().drain(..) {
        let _ = c.join();
    }
}

/// Decrements a gauge on scope exit, whatever the exit path.
struct GaugeGuard<'a>(&'a AtomicU64);

impl Drop for GaugeGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Relaxed);
    }
}

fn serve_connection(
    stream: TcpStream,
    engine: &ShardedDcTree,
    stop: &AtomicBool,
    config: ServerConfig,
) -> std::io::Result<()> {
    let net = &engine.metrics().net;
    net.accepted_total.fetch_add(1, Relaxed);
    net.active_connections.fetch_add(1, Relaxed);
    let _active = GaugeGuard(&net.active_connections);
    // Short socket timeouts act as the poll interval; `read_timeout` is
    // enforced on top via `last_activity`.
    stream.set_read_timeout(Some(config.poll_interval))?;
    stream.set_write_timeout(Some(config.read_timeout))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    // Both buffers live as long as the connection: the request line and
    // the assembled response are reused across requests instead of being
    // reallocated per request, and the response + newline go out in one
    // `write_all` instead of three.
    let mut line = String::new();
    let mut out: Vec<u8> = Vec::new();
    let mut tenant = net.tenant(DEFAULT_TENANT);
    let mut last_activity = Instant::now();
    loop {
        if stop.load(SeqCst) {
            return Ok(());
        }
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client closed
            Ok(n) => {
                last_activity = Instant::now();
                net.bytes_in.fetch_add(n as u64, Relaxed);
                net.requests_total.fetch_add(1, Relaxed);
                // One request at a time on this transport.
                net.pipeline_depth.record(1);
                let (response, control) = match protocol::parse_request(&line) {
                    Ok(req) => {
                        if let Request::Hello { tenant: name } = &req {
                            tenant = net.tenant(name);
                        } else if req.admission_controlled() {
                            // The threaded front-end has no admission
                            // gate; everything data-plane counts admitted.
                            tenant.admitted.fetch_add(1, Relaxed);
                        }
                        protocol::execute(engine, &req)
                    }
                    Err(msg) => (format!("ERR {msg}"), Control::Continue),
                };
                line.clear();
                out.clear();
                out.extend_from_slice(response.as_bytes());
                out.push(b'\n');
                writer.write_all(&out)?;
                writer.flush()?;
                net.bytes_out.fetch_add(out.len() as u64, Relaxed);
                if control == Control::StopServer {
                    stop.store(true, SeqCst);
                    return Ok(());
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // Idle poll tick; a partial line may sit in `line` and is
                // completed by the next successful read.
                if last_activity.elapsed() >= config.read_timeout {
                    return Ok(()); // per-connection idle timeout
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}
