//! Engine observability: lock-free counters, per-shard gauges, and
//! log-scaled latency histograms, rendered as one JSON object for the
//! `STATS` verb.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dc_plan::Backend;
use parking_lot::Mutex;

/// A log₂-bucketed latency histogram. Bucket `i` holds samples whose
/// nanosecond count has its highest set bit at position `i`, so the range
/// covers 1 ns .. ~584 years in 64 buckets with bounded (< 2×) relative
/// error on reported percentiles — plenty for serving-latency telemetry.
pub struct LatencyHistogram {
    buckets: [AtomicU64; 64],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, d: Duration) {
        let nanos = d.as_nanos().min(u128::from(u64::MAX)) as u64;
        let bucket = 63 - nanos.max(1).leading_zeros() as usize;
        self.buckets[bucket].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum_nanos.fetch_add(nanos, Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Mean latency, or zero when empty.
    pub fn mean(&self) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.sum_nanos.load(Relaxed) / n)
    }

    /// The latency at quantile `q` in `[0, 1]` (upper bucket bound), or
    /// zero when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Relaxed);
            if seen >= rank {
                // Upper bound of bucket i: 2^(i+1) - 1 nanos.
                let bound = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return Duration::from_nanos(bound);
            }
        }
        Duration::from_nanos(u64::MAX)
    }
}

/// Per-shard gauges, updated by that shard's writer thread (and the ingest
/// path for queue depth).
#[derive(Default)]
pub struct ShardMetrics {
    /// Commands currently queued and not yet applied.
    pub queue_depth: AtomicU64,
    /// Records applied (inserts + deletes) since start.
    pub applied: AtomicU64,
    /// Records in the published snapshot.
    pub snapshot_records: AtomicU64,
    /// Nanoseconds since engine start at which the current snapshot was
    /// published (0 = never).
    pub snapshot_published_at: AtomicU64,
    /// Logical page reads of the shard tree since start.
    pub io_reads: AtomicU64,
    /// Logical page writes of the shard tree since start.
    pub io_writes: AtomicU64,
}

/// Aggregate-cache observability (`dc-cache`), updated by the query path
/// (lookups, insertions) and the shard writers (delta maintenance).
#[derive(Default)]
pub struct CacheMetrics {
    /// Exact cache hits (query answered without touching any shard).
    pub hits: AtomicU64,
    /// Semantic hits (a contained entry answered part of the query; only
    /// the remainder descended the tree).
    pub semantic_hits: AtomicU64,
    /// Lookups that found nothing usable.
    pub misses: AtomicU64,
    /// Entries patched in place by write-through delta maintenance.
    pub patches: AtomicU64,
    /// Entries whose MIN/MAX were degraded (or that were dropped) because a
    /// delete touched an extremum.
    pub invalidations: AtomicU64,
    /// Summaries inserted after a miss or semantic hit.
    pub insertions: AtomicU64,
    /// Entries evicted by the cost-aware policy.
    pub evictions: AtomicU64,
    /// Resident entries (gauge; updated on insertion).
    pub entries: AtomicU64,
    /// Time spent inside cache lookups (lock + probe + containment scan).
    pub lookup_latency: LatencyHistogram,
}

/// Query-pool observability: the persistent work-stealing executor behind
/// scatter-gather queries. All zero when the pool is disabled
/// (`parallel_queries = false` or a single worker makes no sense).
#[derive(Default)]
pub struct PoolMetrics {
    /// Configured worker threads (gauge; 0 = pool disabled, queries run on
    /// the calling thread).
    pub workers: AtomicU64,
    /// Per-shard tasks currently waiting in the injector queue (gauge).
    pub queued_tasks: AtomicU64,
    /// Workers currently executing a task (gauge).
    pub busy_workers: AtomicU64,
    /// Tasks executed by pool workers since start.
    pub tasks: AtomicU64,
    /// Tasks executed inline by the submitting thread (it participates
    /// instead of idling while its query's tasks are queued).
    pub inline_tasks: AtomicU64,
    /// Tasks a worker claimed outside its shard affinity.
    pub steals: AtomicU64,
    /// Wall-clock time of one per-shard task (claim to completion).
    pub task_latency: LatencyHistogram,
}

/// Cost-based planner observability (`dc-plan`): how often each backend
/// wins and how well the page-read estimates track measured cost. Updated
/// by the planned-query path ([`crate::ShardedDcTree::execute`] /
/// `explain`).
#[derive(Default)]
pub struct PlanMetrics {
    /// Statements routed through the planner.
    pub plans: AtomicU64,
    /// `EXPLAIN` statements among them.
    pub explains: AtomicU64,
    /// Queries whose (dominant) chosen backend was DC-tree descent.
    pub chose_descend: AtomicU64,
    /// … the WAH bitmap index.
    pub chose_bitmap: AtomicU64,
    /// … a materialized roll-up view.
    pub chose_mview: AtomicU64,
    /// … the sequential scan.
    pub chose_scan: AtomicU64,
    /// Planned queries whose measured page reads missed the estimate by
    /// more than 2× in either direction.
    pub mispredictions: AtomicU64,
    /// Total estimated page reads over planned (non-delegated) queries.
    pub est_pages: AtomicU64,
    /// Total measured page reads over the same queries.
    pub actual_pages: AtomicU64,
}

impl PlanMetrics {
    /// The `chose_*` counter for `backend`.
    pub fn chosen(&self, backend: Backend) -> &AtomicU64 {
        match backend {
            Backend::Descend => &self.chose_descend,
            Backend::Bitmap => &self.chose_bitmap,
            Backend::Mview => &self.chose_mview,
            Backend::Scan => &self.chose_scan,
        }
    }
}

/// Buffer-pool observability (`dc-oocore`): aggregated over every shard's
/// pool when the engine runs disk-backed ([`StorageMode::Disk`]
/// (crate::StorageMode::Disk)). All zero — and the STATS section absent —
/// in RAM-resident mode. Refreshed from the pools by
/// [`crate::ShardedDcTree::stats_json`] and at each snapshot publish.
#[derive(Default)]
pub struct BufferPoolMetrics {
    /// `1` once the engine runs disk-backed (gates the STATS section).
    pub enabled: AtomicU64,
    /// Page touches served from a resident frame.
    pub hits: AtomicU64,
    /// Page touches that went to disk.
    pub misses: AtomicU64,
    /// Frames dropped to make room.
    pub evictions: AtomicU64,
    /// Dirty frames written back (on eviction or flush).
    pub writebacks: AtomicU64,
    /// Frames currently resident, summed over shards (gauge).
    pub resident: AtomicU64,
    /// Total frame budget, summed over shards (gauge).
    pub capacity: AtomicU64,
}

/// A log₂-bucketed histogram over dimensionless counts (pipeline depths),
/// reusing [`LatencyHistogram`]'s bucket machinery with 1 "nano" = 1 unit.
#[derive(Default)]
pub struct DepthHistogram {
    inner: LatencyHistogram,
}

impl DepthHistogram {
    /// Records one observation (clamped up to 1 so depth 0 still lands in
    /// the first bucket).
    pub fn record(&self, depth: u64) {
        self.inner.record(Duration::from_nanos(depth.max(1)));
    }

    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    pub fn mean(&self) -> f64 {
        self.inner.mean().as_nanos() as f64
    }

    /// Upper bucket bound at quantile `q`, as a plain count.
    pub fn quantile(&self, q: f64) -> u64 {
        self.inner.quantile(q).as_nanos().min(u128::from(u64::MAX)) as u64
    }
}

/// Per-tenant admission counters (see [`NetMetrics::tenant`]).
#[derive(Default)]
pub struct TenantNetMetrics {
    /// Requests this tenant got past admission control.
    pub admitted: AtomicU64,
    /// Requests answered `BUSY` for this tenant.
    pub denied: AtomicU64,
}

/// Network front-end observability: connection and byte counters, the
/// pipelining depth distribution, load-shedding counts, and per-tenant
/// admit/deny tallies. All zero — and the STATS section absent — until a
/// front-end (the threaded server or the reactor) registers itself by
/// setting `enabled`.
#[derive(Default)]
pub struct NetMetrics {
    /// `1` once a network front-end serves this engine (gates the STATS
    /// section).
    pub enabled: AtomicU64,
    /// Currently open connections (gauge).
    pub active_connections: AtomicU64,
    /// Connections accepted since start.
    pub accepted_total: AtomicU64,
    /// Requests decoded off the wire since start (sheds included).
    pub requests_total: AtomicU64,
    /// Requests answered `BUSY` by admission control / backpressure.
    pub shed_total: AtomicU64,
    /// Payload bytes read off sockets.
    pub bytes_in: AtomicU64,
    /// Payload bytes written to sockets.
    pub bytes_out: AtomicU64,
    /// In-flight requests on the connection at each admission (1 = no
    /// pipelining; the reactor records this per decoded request).
    pub pipeline_depth: DepthHistogram,
    /// Admit/deny counters per declared tenant (`HELLO <tenant>`; the
    /// unnamed default tenant is `"default"`).
    tenants: Mutex<BTreeMap<String, Arc<TenantNetMetrics>>>,
}

impl NetMetrics {
    /// The counters for `name`, created on first sight. Front-ends cache
    /// the `Arc` per connection, so the map lock is off the per-request
    /// path.
    pub fn tenant(&self, name: &str) -> Arc<TenantNetMetrics> {
        let mut tenants = self.tenants.lock();
        if let Some(t) = tenants.get(name) {
            return Arc::clone(t);
        }
        let t = Arc::new(TenantNetMetrics::default());
        tenants.insert(name.to_string(), Arc::clone(&t));
        t
    }

    /// Snapshot of every tenant's counters, in name order.
    pub fn tenant_counts(&self) -> Vec<(String, u64, u64)> {
        self.tenants
            .lock()
            .iter()
            .map(|(name, t)| {
                (
                    name.clone(),
                    t.admitted.load(Relaxed),
                    t.denied.load(Relaxed),
                )
            })
            .collect()
    }
}

/// Replication observability: the engine's role, the LSN frontier it has
/// applied, and the log-fetch traffic it has served (primary) or pulled
/// (follower). All zero — and the STATS section absent — when the engine
/// has no WAL and no replication role (the section is gated like
/// `buffer_pool`'s).
#[derive(Default)]
pub struct ReplicationMetrics {
    /// `1` once the engine participates in replication (gates the STATS
    /// section).
    pub enabled: AtomicU64,
    /// `0` = primary, `1` = follower (gauge).
    pub follower: AtomicU64,
    /// Highest LSN applied to the engine: logged on a primary, replicated
    /// on a follower (gauge; what `WAIT_LSN` waits on).
    pub applied_lsn: AtomicU64,
    /// `FETCH_SEGMENTS` requests served (primary side).
    pub segment_fetches: AtomicU64,
    /// Segments shipped across those fetches.
    pub segments_shipped: AtomicU64,
    /// Segment bytes shipped (headers included).
    pub bytes_shipped: AtomicU64,
    /// `FETCH_CHECKPOINT` requests served.
    pub checkpoint_fetches: AtomicU64,
    /// Checkpoint redirects returned (a fetch from below the checkpoint).
    pub checkpoint_redirects: AtomicU64,
    /// `WAIT_LSN`/`MIN_LSN` waits that were satisfied.
    pub waits: AtomicU64,
    /// Waits that timed out before the LSN was applied.
    pub wait_timeouts: AtomicU64,
}

/// Durability observability: WAL writer counters, checkpoint counters, and
/// what the opening recovery pass found. All zero when no WAL is
/// configured.
#[derive(Default)]
pub struct DurabilityMetrics {
    /// Entries appended to the WAL since start.
    pub wal_appends: AtomicU64,
    /// Successful WAL fsyncs since start.
    pub wal_syncs: AtomicU64,
    /// Segment rotations since start.
    pub wal_rotations: AtomicU64,
    /// Sequence number of the segment currently appended to.
    pub wal_segment: AtomicU64,
    /// LSN of the last appended entry.
    pub wal_last_lsn: AtomicU64,
    /// Highest LSN known durable (`<= wal_last_lsn`).
    pub wal_synced_lsn: AtomicU64,
    /// Checkpoints taken since start.
    pub checkpoints: AtomicU64,
    /// LSN of the newest committed checkpoint.
    pub checkpoint_last_lsn: AtomicU64,
    /// Checkpoint LSN recovery started from at engine construction.
    pub recovery_checkpoint_lsn: AtomicU64,
    /// WAL tail entries replayed at engine construction.
    pub recovery_replayed_entries: AtomicU64,
    /// Bytes discarded (torn tails, unreadable segments) at construction.
    pub recovery_truncated_bytes: AtomicU64,
}

/// Engine-wide metrics: totals, rates, latency histograms, per-shard
/// gauges.
pub struct EngineMetrics {
    start: Instant,
    /// Records accepted by `insert_raw` since start.
    pub inserts: AtomicU64,
    /// Deletes accepted since start.
    pub deletes: AtomicU64,
    /// Queries answered since start.
    pub queries: AtomicU64,
    /// Shard snapshots visited by queries (`shard_visits / queries` is the
    /// average fan-out; below `num_shards` means partition pruning works).
    pub shard_visits: AtomicU64,
    /// Time from a query's arrival to its merged answer.
    pub query_latency: LatencyHistogram,
    /// Time spent applying one record inside a writer thread.
    pub apply_latency: LatencyHistogram,
    /// `INSERT_BATCH` groups accepted by `insert_batch_raw` since start.
    pub insert_batches: AtomicU64,
    /// Records that arrived inside those groups (`insert_batch_records /
    /// insert_batches` is the mean batch size).
    pub insert_batch_records: AtomicU64,
    /// Time from a writer thread picking up one batch command to the whole
    /// group being applied to its shard tree.
    pub batch_apply_latency: LatencyHistogram,
    /// Aggregate-cache counters (all zero when the cache is disabled).
    pub cache: CacheMetrics,
    /// Query-pool counters (all zero when the pool is disabled).
    pub pool: PoolMetrics,
    /// Cost-based planner counters (zero until a SELECT/EXPLAIN arrives).
    pub plan: PlanMetrics,
    /// WAL/checkpoint/recovery counters (all zero when no WAL is
    /// configured).
    pub durability: DurabilityMetrics,
    /// Buffer-pool counters (all zero in RAM-resident mode).
    pub buffer_pool: BufferPoolMetrics,
    /// Replication counters (all zero outside a replication setup).
    pub replication: ReplicationMetrics,
    /// Network front-end counters (all zero until a server registers).
    pub net: NetMetrics,
    /// One gauge block per shard.
    pub shards: Vec<ShardMetrics>,
}

impl EngineMetrics {
    pub fn new(num_shards: usize) -> Self {
        EngineMetrics {
            start: Instant::now(),
            inserts: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            shard_visits: AtomicU64::new(0),
            query_latency: LatencyHistogram::new(),
            apply_latency: LatencyHistogram::new(),
            insert_batches: AtomicU64::new(0),
            insert_batch_records: AtomicU64::new(0),
            batch_apply_latency: LatencyHistogram::new(),
            cache: CacheMetrics::default(),
            pool: PoolMetrics::default(),
            plan: PlanMetrics::default(),
            durability: DurabilityMetrics::default(),
            buffer_pool: BufferPoolMetrics::default(),
            replication: ReplicationMetrics::default(),
            net: NetMetrics::default(),
            shards: (0..num_shards).map(|_| ShardMetrics::default()).collect(),
        }
    }

    /// Nanoseconds since engine start (the clock snapshot gauges use).
    pub fn now_nanos(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }

    /// Engine uptime.
    pub fn uptime(&self) -> Duration {
        self.start.elapsed()
    }

    /// Age of shard `i`'s published snapshot (time since last publish).
    pub fn snapshot_age(&self, shard: usize) -> Duration {
        let published = self.shards[shard].snapshot_published_at.load(Relaxed);
        if published == 0 {
            return self.uptime();
        }
        Duration::from_nanos(self.now_nanos().saturating_sub(published))
    }

    /// Renders the metrics as one JSON object (the `STATS` payload).
    pub fn to_json(&self) -> String {
        let uptime = self.uptime().as_secs_f64().max(1e-9);
        let inserts = self.inserts.load(Relaxed);
        let deletes = self.deletes.load(Relaxed);
        let queries = self.queries.load(Relaxed);
        let mut s = String::with_capacity(512);
        s.push('{');
        push_kv(&mut s, "uptime_secs", &format!("{uptime:.3}"));
        push_kv(&mut s, "inserts_total", &inserts.to_string());
        push_kv(&mut s, "deletes_total", &deletes.to_string());
        push_kv(&mut s, "queries_total", &queries.to_string());
        push_kv(
            &mut s,
            "inserts_per_sec",
            &format!("{:.1}", inserts as f64 / uptime),
        );
        push_kv(
            &mut s,
            "queries_per_sec",
            &format!("{:.1}", queries as f64 / uptime),
        );
        push_kv(
            &mut s,
            "avg_shards_per_query",
            &format!(
                "{:.2}",
                self.shard_visits.load(Relaxed) as f64 / (queries.max(1)) as f64
            ),
        );
        push_kv(
            &mut s,
            "query_latency_us",
            &latency_json(&self.query_latency),
        );
        push_kv(
            &mut s,
            "apply_latency_us",
            &latency_json(&self.apply_latency),
        );
        push_kv(&mut s, "ingest", &self.ingest_json());
        push_kv(&mut s, "cache", &self.cache_json());
        push_kv(&mut s, "pool", &self.pool_json());
        push_kv(&mut s, "plan", &self.plan_json());
        push_kv(&mut s, "durability", &self.durability_json());
        if self.buffer_pool.enabled.load(Relaxed) != 0 {
            push_kv(&mut s, "buffer_pool", &self.buffer_pool_json());
        }
        if self.replication.enabled.load(Relaxed) != 0 {
            push_kv(&mut s, "replication", &self.replication_json());
        }
        if self.net.enabled.load(Relaxed) != 0 {
            push_kv(&mut s, "net", &self.net_json());
        }
        s.push_str("\"shards\":[");
        for (i, sh) in self.shards.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            push_kv(
                &mut s,
                "queue_depth",
                &sh.queue_depth.load(Relaxed).to_string(),
            );
            push_kv(&mut s, "applied", &sh.applied.load(Relaxed).to_string());
            push_kv(
                &mut s,
                "snapshot_records",
                &sh.snapshot_records.load(Relaxed).to_string(),
            );
            push_kv(
                &mut s,
                "snapshot_age_ms",
                &format!("{:.1}", self.snapshot_age(i).as_secs_f64() * 1e3),
            );
            push_kv(&mut s, "io_reads", &sh.io_reads.load(Relaxed).to_string());
            s.push_str("\"io_writes\":");
            s.push_str(&sh.io_writes.load(Relaxed).to_string());
            s.push('}');
        }
        s.push_str("]}");
        s
    }

    /// The `"ingest"` sub-object of the STATS payload: batched-write
    /// gauges (all zero while only single-record INSERTs arrive).
    fn ingest_json(&self) -> String {
        let batches = self.insert_batches.load(Relaxed);
        let batch_records = self.insert_batch_records.load(Relaxed);
        let mut s = String::with_capacity(160);
        s.push('{');
        push_kv(&mut s, "batches", &batches.to_string());
        push_kv(&mut s, "batch_records", &batch_records.to_string());
        push_kv(
            &mut s,
            "mean_batch_size",
            &format!("{:.1}", batch_records as f64 / batches.max(1) as f64),
        );
        s.push_str("\"batch_apply_latency_us\":");
        s.push_str(&latency_json(&self.batch_apply_latency));
        s.push('}');
        s
    }

    /// The `"cache"` sub-object of the STATS payload.
    fn cache_json(&self) -> String {
        let c = &self.cache;
        let hits = c.hits.load(Relaxed);
        let semantic = c.semantic_hits.load(Relaxed);
        let misses = c.misses.load(Relaxed);
        let lookups = hits + semantic + misses;
        let mut s = String::with_capacity(256);
        s.push('{');
        push_kv(&mut s, "hits", &hits.to_string());
        push_kv(&mut s, "semantic_hits", &semantic.to_string());
        push_kv(&mut s, "misses", &misses.to_string());
        push_kv(
            &mut s,
            "hit_rate",
            &format!("{:.3}", (hits + semantic) as f64 / lookups.max(1) as f64),
        );
        push_kv(&mut s, "patches", &c.patches.load(Relaxed).to_string());
        push_kv(
            &mut s,
            "invalidations",
            &c.invalidations.load(Relaxed).to_string(),
        );
        push_kv(
            &mut s,
            "insertions",
            &c.insertions.load(Relaxed).to_string(),
        );
        push_kv(&mut s, "evictions", &c.evictions.load(Relaxed).to_string());
        push_kv(&mut s, "entries", &c.entries.load(Relaxed).to_string());
        s.push_str("\"lookup_latency_us\":");
        s.push_str(&latency_json(&c.lookup_latency));
        s.push('}');
        s
    }

    /// The `"pool"` sub-object of the STATS payload.
    fn pool_json(&self) -> String {
        let p = &self.pool;
        let mut s = String::with_capacity(192);
        s.push('{');
        push_kv(&mut s, "workers", &p.workers.load(Relaxed).to_string());
        push_kv(
            &mut s,
            "queued_tasks",
            &p.queued_tasks.load(Relaxed).to_string(),
        );
        push_kv(
            &mut s,
            "busy_workers",
            &p.busy_workers.load(Relaxed).to_string(),
        );
        push_kv(&mut s, "tasks", &p.tasks.load(Relaxed).to_string());
        push_kv(
            &mut s,
            "inline_tasks",
            &p.inline_tasks.load(Relaxed).to_string(),
        );
        push_kv(&mut s, "steals", &p.steals.load(Relaxed).to_string());
        s.push_str("\"task_latency_us\":");
        s.push_str(&latency_json(&p.task_latency));
        s.push('}');
        s
    }

    /// The `"plan"` sub-object of the STATS payload.
    fn plan_json(&self) -> String {
        let p = &self.plan;
        let mut s = String::with_capacity(224);
        s.push('{');
        push_kv(&mut s, "plans", &p.plans.load(Relaxed).to_string());
        push_kv(&mut s, "explains", &p.explains.load(Relaxed).to_string());
        let mut chose = String::with_capacity(96);
        chose.push('{');
        for (i, b) in Backend::ALL.iter().enumerate() {
            if i > 0 {
                chose.push(',');
            }
            chose.push('"');
            chose.push_str(b.name());
            chose.push_str("\":");
            chose.push_str(&p.chosen(*b).load(Relaxed).to_string());
        }
        chose.push('}');
        push_kv(&mut s, "chose", &chose);
        push_kv(
            &mut s,
            "mispredictions",
            &p.mispredictions.load(Relaxed).to_string(),
        );
        push_kv(&mut s, "est_pages", &p.est_pages.load(Relaxed).to_string());
        s.push_str("\"actual_pages\":");
        s.push_str(&p.actual_pages.load(Relaxed).to_string());
        s.push('}');
        s
    }

    /// The `"buffer_pool"` sub-object of the STATS payload (disk mode only).
    fn buffer_pool_json(&self) -> String {
        let b = &self.buffer_pool;
        let hits = b.hits.load(Relaxed);
        let misses = b.misses.load(Relaxed);
        let mut s = String::with_capacity(192);
        s.push('{');
        push_kv(&mut s, "pool_hits", &hits.to_string());
        push_kv(&mut s, "pool_misses", &misses.to_string());
        push_kv(
            &mut s,
            "pool_hit_rate",
            &format!("{:.3}", hits as f64 / (hits + misses).max(1) as f64),
        );
        push_kv(
            &mut s,
            "pool_evictions",
            &b.evictions.load(Relaxed).to_string(),
        );
        push_kv(
            &mut s,
            "pool_writebacks",
            &b.writebacks.load(Relaxed).to_string(),
        );
        push_kv(
            &mut s,
            "pool_resident",
            &b.resident.load(Relaxed).to_string(),
        );
        s.push_str("\"pool_capacity\":");
        s.push_str(&b.capacity.load(Relaxed).to_string());
        s.push('}');
        s
    }

    /// The `"replication"` sub-object of the STATS payload (replication
    /// setups only).
    fn replication_json(&self) -> String {
        let r = &self.replication;
        let mut s = String::with_capacity(256);
        s.push('{');
        push_kv(
            &mut s,
            "role",
            if r.follower.load(Relaxed) != 0 {
                "\"follower\""
            } else {
                "\"primary\""
            },
        );
        push_kv(
            &mut s,
            "applied_lsn",
            &r.applied_lsn.load(Relaxed).to_string(),
        );
        push_kv(
            &mut s,
            "segment_fetches",
            &r.segment_fetches.load(Relaxed).to_string(),
        );
        push_kv(
            &mut s,
            "segments_shipped",
            &r.segments_shipped.load(Relaxed).to_string(),
        );
        push_kv(
            &mut s,
            "bytes_shipped",
            &r.bytes_shipped.load(Relaxed).to_string(),
        );
        push_kv(
            &mut s,
            "checkpoint_fetches",
            &r.checkpoint_fetches.load(Relaxed).to_string(),
        );
        push_kv(
            &mut s,
            "checkpoint_redirects",
            &r.checkpoint_redirects.load(Relaxed).to_string(),
        );
        push_kv(&mut s, "waits", &r.waits.load(Relaxed).to_string());
        s.push_str("\"wait_timeouts\":");
        s.push_str(&r.wait_timeouts.load(Relaxed).to_string());
        s.push('}');
        s
    }

    /// The `"net"` sub-object of the STATS payload (served engines only).
    fn net_json(&self) -> String {
        let n = &self.net;
        let mut s = String::with_capacity(320);
        s.push('{');
        push_kv(
            &mut s,
            "active_connections",
            &n.active_connections.load(Relaxed).to_string(),
        );
        push_kv(
            &mut s,
            "accepted_total",
            &n.accepted_total.load(Relaxed).to_string(),
        );
        push_kv(
            &mut s,
            "requests_total",
            &n.requests_total.load(Relaxed).to_string(),
        );
        push_kv(
            &mut s,
            "shed_total",
            &n.shed_total.load(Relaxed).to_string(),
        );
        push_kv(&mut s, "bytes_in", &n.bytes_in.load(Relaxed).to_string());
        push_kv(&mut s, "bytes_out", &n.bytes_out.load(Relaxed).to_string());
        push_kv(
            &mut s,
            "pipeline_depth",
            &format!(
                "{{\"count\":{},\"mean\":{:.1},\"p50\":{},\"p99\":{}}}",
                n.pipeline_depth.count(),
                n.pipeline_depth.mean(),
                n.pipeline_depth.quantile(0.50),
                n.pipeline_depth.quantile(0.99),
            ),
        );
        let mut tenants = String::with_capacity(96);
        tenants.push('{');
        for (i, (name, admitted, denied)) in self.net.tenant_counts().iter().enumerate() {
            if i > 0 {
                tenants.push(',');
            }
            tenants.push('"');
            tenants.push_str(name);
            tenants.push_str("\":{\"admitted\":");
            tenants.push_str(&admitted.to_string());
            tenants.push_str(",\"denied\":");
            tenants.push_str(&denied.to_string());
            tenants.push('}');
        }
        tenants.push('}');
        s.push_str("\"tenants\":");
        s.push_str(&tenants);
        s.push('}');
        s
    }

    /// The `"durability"` sub-object of the STATS payload.
    fn durability_json(&self) -> String {
        let d = &self.durability;
        let mut s = String::with_capacity(256);
        s.push('{');
        push_kv(
            &mut s,
            "wal_appends",
            &d.wal_appends.load(Relaxed).to_string(),
        );
        push_kv(&mut s, "wal_syncs", &d.wal_syncs.load(Relaxed).to_string());
        push_kv(
            &mut s,
            "wal_rotations",
            &d.wal_rotations.load(Relaxed).to_string(),
        );
        push_kv(
            &mut s,
            "wal_segment",
            &d.wal_segment.load(Relaxed).to_string(),
        );
        push_kv(
            &mut s,
            "wal_last_lsn",
            &d.wal_last_lsn.load(Relaxed).to_string(),
        );
        push_kv(
            &mut s,
            "wal_synced_lsn",
            &d.wal_synced_lsn.load(Relaxed).to_string(),
        );
        push_kv(
            &mut s,
            "checkpoints",
            &d.checkpoints.load(Relaxed).to_string(),
        );
        push_kv(
            &mut s,
            "checkpoint_last_lsn",
            &d.checkpoint_last_lsn.load(Relaxed).to_string(),
        );
        push_kv(
            &mut s,
            "recovery_checkpoint_lsn",
            &d.recovery_checkpoint_lsn.load(Relaxed).to_string(),
        );
        push_kv(
            &mut s,
            "recovery_replayed_entries",
            &d.recovery_replayed_entries.load(Relaxed).to_string(),
        );
        s.push_str("\"recovery_truncated_bytes\":");
        s.push_str(&d.recovery_truncated_bytes.load(Relaxed).to_string());
        s.push('}');
        s
    }
}

fn latency_json(h: &LatencyHistogram) -> String {
    format!(
        "{{\"count\":{},\"mean\":{:.1},\"p50\":{:.1},\"p99\":{:.1}}}",
        h.count(),
        h.mean().as_secs_f64() * 1e6,
        h.quantile(0.50).as_secs_f64() * 1e6,
        h.quantile(0.99).as_secs_f64() * 1e6,
    )
}

/// Appends `"key":value,` — `value` must already be valid JSON.
fn push_kv(s: &mut String, key: &str, value: &str) {
    s.push('"');
    s.push_str(key);
    s.push_str("\":");
    s.push_str(value);
    s.push(',');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_bracket_samples() {
        let h = LatencyHistogram::new();
        for micros in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 1000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 10);
        let p50 = h.quantile(0.5);
        assert!(p50 >= Duration::from_micros(30) && p50 <= Duration::from_micros(128));
        let p99 = h.quantile(0.99);
        assert!(p99 >= Duration::from_micros(1000));
        assert!(h.quantile(1.0) >= p50);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.99), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn stats_json_includes_cache_block() {
        let m = EngineMetrics::new(1);
        m.cache.hits.fetch_add(3, Relaxed);
        m.cache.misses.fetch_add(1, Relaxed);
        m.cache.patches.fetch_add(7, Relaxed);
        let json = m.to_json();
        assert!(json.contains("\"cache\":{\"hits\":3"));
        assert!(json.contains("\"hit_rate\":0.750"));
        assert!(json.contains("\"patches\":7"));
        assert!(json.contains("\"lookup_latency_us\""));
    }

    #[test]
    fn stats_json_includes_pool_block() {
        let m = EngineMetrics::new(1);
        m.pool.workers.store(4, Relaxed);
        m.pool.tasks.store(12, Relaxed);
        m.pool.steals.store(3, Relaxed);
        m.pool.task_latency.record(Duration::from_micros(42));
        let json = m.to_json();
        assert!(json.contains("\"pool\":{\"workers\":4"));
        assert!(json.contains("\"tasks\":12"));
        assert!(json.contains("\"steals\":3"));
        assert!(json.contains("\"task_latency_us\""));
    }

    #[test]
    fn stats_json_includes_plan_block() {
        let m = EngineMetrics::new(1);
        m.plan.plans.store(9, Relaxed);
        m.plan.chosen(Backend::Mview).store(4, Relaxed);
        m.plan.mispredictions.store(1, Relaxed);
        let json = m.to_json();
        assert!(json.contains("\"plan\":{\"plans\":9"));
        assert!(json.contains("\"chose\":{\"descend\":0,\"bitmap\":0,\"mview\":4,\"scan\":0}"));
        assert!(json.contains("\"mispredictions\":1"));
        assert!(json.contains("\"actual_pages\":0"));
    }

    #[test]
    fn stats_json_includes_ingest_block() {
        let m = EngineMetrics::new(1);
        m.insert_batches.store(4, Relaxed);
        m.insert_batch_records.store(10, Relaxed);
        m.batch_apply_latency.record(Duration::from_micros(120));
        let json = m.to_json();
        assert!(json.contains("\"ingest\":{\"batches\":4"));
        assert!(json.contains("\"batch_records\":10"));
        assert!(json.contains("\"mean_batch_size\":2.5"));
        assert!(json.contains("\"batch_apply_latency_us\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn stats_json_includes_durability_block() {
        let m = EngineMetrics::new(1);
        m.durability.wal_appends.store(11, Relaxed);
        m.durability.checkpoints.store(2, Relaxed);
        m.durability.recovery_replayed_entries.store(4, Relaxed);
        let json = m.to_json();
        assert!(json.contains("\"durability\":{\"wal_appends\":11"));
        assert!(json.contains("\"checkpoints\":2"));
        assert!(json.contains("\"recovery_replayed_entries\":4"));
        assert!(json.contains("\"recovery_truncated_bytes\":0"));
    }

    #[test]
    fn buffer_pool_block_is_gated_on_disk_mode() {
        let m = EngineMetrics::new(1);
        // RAM-resident engines never show the section (client.rs tolerates
        // its absence; this keeps resident STATS payloads unchanged).
        assert!(!m.to_json().contains("\"buffer_pool\""));
        m.buffer_pool.enabled.store(1, Relaxed);
        m.buffer_pool.hits.store(30, Relaxed);
        m.buffer_pool.misses.store(10, Relaxed);
        m.buffer_pool.evictions.store(4, Relaxed);
        m.buffer_pool.capacity.store(64, Relaxed);
        let json = m.to_json();
        assert!(json.contains("\"buffer_pool\":{\"pool_hits\":30"));
        assert!(json.contains("\"pool_hit_rate\":0.750"));
        assert!(json.contains("\"pool_evictions\":4"));
        assert!(json.contains("\"pool_capacity\":64"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn replication_block_is_gated_on_participation() {
        let m = EngineMetrics::new(1);
        // Engines outside a replication setup keep their STATS payload
        // unchanged (client.rs tolerates the section's absence).
        assert!(!m.to_json().contains("\"replication\""));
        m.replication.enabled.store(1, Relaxed);
        m.replication.follower.store(1, Relaxed);
        m.replication.applied_lsn.store(42, Relaxed);
        m.replication.segment_fetches.store(3, Relaxed);
        m.replication.wait_timeouts.store(1, Relaxed);
        let json = m.to_json();
        assert!(json.contains("\"replication\":{\"role\":\"follower\""));
        assert!(json.contains("\"applied_lsn\":42"));
        assert!(json.contains("\"segment_fetches\":3"));
        assert!(json.contains("\"wait_timeouts\":1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn net_block_is_gated_on_a_front_end() {
        let m = EngineMetrics::new(1);
        // Engines without a network front-end keep their STATS payload
        // unchanged (client.rs tolerates the section's absence).
        assert!(!m.to_json().contains("\"net\""));
        m.net.enabled.store(1, Relaxed);
        m.net.accepted_total.store(7, Relaxed);
        m.net.active_connections.store(2, Relaxed);
        m.net.shed_total.store(3, Relaxed);
        m.net.pipeline_depth.record(1);
        m.net.pipeline_depth.record(32);
        let t = m.net.tenant("analytics");
        t.admitted.fetch_add(5, Relaxed);
        t.denied.fetch_add(3, Relaxed);
        // Same name returns the same counters; a new name appears too.
        m.net.tenant("analytics").admitted.fetch_add(1, Relaxed);
        m.net.tenant("default");
        let json = m.to_json();
        assert!(json.contains("\"net\":{\"active_connections\":2"));
        assert!(json.contains("\"accepted_total\":7"));
        assert!(json.contains("\"shed_total\":3"));
        assert!(json.contains("\"pipeline_depth\":{\"count\":2"));
        assert!(json.contains("\"analytics\":{\"admitted\":6,\"denied\":3}"));
        assert!(json.contains("\"default\":{\"admitted\":0,\"denied\":0}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn depth_histogram_reports_counts() {
        let h = DepthHistogram::default();
        for d in [0u64, 1, 1, 4, 16] {
            h.record(d);
        }
        assert_eq!(h.count(), 5);
        assert!(h.mean() >= 4.0 && h.mean() <= 5.0, "{}", h.mean());
        assert!(h.quantile(0.99) >= 16);
    }

    #[test]
    fn stats_json_is_well_formed_enough() {
        let m = EngineMetrics::new(2);
        m.inserts.fetch_add(5, Relaxed);
        m.query_latency.record(Duration::from_micros(100));
        let json = m.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"inserts_total\":5"));
        assert!(json.contains("\"shards\":[{"));
        assert_eq!(json.matches("\"queue_depth\"").count(), 2);
        // Balanced braces/brackets (no JSON parser in the workspace).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
