//! The newline-delimited wire protocol: dc-ql query lines plus a few
//! engine verbs, one request line → one response line.
//!
//! ```text
//! PING                                   → OK PONG
//! STATS                                  → OK {"uptime_secs":…}
//! FLUSH                                  → OK FLUSHED
//! CHECKPOINT                             → OK CHECKPOINTED <lsn>
//! SHUTDOWN                               → OK BYE            (server stops)
//! INSERT <measure> <p>/<p>|<p>/<p>|…     → OK INSERTED       (async; FLUSH for visibility)
//! INSERT_BATCH <m> <paths>;<m> <paths>;… → OK INSERTED <n>   (one WAL group, one fsync decision)
//! DELETE <measure> <p>/<p>|<p>/<p>|…     → OK DELETED
//! REPL_STATUS                            → OK ROLE=primary APPLIED=17 SYNCED=17 SEGMENT=2
//! WAIT_LSN <lsn> [timeout_ms]            → OK APPLIED <lsn>  (read-your-LSN barrier)
//! MIN_LSN <lsn> <request…>               → waits, then handles <request…>
//! FETCH_SEGMENTS <from_lsn>              → OK SEGMENTS <n> <seq>:<first_lsn>:<hex> …
//!                                        | OK NEED_CHECKPOINT <lsn>
//! FETCH_CHECKPOINT                       → OK CHECKPOINT <lsn> <start_seq> <shards> <hex>…
//! SUM WHERE Customer.Region = 'EUROPE'   → OK 1234.00
//! AVG WHERE … GROUP BY Time.Year TOP 3   → OK 1996=12.50,1995=11.00,…
//! SELECT SUM, COUNT WHERE …              → OK sum=1234.00 count=17.00
//! SELECT SUM, MAX GROUP BY Time.Year     → OK 1996=900.00|80.00,1995=…
//! EXPLAIN SUM GROUP BY Customer.Region   → OK backend=mview est_pages=… actual_pages=… shards=[…]
//! ```
//!
//! `INSERT`/`DELETE` paths are one `/`-separated top→leaf chain per
//! dimension, dimensions separated by `|` (names must not contain either
//! character). `INSERT_BATCH` carries many records on one line, separated
//! by `;` (also reserved in names), each record in the same
//! `<measure> <paths>` shape; the whole batch is appended to the WAL as a
//! single group and handed to the shard writers in one command.
//!
//! Anything else is parsed as a dc-ql statement against the
//! engine's live schema and routed through the cost-based planner
//! (`dc-plan`); `EXPLAIN <query>` executes the query and reports the
//! chosen backend, estimated vs. measured page reads, and the per-shard
//! plan fragments on one line. Multi-aggregate `SELECT` responses label
//! each value with its lowercase op name (scalar) or pipe-join the values
//! in SELECT-list order (grouped). Errors come back as `ERR <message>`.

use std::time::Duration;

use dc_common::AggregateOp;
use dc_durable::FetchOutcome;
use dc_ql::{parse_statement, resolve, ParsedStatement};

use crate::engine::{EngineRole, ShardedDcTree};
use dc_plan::QueryOutput;

/// Default `WAIT_LSN` / `MIN_LSN` patience before `ERR`ing out.
const DEFAULT_WAIT_MS: u64 = 10_000;

/// What the connection loop should do after answering.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Control {
    /// Keep serving this connection.
    Continue,
    /// Stop the whole server (a `SHUTDOWN` request).
    StopServer,
}

/// Handles one request line; returns the response line (without the
/// trailing newline) and the control action.
pub fn handle_line(engine: &ShardedDcTree, line: &str) -> (String, Control) {
    let line = line.trim();
    if line.is_empty() {
        return ("ERR empty request".into(), Control::Continue);
    }
    let verb = line.split_whitespace().next().unwrap_or("");
    match verb.to_ascii_uppercase().as_str() {
        "PING" => ("OK PONG".into(), Control::Continue),
        "STATS" => (format!("OK {}", engine.stats_json()), Control::Continue),
        "FLUSH" => {
            engine.flush();
            ("OK FLUSHED".into(), Control::Continue)
        }
        "CHECKPOINT" => (
            match engine.checkpoint() {
                Ok(lsn) => format!("OK CHECKPOINTED {lsn}"),
                Err(e) => format!("ERR {e}"),
            },
            Control::Continue,
        ),
        "SHUTDOWN" => ("OK BYE".into(), Control::StopServer),
        "INSERT" | "DELETE" => (handle_mutation(engine, line), Control::Continue),
        "INSERT_BATCH" => (handle_insert_batch(engine, line), Control::Continue),
        "REPL_STATUS" => (handle_repl_status(engine), Control::Continue),
        "WAIT_LSN" => (handle_wait_lsn(engine, line), Control::Continue),
        "MIN_LSN" => handle_min_lsn(engine, line),
        "FETCH_SEGMENTS" => (handle_fetch_segments(engine, line), Control::Continue),
        "FETCH_CHECKPOINT" => (handle_fetch_checkpoint(engine), Control::Continue),
        _ => (handle_query(engine, line), Control::Continue),
    }
}

// ----------------------------------------------------------------------
// Replication verbs
// ----------------------------------------------------------------------

fn handle_repl_status(engine: &ShardedDcTree) -> String {
    let role = match engine.role() {
        EngineRole::Primary => "primary",
        EngineRole::Follower => "follower",
    };
    use std::sync::atomic::Ordering::Relaxed;
    let d = &engine.metrics().durability;
    format!(
        "OK ROLE={role} APPLIED={} SYNCED={} SEGMENT={}",
        engine.applied_lsn(),
        d.wal_synced_lsn.load(Relaxed),
        d.wal_segment.load(Relaxed),
    )
}

/// `WAIT_LSN <lsn> [timeout_ms]`.
fn handle_wait_lsn(engine: &ShardedDcTree, line: &str) -> String {
    let mut parts = line.split_whitespace().skip(1);
    let Some(Ok(lsn)) = parts.next().map(str::parse::<u64>) else {
        return "ERR WAIT_LSN needs a numeric lsn".into();
    };
    let timeout_ms = match parts.next() {
        Some(t) => match t.parse::<u64>() {
            Ok(ms) => ms,
            Err(_) => return "ERR WAIT_LSN timeout must be milliseconds".into(),
        },
        None => DEFAULT_WAIT_MS,
    };
    match engine.wait_lsn(lsn, Duration::from_millis(timeout_ms)) {
        Ok(applied) => format!("OK APPLIED {applied}"),
        Err(e) => format!("ERR {e}"),
    }
}

/// `MIN_LSN <lsn> <request…>`: a read-your-LSN prefix — wait for the
/// engine to reach `lsn` (default patience), then handle the wrapped
/// request. Lets a client that wrote through the primary read its own
/// write from a follower.
fn handle_min_lsn(engine: &ShardedDcTree, line: &str) -> (String, Control) {
    let mut parts = line.splitn(3, char::is_whitespace);
    parts.next(); // MIN_LSN
    let Some(Ok(lsn)) = parts.next().map(str::parse::<u64>) else {
        return ("ERR MIN_LSN needs a numeric lsn".into(), Control::Continue);
    };
    let Some(rest) = parts.next().map(str::trim).filter(|r| !r.is_empty()) else {
        return (
            "ERR MIN_LSN needs a request to run".into(),
            Control::Continue,
        );
    };
    if let Err(e) = engine.wait_lsn(lsn, Duration::from_millis(DEFAULT_WAIT_MS)) {
        return (format!("ERR {e}"), Control::Continue);
    }
    handle_line(engine, rest)
}

/// `FETCH_SEGMENTS <from_lsn>`.
fn handle_fetch_segments(engine: &ShardedDcTree, line: &str) -> String {
    let Some(Ok(from_lsn)) = line.split_whitespace().nth(1).map(str::parse::<u64>) else {
        return "ERR FETCH_SEGMENTS needs a numeric from_lsn".into();
    };
    match engine.fetch_segments(from_lsn) {
        Ok(FetchOutcome::NeedCheckpoint { checkpoint_lsn }) => {
            format!("OK NEED_CHECKPOINT {checkpoint_lsn}")
        }
        Ok(FetchOutcome::Segments(segs)) => {
            let mut out = format!("OK SEGMENTS {}", segs.len());
            for seg in &segs {
                out.push(' ');
                out.push_str(&format!(
                    "{}:{}:{}",
                    seg.seq,
                    seg.first_lsn,
                    hex_encode(&seg.bytes)
                ));
            }
            out
        }
        Err(e) => format!("ERR {e}"),
    }
}

fn handle_fetch_checkpoint(engine: &ShardedDcTree) -> String {
    match engine.fetch_checkpoint() {
        Ok(bundle) => {
            let m = &bundle.manifest;
            let mut out = format!(
                "OK CHECKPOINT {} {} {}",
                m.checkpoint_lsn, m.start_seq, m.shards
            );
            // Image order is the manifest's: the single unsharded image, or
            // shard 0..shards — the id is implicit in the position.
            for (_, bytes) in &bundle.images {
                out.push(' ');
                out.push_str(&hex_encode(bytes));
            }
            out
        }
        Err(e) => format!("ERR {e}"),
    }
}

/// Lowercase hex of `bytes` (the wire framing keeps the protocol
/// line-delimited; segments are small enough that 2× inflation is fine).
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Inverse of [`hex_encode`]; `None` on odd length or a non-hex digit.
pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in bytes.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

fn handle_mutation(engine: &ShardedDcTree, line: &str) -> String {
    match parse_mutation(line) {
        Err(msg) => format!("ERR {msg}"),
        Ok((delete, measure, paths)) => {
            let result = if delete {
                engine.delete_raw(&paths, measure)
            } else {
                engine.insert_raw(&paths, measure)
            };
            match result {
                Ok(()) if delete => "OK DELETED".into(),
                Ok(()) => "OK INSERTED".into(),
                Err(e) => format!("ERR {e}"),
            }
        }
    }
}

fn handle_insert_batch(engine: &ShardedDcTree, line: &str) -> String {
    match parse_insert_batch(line) {
        Err(msg) => format!("ERR {msg}"),
        Ok(batch) => {
            let n = batch.len();
            match engine.insert_batch_raw(&batch) {
                Ok(()) => format!("OK INSERTED {n}"),
                Err(e) => format!("ERR {e}"),
            }
        }
    }
}

/// Parses `INSERT_BATCH <m> <paths>;<m> <paths>;…` — each `;`-separated
/// record reuses the single-record grammar.
#[allow(clippy::type_complexity)]
fn parse_insert_batch(line: &str) -> Result<Vec<(Vec<Vec<String>>, i64)>, String> {
    let mut parts = line.splitn(2, char::is_whitespace);
    parts.next(); // INSERT_BATCH
    let spec = parts.next().map(str::trim).unwrap_or("");
    if spec.is_empty() {
        return Err("INSERT_BATCH needs at least one record".into());
    }
    let mut batch = Vec::new();
    for (i, rec) in spec.split(';').enumerate() {
        let rec = rec.trim();
        if rec.is_empty() {
            return Err(format!("record {i} is empty"));
        }
        let (_, measure, paths) =
            parse_mutation(&format!("INSERT {rec}")).map_err(|msg| format!("record {i}: {msg}"))?;
        batch.push((paths, measure));
    }
    Ok(batch)
}

/// Parses `INSERT|DELETE <measure> <p>/<p>|<p>/<p>|…`.
#[allow(clippy::type_complexity)]
fn parse_mutation(line: &str) -> Result<(bool, i64, Vec<Vec<String>>), String> {
    let mut parts = line.splitn(3, char::is_whitespace);
    let verb = parts.next().unwrap_or("");
    let delete = verb.eq_ignore_ascii_case("DELETE");
    let measure: i64 = parts
        .next()
        .ok_or("missing measure")?
        .parse()
        .map_err(|_| "measure must be an integer".to_string())?;
    let spec = parts.next().ok_or("missing attribute paths")?.trim();
    if spec.is_empty() {
        return Err("missing attribute paths".into());
    }
    let paths: Vec<Vec<String>> = spec
        .split('|')
        .map(|dim| dim.split('/').map(|s| s.trim().to_string()).collect())
        .collect();
    for (d, dim) in paths.iter().enumerate() {
        if dim.iter().any(|s| s.is_empty()) {
            return Err(format!("dimension {d} has an empty path component"));
        }
    }
    Ok((delete, measure, paths))
}

fn handle_query(engine: &ShardedDcTree, line: &str) -> String {
    let stmt = match parse_statement(line) {
        Ok(s) => s,
        Err(e) => return format!("ERR {e}"),
    };
    let resolved = match engine.with_schema(|schema| resolve(schema, stmt.body())) {
        Ok(r) => r,
        Err(e) => return format!("ERR {e}"),
    };
    if stmt.is_explain() {
        return match engine.explain(&resolved) {
            Ok((_, explain)) => format!("OK {explain}"),
            Err(e) => format!("ERR {e}"),
        };
    }
    match engine.execute(&resolved) {
        Ok(out) => render_output(engine, &resolved, out),
        Err(e) => format!("ERR {e}"),
    }
}

/// `12.34` or `NULL`.
fn render_value(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.2}"),
        None => "NULL".into(),
    }
}

/// The values of every SELECTed aggregate, pipe-joined in list order.
fn render_ops(ops: &[AggregateOp], summary: &dc_common::MeasureSummary) -> String {
    ops.iter()
        .map(|&op| render_value(summary.eval(op)))
        .collect::<Vec<_>>()
        .join("|")
}

/// Renders a planned query answer. Single-aggregate responses keep the
/// legacy formats (`OK 12.00`, `OK 1996=12.50,…`); multi-aggregate scalars
/// label each value (`OK sum=12.00 count=3.00`) and multi-aggregate groups
/// pipe-join the values in SELECT-list order. `TOP k` ranks groups by the
/// first aggregate in the list.
fn render_output(engine: &ShardedDcTree, stmt: &ParsedStatement, out: QueryOutput) -> String {
    match out {
        QueryOutput::Scalar(summary) => {
            if let [op] = stmt.ops[..] {
                return format!("OK {}", render_value(summary.eval(op)));
            }
            let parts: Vec<String> = stmt
                .ops
                .iter()
                .map(|&op| {
                    let name = op.to_string().to_ascii_lowercase();
                    format!("{name}={}", render_value(summary.eval(op)))
                })
                .collect();
            format!("OK {}", parts.join(" "))
        }
        QueryOutput::Grouped(mut groups) => {
            let Some((dim, _)) = stmt.group_by else {
                return "ERR grouped output without GROUP BY".into();
            };
            if let Some(k) = stmt.top {
                let rank = stmt.ops[0];
                groups.sort_by(|a, b| {
                    let av = a.1.eval(rank).unwrap_or(f64::MIN);
                    let bv = b.1.eval(rank).unwrap_or(f64::MIN);
                    bv.partial_cmp(&av).unwrap_or(std::cmp::Ordering::Equal)
                });
                groups.truncate(k);
            }
            let rendered: Vec<String> = engine.with_schema(|schema| {
                let h = schema.dim(dim);
                groups
                    .iter()
                    .map(|(value, summary)| {
                        let name = h.name(*value).unwrap_or("?");
                        format!("{name}={}", render_ops(&stmt.ops, summary))
                    })
                    .collect()
            });
            format!("OK {}", rendered.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_lines_parse() {
        let (del, m, paths) = parse_mutation("INSERT 150 EUROPE/GERMANY|1996/Jan").unwrap();
        assert!(!del);
        assert_eq!(m, 150);
        assert_eq!(
            paths,
            vec![
                vec!["EUROPE".to_string(), "GERMANY".to_string()],
                vec!["1996".to_string(), "Jan".to_string()]
            ]
        );
        assert!(parse_mutation("INSERT x a/b").is_err());
        assert!(parse_mutation("INSERT 5").is_err());
        assert!(parse_mutation("DELETE -3 a//b").is_err());
        assert!(parse_mutation("DELETE -3 a/b").unwrap().0);
    }

    #[test]
    fn insert_batch_lines_parse() {
        let batch =
            parse_insert_batch("INSERT_BATCH 10 EUROPE/GERMANY|1996/Jan; -3 ASIA/JAPAN|1997/Feb")
                .unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].1, 10);
        assert_eq!(batch[1].1, -3);
        assert_eq!(
            batch[0].0[0],
            vec!["EUROPE".to_string(), "GERMANY".to_string()]
        );
        assert_eq!(batch[1].0[1], vec!["1997".to_string(), "Feb".to_string()]);
        // Errors name the offending record.
        assert!(parse_insert_batch("INSERT_BATCH").is_err());
        assert!(parse_insert_batch("INSERT_BATCH 5 a/b;").is_err());
        let err = parse_insert_batch("INSERT_BATCH 5 a/b; x a/b").unwrap_err();
        assert!(err.contains("record 1"), "{err}");
    }

    #[test]
    fn hex_round_trips() {
        let data = [0u8, 1, 0x7f, 0x80, 0xff, 0xde, 0xad];
        assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
        assert_eq!(hex_encode(&[]), "");
        assert_eq!(hex_decode("").unwrap(), Vec::<u8>::new());
        assert!(hex_decode("abc").is_none());
        assert!(hex_decode("zz").is_none());
    }
}
