//! The request layer shared by both front-ends: a typed [`Request`] that
//! the newline text codec ([`parse_request`]) and the binary frame codec
//! ([`crate::codec`]) both decode into, and one executor ([`execute`])
//! that turns it into the response line. Text wire format, one request
//! line → one response line:
//!
//! ```text
//! HELLO <tenant>                         → OK HELLO <tenant> (declares the admission tenant)
//! PING                                   → OK PONG
//! STATS                                  → OK {"uptime_secs":…}
//! FLUSH                                  → OK FLUSHED
//! CHECKPOINT                             → OK CHECKPOINTED <lsn>
//! SHUTDOWN                               → OK BYE            (server stops)
//! INSERT <measure> <p>/<p>|<p>/<p>|…     → OK INSERTED       (async; FLUSH for visibility)
//! INSERT_BATCH <m> <paths>;<m> <paths>;… → OK INSERTED <n>   (one WAL group, one fsync decision)
//! DELETE <measure> <p>/<p>|<p>/<p>|…     → OK DELETED
//! REPL_STATUS                            → OK ROLE=primary APPLIED=17 SYNCED=17 SEGMENT=2
//! WAIT_LSN <lsn> [timeout_ms]            → OK APPLIED <lsn>  (read-your-LSN barrier)
//! MIN_LSN <lsn> <request…>               → waits, then handles <request…>
//! FETCH_SEGMENTS <from_lsn>              → OK SEGMENTS <n> <seq>:<first_lsn>:<hex> …
//!                                        | OK NEED_CHECKPOINT <lsn>
//! FETCH_CHECKPOINT                       → OK CHECKPOINT <lsn> <start_seq> <shards> <hex>…
//! SUM WHERE Customer.Region = 'EUROPE'   → OK 1234.00
//! AVG WHERE … GROUP BY Time.Year TOP 3   → OK 1996=12.50,1995=11.00,…
//! SELECT SUM, COUNT WHERE …              → OK sum=1234.00 count=17.00
//! SELECT SUM, MAX GROUP BY Time.Year     → OK 1996=900.00|80.00,1995=…
//! EXPLAIN SUM GROUP BY Customer.Region   → OK backend=mview est_pages=… actual_pages=… shards=[…]
//! ```
//!
//! `INSERT`/`DELETE` paths are one `/`-separated top→leaf chain per
//! dimension, dimensions separated by `|` (names must not contain either
//! character). `INSERT_BATCH` carries many records on one line, separated
//! by `;` (also reserved in names), each record in the same
//! `<measure> <paths>` shape; the whole batch is appended to the WAL as a
//! single group and handed to the shard writers in one command.
//!
//! Anything else is parsed as a dc-ql statement against the
//! engine's live schema and routed through the cost-based planner
//! (`dc-plan`); `EXPLAIN <query>` executes the query and reports the
//! chosen backend, estimated vs. measured page reads, and the per-shard
//! plan fragments on one line. Multi-aggregate `SELECT` responses label
//! each value with its lowercase op name (scalar) or pipe-join the values
//! in SELECT-list order (grouped). Errors come back as `ERR <message>`.
//!
//! Under the reactor front-end ([`crate::reactor`]), a request refused by
//! admission control is answered `BUSY <reason>` instead of queueing
//! unboundedly; the threaded legacy server never sheds. `HELLO` names the
//! token bucket subsequent requests on that connection draw from (the
//! unnamed default tenant otherwise); it is connection state, so the
//! executor only acknowledges it.

use std::time::Duration;

use dc_common::AggregateOp;
use dc_durable::FetchOutcome;
use dc_ql::{parse_statement, resolve, ParsedStatement};

use crate::engine::{EngineRole, ShardedDcTree};
use dc_plan::QueryOutput;

/// Default `WAIT_LSN` / `MIN_LSN` patience before `ERR`ing out.
const DEFAULT_WAIT_MS: u64 = 10_000;

/// `MIN_LSN` prefixes may wrap further `MIN_LSN`s, but not unboundedly —
/// the parser is recursive and a crafted request must not exhaust the
/// stack.
pub const MAX_MIN_LSN_DEPTH: usize = 16;

/// What the connection loop should do after answering.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Control {
    /// Keep serving this connection.
    Continue,
    /// Stop the whole server (a `SHUTDOWN` request).
    StopServer,
}

/// One decoded request, whichever codec it arrived through. The dc-ql
/// surface stays textual ([`Request::Query`] carries the statement
/// verbatim); everything the engine hot paths consume is typed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Declares the connection's admission tenant (connection state; the
    /// executor just acknowledges).
    Hello {
        tenant: String,
    },
    Ping,
    Stats,
    Flush,
    Checkpoint,
    Shutdown,
    Insert {
        measure: i64,
        paths: Vec<Vec<String>>,
    },
    Delete {
        measure: i64,
        paths: Vec<Vec<String>>,
    },
    InsertBatch {
        records: Vec<(Vec<Vec<String>>, i64)>,
    },
    ReplStatus,
    WaitLsn {
        lsn: u64,
        timeout_ms: Option<u64>,
    },
    MinLsn {
        lsn: u64,
        inner: Box<Request>,
    },
    FetchSegments {
        from_lsn: u64,
    },
    FetchCheckpoint,
    /// A dc-ql statement (`SUM WHERE …`, `SELECT …`, `EXPLAIN …`), parsed
    /// against the live schema at execution time.
    Query {
        text: String,
    },
}

impl Request {
    /// Whether admission control applies: data-plane work that costs
    /// engine resources is shed under overload, while the control plane
    /// (health checks, observability, shutdown, tenant declaration) stays
    /// answerable precisely when the operator needs it.
    pub fn admission_controlled(&self) -> bool {
        !matches!(
            self,
            Request::Hello { .. }
                | Request::Ping
                | Request::Stats
                | Request::ReplStatus
                | Request::Shutdown
        )
    }
}

/// Whether `s` is a legal tenant name: 1–64 chars from a conservative
/// ASCII set, so tenant names can be embedded verbatim in the STATS JSON
/// and in `BUSY`/log lines without escaping.
pub fn valid_tenant(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 64
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b':' | b'@' | b'-'))
}

/// Handles one request line; returns the response line (without the
/// trailing newline) and the control action.
pub fn handle_line(engine: &ShardedDcTree, line: &str) -> (String, Control) {
    match parse_request(line) {
        Ok(req) => execute(engine, &req),
        Err(msg) => (format!("ERR {msg}"), Control::Continue),
    }
}

/// Parses one text-protocol line into a [`Request`] (the error is the
/// message without the `ERR ` prefix).
pub fn parse_request(line: &str) -> Result<Request, String> {
    parse_request_at(line, 0)
}

fn parse_request_at(line: &str, depth: usize) -> Result<Request, String> {
    let line = line.trim();
    if line.is_empty() {
        return Err("empty request".into());
    }
    let verb = line.split_whitespace().next().unwrap_or("");
    Ok(match verb.to_ascii_uppercase().as_str() {
        "HELLO" => {
            let tenant = line[verb.len()..].trim();
            if tenant.is_empty() {
                return Err("HELLO needs a tenant name".into());
            }
            if !valid_tenant(tenant) {
                return Err("tenant names are ≤64 ASCII [A-Za-z0-9_.:@-] chars".into());
            }
            Request::Hello {
                tenant: tenant.to_string(),
            }
        }
        "PING" => Request::Ping,
        "STATS" => Request::Stats,
        "FLUSH" => Request::Flush,
        "CHECKPOINT" => Request::Checkpoint,
        "SHUTDOWN" => Request::Shutdown,
        "INSERT" | "DELETE" => {
            let (delete, measure, paths) = parse_mutation(line)?;
            if delete {
                Request::Delete { measure, paths }
            } else {
                Request::Insert { measure, paths }
            }
        }
        "INSERT_BATCH" => Request::InsertBatch {
            records: parse_insert_batch(line)?,
        },
        "REPL_STATUS" => Request::ReplStatus,
        "WAIT_LSN" => {
            let mut parts = line.split_whitespace().skip(1);
            let Some(Ok(lsn)) = parts.next().map(str::parse::<u64>) else {
                return Err("WAIT_LSN needs a numeric lsn".into());
            };
            let timeout_ms = match parts.next() {
                Some(t) => match t.parse::<u64>() {
                    Ok(ms) => Some(ms),
                    Err(_) => return Err("WAIT_LSN timeout must be milliseconds".into()),
                },
                None => None,
            };
            Request::WaitLsn { lsn, timeout_ms }
        }
        "MIN_LSN" => {
            if depth >= MAX_MIN_LSN_DEPTH {
                return Err("MIN_LSN nesting too deep".into());
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            parts.next(); // MIN_LSN
            let Some(Ok(lsn)) = parts.next().map(str::parse::<u64>) else {
                return Err("MIN_LSN needs a numeric lsn".into());
            };
            let Some(rest) = parts.next().map(str::trim).filter(|r| !r.is_empty()) else {
                return Err("MIN_LSN needs a request to run".into());
            };
            Request::MinLsn {
                lsn,
                inner: Box::new(parse_request_at(rest, depth + 1)?),
            }
        }
        "FETCH_SEGMENTS" => {
            let Some(Ok(from_lsn)) = line.split_whitespace().nth(1).map(str::parse::<u64>) else {
                return Err("FETCH_SEGMENTS needs a numeric from_lsn".into());
            };
            Request::FetchSegments { from_lsn }
        }
        "FETCH_CHECKPOINT" => Request::FetchCheckpoint,
        _ => Request::Query {
            text: line.to_string(),
        },
    })
}

/// Executes one decoded request; returns the response line (without the
/// trailing newline) and the control action. Both codecs funnel through
/// here, which is what makes text and binary responses byte-identical.
pub fn execute(engine: &ShardedDcTree, req: &Request) -> (String, Control) {
    match req {
        Request::Hello { tenant } => (format!("OK HELLO {tenant}"), Control::Continue),
        Request::Ping => ("OK PONG".into(), Control::Continue),
        Request::Stats => (format!("OK {}", engine.stats_json()), Control::Continue),
        Request::Flush => {
            engine.flush();
            ("OK FLUSHED".into(), Control::Continue)
        }
        Request::Checkpoint => (
            match engine.checkpoint() {
                Ok(lsn) => format!("OK CHECKPOINTED {lsn}"),
                Err(e) => format!("ERR {e}"),
            },
            Control::Continue,
        ),
        Request::Shutdown => ("OK BYE".into(), Control::StopServer),
        Request::Insert { measure, paths } => (
            match engine.insert_raw(paths, *measure) {
                Ok(()) => "OK INSERTED".into(),
                Err(e) => format!("ERR {e}"),
            },
            Control::Continue,
        ),
        Request::Delete { measure, paths } => (
            match engine.delete_raw(paths, *measure) {
                Ok(()) => "OK DELETED".into(),
                Err(e) => format!("ERR {e}"),
            },
            Control::Continue,
        ),
        Request::InsertBatch { records } => (
            match engine.insert_batch_raw(records) {
                Ok(()) => format!("OK INSERTED {}", records.len()),
                Err(e) => format!("ERR {e}"),
            },
            Control::Continue,
        ),
        Request::ReplStatus => (handle_repl_status(engine), Control::Continue),
        Request::WaitLsn { lsn, timeout_ms } => {
            let timeout = Duration::from_millis(timeout_ms.unwrap_or(DEFAULT_WAIT_MS));
            (
                match engine.wait_lsn(*lsn, timeout) {
                    Ok(applied) => format!("OK APPLIED {applied}"),
                    Err(e) => format!("ERR {e}"),
                },
                Control::Continue,
            )
        }
        Request::MinLsn { lsn, inner } => {
            if let Err(e) = engine.wait_lsn(*lsn, Duration::from_millis(DEFAULT_WAIT_MS)) {
                return (format!("ERR {e}"), Control::Continue);
            }
            execute(engine, inner)
        }
        Request::FetchSegments { from_lsn } => {
            (handle_fetch_segments(engine, *from_lsn), Control::Continue)
        }
        Request::FetchCheckpoint => (handle_fetch_checkpoint(engine), Control::Continue),
        Request::Query { text } => (handle_query(engine, text), Control::Continue),
    }
}

// ----------------------------------------------------------------------
// Replication verbs
// ----------------------------------------------------------------------

fn handle_repl_status(engine: &ShardedDcTree) -> String {
    let role = match engine.role() {
        EngineRole::Primary => "primary",
        EngineRole::Follower => "follower",
    };
    use std::sync::atomic::Ordering::Relaxed;
    let d = &engine.metrics().durability;
    format!(
        "OK ROLE={role} APPLIED={} SYNCED={} SEGMENT={}",
        engine.applied_lsn(),
        d.wal_synced_lsn.load(Relaxed),
        d.wal_segment.load(Relaxed),
    )
}

fn handle_fetch_segments(engine: &ShardedDcTree, from_lsn: u64) -> String {
    match engine.fetch_segments(from_lsn) {
        Ok(FetchOutcome::NeedCheckpoint { checkpoint_lsn }) => {
            format!("OK NEED_CHECKPOINT {checkpoint_lsn}")
        }
        Ok(FetchOutcome::Segments(segs)) => {
            let mut out = format!("OK SEGMENTS {}", segs.len());
            for seg in &segs {
                out.push(' ');
                out.push_str(&format!(
                    "{}:{}:{}",
                    seg.seq,
                    seg.first_lsn,
                    hex_encode(&seg.bytes)
                ));
            }
            out
        }
        Err(e) => format!("ERR {e}"),
    }
}

fn handle_fetch_checkpoint(engine: &ShardedDcTree) -> String {
    match engine.fetch_checkpoint() {
        Ok(bundle) => {
            let m = &bundle.manifest;
            let mut out = format!(
                "OK CHECKPOINT {} {} {}",
                m.checkpoint_lsn, m.start_seq, m.shards
            );
            // Image order is the manifest's: the single unsharded image, or
            // shard 0..shards — the id is implicit in the position.
            for (_, bytes) in &bundle.images {
                out.push(' ');
                out.push_str(&hex_encode(bytes));
            }
            out
        }
        Err(e) => format!("ERR {e}"),
    }
}

/// Lowercase hex of `bytes` (the wire framing keeps the protocol
/// line-delimited; segments are small enough that 2× inflation is fine).
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Inverse of [`hex_encode`]; `None` on odd length or a non-hex digit.
pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in bytes.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

/// Parses `INSERT_BATCH <m> <paths>;<m> <paths>;…` — each `;`-separated
/// record reuses the single-record grammar.
#[allow(clippy::type_complexity)]
fn parse_insert_batch(line: &str) -> Result<Vec<(Vec<Vec<String>>, i64)>, String> {
    let mut parts = line.splitn(2, char::is_whitespace);
    parts.next(); // INSERT_BATCH
    let spec = parts.next().map(str::trim).unwrap_or("");
    if spec.is_empty() {
        return Err("INSERT_BATCH needs at least one record".into());
    }
    let mut batch = Vec::new();
    for (i, rec) in spec.split(';').enumerate() {
        let rec = rec.trim();
        if rec.is_empty() {
            return Err(format!("record {i} is empty"));
        }
        let (_, measure, paths) =
            parse_mutation(&format!("INSERT {rec}")).map_err(|msg| format!("record {i}: {msg}"))?;
        batch.push((paths, measure));
    }
    Ok(batch)
}

/// Parses `INSERT|DELETE <measure> <p>/<p>|<p>/<p>|…`.
#[allow(clippy::type_complexity)]
fn parse_mutation(line: &str) -> Result<(bool, i64, Vec<Vec<String>>), String> {
    let mut parts = line.splitn(3, char::is_whitespace);
    let verb = parts.next().unwrap_or("");
    let delete = verb.eq_ignore_ascii_case("DELETE");
    let measure: i64 = parts
        .next()
        .ok_or("missing measure")?
        .parse()
        .map_err(|_| "measure must be an integer".to_string())?;
    let spec = parts.next().ok_or("missing attribute paths")?.trim();
    if spec.is_empty() {
        return Err("missing attribute paths".into());
    }
    let paths: Vec<Vec<String>> = spec
        .split('|')
        .map(|dim| dim.split('/').map(|s| s.trim().to_string()).collect())
        .collect();
    for (d, dim) in paths.iter().enumerate() {
        if dim.iter().any(|s| s.is_empty()) {
            return Err(format!("dimension {d} has an empty path component"));
        }
    }
    Ok((delete, measure, paths))
}

fn handle_query(engine: &ShardedDcTree, line: &str) -> String {
    let stmt = match parse_statement(line) {
        Ok(s) => s,
        Err(e) => return format!("ERR {e}"),
    };
    let resolved = match engine.with_schema(|schema| resolve(schema, stmt.body())) {
        Ok(r) => r,
        Err(e) => return format!("ERR {e}"),
    };
    if stmt.is_explain() {
        return match engine.explain(&resolved) {
            Ok((_, explain)) => format!("OK {explain}"),
            Err(e) => format!("ERR {e}"),
        };
    }
    match engine.execute(&resolved) {
        Ok(out) => render_output(engine, &resolved, out),
        Err(e) => format!("ERR {e}"),
    }
}

/// `12.34` or `NULL`.
fn render_value(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.2}"),
        None => "NULL".into(),
    }
}

/// The values of every SELECTed aggregate, pipe-joined in list order.
fn render_ops(ops: &[AggregateOp], summary: &dc_common::MeasureSummary) -> String {
    ops.iter()
        .map(|&op| render_value(summary.eval(op)))
        .collect::<Vec<_>>()
        .join("|")
}

/// Renders a planned query answer. Single-aggregate responses keep the
/// legacy formats (`OK 12.00`, `OK 1996=12.50,…`); multi-aggregate scalars
/// label each value (`OK sum=12.00 count=3.00`) and multi-aggregate groups
/// pipe-join the values in SELECT-list order. `TOP k` ranks groups by the
/// first aggregate in the list.
fn render_output(engine: &ShardedDcTree, stmt: &ParsedStatement, out: QueryOutput) -> String {
    match out {
        QueryOutput::Scalar(summary) => {
            if let [op] = stmt.ops[..] {
                return format!("OK {}", render_value(summary.eval(op)));
            }
            let parts: Vec<String> = stmt
                .ops
                .iter()
                .map(|&op| {
                    let name = op.to_string().to_ascii_lowercase();
                    format!("{name}={}", render_value(summary.eval(op)))
                })
                .collect();
            format!("OK {}", parts.join(" "))
        }
        QueryOutput::Grouped(mut groups) => {
            let Some((dim, _)) = stmt.group_by else {
                return "ERR grouped output without GROUP BY".into();
            };
            if let Some(k) = stmt.top {
                let rank = stmt.ops[0];
                groups.sort_by(|a, b| {
                    let av = a.1.eval(rank).unwrap_or(f64::MIN);
                    let bv = b.1.eval(rank).unwrap_or(f64::MIN);
                    bv.partial_cmp(&av).unwrap_or(std::cmp::Ordering::Equal)
                });
                groups.truncate(k);
            }
            let rendered: Vec<String> = engine.with_schema(|schema| {
                let h = schema.dim(dim);
                groups
                    .iter()
                    .map(|(value, summary)| {
                        let name = h.name(*value).unwrap_or("?");
                        format!("{name}={}", render_ops(&stmt.ops, summary))
                    })
                    .collect()
            });
            format!("OK {}", rendered.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_lines_parse() {
        let (del, m, paths) = parse_mutation("INSERT 150 EUROPE/GERMANY|1996/Jan").unwrap();
        assert!(!del);
        assert_eq!(m, 150);
        assert_eq!(
            paths,
            vec![
                vec!["EUROPE".to_string(), "GERMANY".to_string()],
                vec!["1996".to_string(), "Jan".to_string()]
            ]
        );
        assert!(parse_mutation("INSERT x a/b").is_err());
        assert!(parse_mutation("INSERT 5").is_err());
        assert!(parse_mutation("DELETE -3 a//b").is_err());
        assert!(parse_mutation("DELETE -3 a/b").unwrap().0);
    }

    #[test]
    fn insert_batch_lines_parse() {
        let batch =
            parse_insert_batch("INSERT_BATCH 10 EUROPE/GERMANY|1996/Jan; -3 ASIA/JAPAN|1997/Feb")
                .unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].1, 10);
        assert_eq!(batch[1].1, -3);
        assert_eq!(
            batch[0].0[0],
            vec!["EUROPE".to_string(), "GERMANY".to_string()]
        );
        assert_eq!(batch[1].0[1], vec!["1997".to_string(), "Feb".to_string()]);
        // Errors name the offending record.
        assert!(parse_insert_batch("INSERT_BATCH").is_err());
        assert!(parse_insert_batch("INSERT_BATCH 5 a/b;").is_err());
        let err = parse_insert_batch("INSERT_BATCH 5 a/b; x a/b").unwrap_err();
        assert!(err.contains("record 1"), "{err}");
    }

    #[test]
    fn requests_parse_into_typed_forms() {
        assert_eq!(parse_request("PING").unwrap(), Request::Ping);
        assert_eq!(parse_request("  stats  ").unwrap(), Request::Stats);
        assert_eq!(
            parse_request("HELLO analytics-7").unwrap(),
            Request::Hello {
                tenant: "analytics-7".into()
            }
        );
        assert_eq!(
            parse_request("WAIT_LSN 17 250").unwrap(),
            Request::WaitLsn {
                lsn: 17,
                timeout_ms: Some(250)
            }
        );
        assert_eq!(
            parse_request("WAIT_LSN 17").unwrap(),
            Request::WaitLsn {
                lsn: 17,
                timeout_ms: None
            }
        );
        assert_eq!(
            parse_request("MIN_LSN 5 PING").unwrap(),
            Request::MinLsn {
                lsn: 5,
                inner: Box::new(Request::Ping)
            }
        );
        assert_eq!(
            parse_request("SUM WHERE X = 'y'").unwrap(),
            Request::Query {
                text: "SUM WHERE X = 'y'".into()
            }
        );
        assert!(parse_request("").is_err());
        assert!(parse_request("HELLO").is_err());
        assert!(parse_request("WAIT_LSN x").is_err());
        assert!(parse_request("MIN_LSN 5").is_err());
    }

    #[test]
    fn min_lsn_nesting_is_bounded() {
        let mut line = "PING".to_string();
        for _ in 0..MAX_MIN_LSN_DEPTH {
            line = format!("MIN_LSN 0 {line}");
        }
        // Exactly at the bound still parses…
        assert!(parse_request(&line).is_ok());
        // …one deeper is rejected instead of recursing unboundedly.
        let deeper = format!("MIN_LSN 0 {line}");
        assert_eq!(
            parse_request(&deeper).unwrap_err(),
            "MIN_LSN nesting too deep"
        );
    }

    #[test]
    fn control_plane_requests_bypass_admission() {
        for req in [
            Request::Ping,
            Request::Stats,
            Request::ReplStatus,
            Request::Shutdown,
            Request::Hello { tenant: "t".into() },
        ] {
            assert!(!req.admission_controlled(), "{req:?}");
        }
        for req in [
            Request::Flush,
            Request::Checkpoint,
            Request::FetchCheckpoint,
            Request::FetchSegments { from_lsn: 0 },
            Request::Query {
                text: "COUNT".into(),
            },
            Request::WaitLsn {
                lsn: 0,
                timeout_ms: None,
            },
        ] {
            assert!(req.admission_controlled(), "{req:?}");
        }
    }

    #[test]
    fn hex_round_trips() {
        let data = [0u8, 1, 0x7f, 0x80, 0xff, 0xde, 0xad];
        assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
        assert_eq!(hex_encode(&[]), "");
        assert_eq!(hex_decode("").unwrap(), Vec::<u8>::new());
        assert!(hex_decode("abc").is_none());
        assert!(hex_decode("zz").is_none());
    }
}
