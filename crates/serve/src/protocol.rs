//! The newline-delimited wire protocol: dc-ql query lines plus a few
//! engine verbs, one request line → one response line.
//!
//! ```text
//! PING                                   → OK PONG
//! STATS                                  → OK {"uptime_secs":…}
//! FLUSH                                  → OK FLUSHED
//! CHECKPOINT                             → OK CHECKPOINTED <lsn>
//! SHUTDOWN                               → OK BYE            (server stops)
//! INSERT <measure> <p>/<p>|<p>/<p>|…     → OK INSERTED       (async; FLUSH for visibility)
//! DELETE <measure> <p>/<p>|<p>/<p>|…     → OK DELETED
//! SUM WHERE Customer.Region = 'EUROPE'   → OK 1234.00
//! AVG WHERE … GROUP BY Time.Year TOP 3   → OK 1996=12.50,1995=11.00,…
//! ```
//!
//! `INSERT`/`DELETE` paths are one `/`-separated top→leaf chain per
//! dimension, dimensions separated by `|` (names must not contain either
//! character). Anything else is parsed as a dc-ql aggregate query against
//! the engine's live schema. Errors come back as `ERR <message>`.

use dc_ql::parse_query;

use crate::engine::ShardedDcTree;

/// What the connection loop should do after answering.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Control {
    /// Keep serving this connection.
    Continue,
    /// Stop the whole server (a `SHUTDOWN` request).
    StopServer,
}

/// Handles one request line; returns the response line (without the
/// trailing newline) and the control action.
pub fn handle_line(engine: &ShardedDcTree, line: &str) -> (String, Control) {
    let line = line.trim();
    if line.is_empty() {
        return ("ERR empty request".into(), Control::Continue);
    }
    let verb = line.split_whitespace().next().unwrap_or("");
    match verb.to_ascii_uppercase().as_str() {
        "PING" => ("OK PONG".into(), Control::Continue),
        "STATS" => (
            format!("OK {}", engine.metrics().to_json()),
            Control::Continue,
        ),
        "FLUSH" => {
            engine.flush();
            ("OK FLUSHED".into(), Control::Continue)
        }
        "CHECKPOINT" => (
            match engine.checkpoint() {
                Ok(lsn) => format!("OK CHECKPOINTED {lsn}"),
                Err(e) => format!("ERR {e}"),
            },
            Control::Continue,
        ),
        "SHUTDOWN" => ("OK BYE".into(), Control::StopServer),
        "INSERT" | "DELETE" => (handle_mutation(engine, line), Control::Continue),
        _ => (handle_query(engine, line), Control::Continue),
    }
}

fn handle_mutation(engine: &ShardedDcTree, line: &str) -> String {
    match parse_mutation(line) {
        Err(msg) => format!("ERR {msg}"),
        Ok((delete, measure, paths)) => {
            let result = if delete {
                engine.delete_raw(&paths, measure)
            } else {
                engine.insert_raw(&paths, measure)
            };
            match result {
                Ok(()) if delete => "OK DELETED".into(),
                Ok(()) => "OK INSERTED".into(),
                Err(e) => format!("ERR {e}"),
            }
        }
    }
}

/// Parses `INSERT|DELETE <measure> <p>/<p>|<p>/<p>|…`.
#[allow(clippy::type_complexity)]
fn parse_mutation(line: &str) -> Result<(bool, i64, Vec<Vec<String>>), String> {
    let mut parts = line.splitn(3, char::is_whitespace);
    let verb = parts.next().unwrap_or("");
    let delete = verb.eq_ignore_ascii_case("DELETE");
    let measure: i64 = parts
        .next()
        .ok_or("missing measure")?
        .parse()
        .map_err(|_| "measure must be an integer".to_string())?;
    let spec = parts.next().ok_or("missing attribute paths")?.trim();
    if spec.is_empty() {
        return Err("missing attribute paths".into());
    }
    let paths: Vec<Vec<String>> = spec
        .split('|')
        .map(|dim| dim.split('/').map(|s| s.trim().to_string()).collect())
        .collect();
    for (d, dim) in paths.iter().enumerate() {
        if dim.iter().any(|s| s.is_empty()) {
            return Err(format!("dimension {d} has an empty path component"));
        }
    }
    Ok((delete, measure, paths))
}

fn handle_query(engine: &ShardedDcTree, line: &str) -> String {
    let parsed = match engine.with_schema(|schema| parse_query(schema, line)) {
        Ok(p) => p,
        Err(e) => return format!("ERR {e}"),
    };
    match parsed.group_by {
        None => match engine.range_query(&parsed.filter, parsed.op) {
            Ok(Some(v)) => format!("OK {v:.2}"),
            Ok(None) => "OK NULL".into(),
            Err(e) => format!("ERR {e}"),
        },
        Some((dim, level)) => match engine.group_by(dim, level, &parsed.filter) {
            Err(e) => format!("ERR {e}"),
            Ok(mut groups) => {
                if let Some(k) = parsed.top {
                    groups.sort_by(|a, b| {
                        let av = a.1.eval(parsed.op).unwrap_or(f64::MIN);
                        let bv = b.1.eval(parsed.op).unwrap_or(f64::MIN);
                        bv.partial_cmp(&av).unwrap_or(std::cmp::Ordering::Equal)
                    });
                    groups.truncate(k);
                }
                let rendered: Vec<String> = engine.with_schema(|schema| {
                    let h = schema.dim(dim);
                    groups
                        .iter()
                        .map(|(value, summary)| {
                            let name = h.name(*value).unwrap_or("?");
                            match summary.eval(parsed.op) {
                                Some(v) => format!("{name}={v:.2}"),
                                None => format!("{name}=NULL"),
                            }
                        })
                        .collect()
                });
                format!("OK {}", rendered.join(","))
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_lines_parse() {
        let (del, m, paths) = parse_mutation("INSERT 150 EUROPE/GERMANY|1996/Jan").unwrap();
        assert!(!del);
        assert_eq!(m, 150);
        assert_eq!(
            paths,
            vec![
                vec!["EUROPE".to_string(), "GERMANY".to_string()],
                vec!["1996".to_string(), "Jan".to_string()]
            ]
        );
        assert!(parse_mutation("INSERT x a/b").is_err());
        assert!(parse_mutation("INSERT 5").is_err());
        assert!(parse_mutation("DELETE -3 a//b").is_err());
        assert!(parse_mutation("DELETE -3 a/b").unwrap().0);
    }
}
