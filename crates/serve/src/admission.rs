//! Per-tenant admission control and engine-overload shedding.
//!
//! The front-end is the only place in the system where demand is still
//! unbounded: a single client can open one pipelined connection and pump
//! frames faster than the query pool drains them, and nothing before this
//! module would push back short of the kernel's socket buffers. Two
//! independent gates close that hole:
//!
//! 1. **Token buckets per tenant.** Every connection declares a tenant id
//!    with `HELLO` (undeclared connections share the `"default"` bucket).
//!    Each bucket refills at [`AdmissionConfig::tenant_rate`] requests/sec
//!    up to a burst of [`AdmissionConfig::tenant_burst`]; a data-plane
//!    request that finds the bucket empty is answered
//!    `BUSY tenant over rate` without ever being queued.
//! 2. **Load shedding on engine depth.** When the work already accepted —
//!    queued query-pool tasks plus queued shard-writer commands — exceeds
//!    [`AdmissionConfig::queue_high_water`], new data-plane requests get
//!    `BUSY engine overloaded`. Shedding at the door keeps the latency of
//!    *admitted* requests bounded instead of letting every request share
//!    an ever-growing queue (the no-collapse property `saturation_bench`
//!    asserts).
//!
//! Control-plane requests (`PING`, `HELLO`, `STATS`, `REPL_STATUS`,
//! `SHUTDOWN` — see `Request::admission_controlled`) bypass both gates so
//! an operator can always inspect and stop an overloaded server.
//!
//! The default config is deliberately generous (500k req/s per tenant,
//! high-water 16384): integration tests and well-behaved clients never see
//! `BUSY`; benchmarks construct tighter configs to exercise shedding.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::metrics::EngineMetrics;

/// Tuning for both admission gates. `Default` is permissive enough that
/// ordinary clients never observe `BUSY`.
#[derive(Clone, Debug)]
pub struct AdmissionConfig {
    /// Token-bucket refill rate per tenant, in requests per second.
    pub tenant_rate: f64,
    /// Token-bucket capacity per tenant (burst allowance).
    pub tenant_burst: f64,
    /// Shed new data-plane work once queued pool tasks + queued shard
    /// commands exceed this.
    pub queue_high_water: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            tenant_rate: 500_000.0,
            tenant_burst: 1_000_000.0,
            queue_high_water: 16_384,
        }
    }
}

/// The tenant id used by connections that never sent `HELLO`.
pub const DEFAULT_TENANT: &str = "default";

/// Outcome of [`AdmissionController::check`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Run the request.
    Admit,
    /// The tenant's token bucket is empty.
    TenantThrottled,
    /// The engine's queues are past high-water.
    Overloaded,
}

impl Verdict {
    /// The `BUSY …` response line for a shed request (`None` if admitted).
    pub fn busy_line(self) -> Option<&'static str> {
        match self {
            Verdict::Admit => None,
            Verdict::TenantThrottled => Some("BUSY tenant over rate"),
            Verdict::Overloaded => Some("BUSY engine overloaded"),
        }
    }
}

struct TokenBucket {
    tokens: f64,
    refilled_at: Instant,
}

/// One tenant's token bucket, shareable across connections. Connections
/// resolve their bucket once (at accept and again on `HELLO`) and charge
/// it lock-locally per request; the map lookup — a global lock plus a key
/// allocation — stays off the per-request path.
pub struct TenantBucket {
    inner: Mutex<TokenBucket>,
}

/// Shared admission state: one token bucket per tenant, lazily created.
pub struct AdmissionController {
    cfg: AdmissionConfig,
    buckets: Mutex<HashMap<String, Arc<TenantBucket>>>,
}

impl AdmissionController {
    pub fn new(cfg: AdmissionConfig) -> Self {
        AdmissionController {
            cfg,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Both gates in order: overload first (cheap atomics, applies to every
    /// tenant alike), then the tenant bucket (only charged if the request
    /// would otherwise run).
    pub fn check(&self, tenant: &str, metrics: &EngineMetrics) -> Verdict {
        self.check_bucket(&self.bucket(tenant), metrics, 0)
    }

    /// Resolves (creating on first sight) the shared bucket of `tenant`.
    /// Takes the global map lock — call per connection, not per request.
    pub fn bucket(&self, tenant: &str) -> Arc<TenantBucket> {
        let mut buckets = self.buckets.lock();
        match buckets.get(tenant) {
            Some(b) => Arc::clone(b),
            None => {
                let b = Arc::new(TenantBucket {
                    inner: Mutex::new(TokenBucket {
                        tokens: self.cfg.tenant_burst,
                        refilled_at: Instant::now(),
                    }),
                });
                buckets.insert(tenant.to_string(), Arc::clone(&b));
                b
            }
        }
    }

    /// Both gates in order against a pre-resolved bucket: overload first
    /// (cheap atomics, applies to every tenant alike), then the tenant
    /// bucket (only charged if the request would otherwise run).
    /// `extra_depth` is queued work the engine metrics can't see (e.g. the
    /// reactor's own dispatch queue), added to the overload gate.
    pub fn check_bucket(
        &self,
        bucket: &TenantBucket,
        metrics: &EngineMetrics,
        extra_depth: u64,
    ) -> Verdict {
        if engine_depth(metrics) + extra_depth > self.cfg.queue_high_water {
            return Verdict::Overloaded;
        }
        if self.try_take(bucket, Instant::now()) {
            Verdict::Admit
        } else {
            Verdict::TenantThrottled
        }
    }

    fn try_take(&self, bucket: &TenantBucket, now: Instant) -> bool {
        let mut bucket = bucket.inner.lock();
        let elapsed = now
            .saturating_duration_since(bucket.refilled_at)
            .as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.cfg.tenant_rate).min(self.cfg.tenant_burst);
        bucket.refilled_at = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Work already accepted but not yet executed: queued query-pool tasks
/// plus queued shard-writer commands.
pub fn engine_depth(metrics: &EngineMetrics) -> u64 {
    use std::sync::atomic::Ordering::Relaxed;
    let pool = metrics.pool.queued_tasks.load(Relaxed);
    let writers: u64 = metrics
        .shards
        .iter()
        .map(|s| s.queue_depth.load(Relaxed))
        .sum();
    pool + writers
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering::Relaxed;

    #[test]
    fn default_config_admits_ordinary_traffic() {
        let metrics = EngineMetrics::new(2);
        let ctl = AdmissionController::new(AdmissionConfig::default());
        for _ in 0..10_000 {
            assert_eq!(ctl.check("t1", &metrics), Verdict::Admit);
        }
    }

    #[test]
    fn empty_bucket_throttles_only_its_tenant() {
        let metrics = EngineMetrics::new(1);
        let ctl = AdmissionController::new(AdmissionConfig {
            tenant_rate: 0.001, // effectively no refill within the test
            tenant_burst: 3.0,
            queue_high_water: 16_384,
        });
        for _ in 0..3 {
            assert_eq!(ctl.check("greedy", &metrics), Verdict::Admit);
        }
        assert_eq!(ctl.check("greedy", &metrics), Verdict::TenantThrottled);
        assert_eq!(
            ctl.check("greedy", &metrics).busy_line(),
            Some("BUSY tenant over rate")
        );
        // A different tenant has its own bucket.
        assert_eq!(ctl.check("polite", &metrics), Verdict::Admit);
    }

    #[test]
    fn bucket_refills_over_time() {
        let metrics = EngineMetrics::new(1);
        let ctl = AdmissionController::new(AdmissionConfig {
            tenant_rate: 1000.0,
            tenant_burst: 1.0,
            queue_high_water: 16_384,
        });
        assert_eq!(ctl.check("t", &metrics), Verdict::Admit);
        assert_eq!(ctl.check("t", &metrics), Verdict::TenantThrottled);
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert_eq!(ctl.check("t", &metrics), Verdict::Admit);
    }

    #[test]
    fn deep_queues_shed_regardless_of_tenant() {
        let metrics = EngineMetrics::new(2);
        let ctl = AdmissionController::new(AdmissionConfig {
            queue_high_water: 10,
            ..AdmissionConfig::default()
        });
        metrics.pool.queued_tasks.store(6, Relaxed);
        metrics.shards[0].queue_depth.store(3, Relaxed);
        metrics.shards[1].queue_depth.store(1, Relaxed);
        assert_eq!(engine_depth(&metrics), 10);
        assert_eq!(ctl.check("anyone", &metrics), Verdict::Admit);
        metrics.shards[1].queue_depth.store(2, Relaxed);
        assert_eq!(ctl.check("anyone", &metrics), Verdict::Overloaded);
        assert_eq!(
            ctl.check("anyone", &metrics).busy_line(),
            Some("BUSY engine overloaded")
        );
    }
}
