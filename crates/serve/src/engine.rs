//! The sharded engine: hash- or dimension-partitioned `DcTree` shards, one
//! writer thread per shard fed by an MPSC queue, epoch-published snapshots
//! for lock-free reads, and scatter-gather query merging.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dc_bitmap::BitmapIndex;
use dc_cache::{CacheConfig, CacheDelta, Lookup, SharedCache};
use dc_common::{
    AggregateOp, DcError, DcResult, DimensionId, Level, Measure, MeasureSummary, ValueId,
};
use dc_durable::{
    checkpoint_file_name, parse_checkpoint_file_name, ship, CheckpointBundle, FetchOutcome, StdFs,
    SyncPolicy, WalConfig, WalEntry, WalFs, WalReader, WalWriter,
};
use dc_hierarchy::{ConceptHierarchy, CubeSchema, Record};
use dc_mds::Mds;
use dc_mview::{rollup_lattice, MaterializedView};
use dc_oocore::{OocDcTree, OocOptions, OocPoolStats, OocStore};
use dc_plan::{
    choose, Backend, BackendRefs, Explain, LogicalPlan, PartitionStats, QueryOutput, ShardExplain,
};
use dc_ql::ParsedStatement;
use dc_scan::FlatTable;
use dc_storage::BlockConfig;
use dc_tree::{DcTree, DcTreeConfig, PagedDcTree, PreparedRange};
use parking_lot::{Condvar, Mutex, RwLock};

use crate::catalog::SchemaCatalog;
use crate::metrics::EngineMetrics;
use crate::pool::QueryPool;

/// How records map to shards.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PartitionPolicy {
    /// Stable hash over the record's attribute paths. Balanced, but every
    /// query must visit every shard.
    Hash,
    /// Route by the record's ancestor value at `(dim, level)` — e.g. all of
    /// one customer region on one shard. Queries constraining that
    /// dimension prune to the shards owning the matching ancestors, which
    /// is where the sharded engine's query speedup comes from (the same
    /// idea as partitioning a warehouse by its hottest roll-up attribute).
    ByDimension {
        /// The routing dimension.
        dim: DimensionId,
        /// The hierarchy level whose values are distributed over shards.
        level: Level,
    },
}

/// Whether the engine accepts writes or replicates them from a primary.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EngineRole {
    /// The single writable engine: mutations are logged to its WAL, and
    /// followers fetch its segments. The default — a standalone engine is
    /// just a primary nobody replicates.
    #[default]
    Primary,
    /// A read-only replica fed by `dc-replica`: ingest is rejected, state
    /// advances only through [`ShardedDcTree::apply_replicated`], and
    /// promotion (reopening the replicated WAL directory as a `Primary`)
    /// is how it becomes writable. Requires [`EngineConfig::wal`] — the
    /// follower recovers its starting state from the replicated directory,
    /// but opens no WAL writer of its own.
    Follower,
}

/// Write-ahead-log options for a durable engine.
#[derive(Clone, Debug)]
pub struct WalOptions {
    /// Directory holding the WAL segments, manifest, and checkpoint images.
    pub dir: PathBuf,
    /// When appended entries are fsynced. Under
    /// [`SyncPolicy::GroupCommitMs`] the shard writer threads issue a group
    /// commit after each applied batch, so acknowledged `FLUSH`es are
    /// always durable regardless of the cadence.
    pub sync: SyncPolicy,
    /// Segment rotation budget in bytes.
    pub segment_bytes: u64,
    /// Checkpoint automatically after this many logged mutations
    /// (`0` = only on explicit [`ShardedDcTree::checkpoint`] calls).
    pub checkpoint_every: u64,
    /// The filesystem the WAL runs on; `None` = the real one. The
    /// fault-injection harness passes `FaultFs` here.
    pub fs: Option<Arc<dyn WalFs>>,
}

impl WalOptions {
    /// Durable defaults: fsync every append, 4 MiB segments, manual
    /// checkpoints, the real filesystem.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalOptions {
            dir: dir.into(),
            sync: SyncPolicy::Always,
            segment_bytes: WalConfig::default().segment_bytes,
            checkpoint_every: 0,
            fs: None,
        }
    }
}

/// Where shard trees live.
#[derive(Clone, Debug, Default)]
pub enum StorageMode {
    /// Every shard is a RAM-resident [`DcTree`]; queries run against
    /// copy-on-publish snapshots. The default, and the fastest when the
    /// cube fits in memory.
    #[default]
    Resident,
    /// Every shard is a disk file of compressed node pages served through
    /// `dc-oocore`'s concurrent, scan-resistant buffer pool — the cube may
    /// exceed RAM by an order of magnitude. Queries take a shard read lock
    /// instead of a snapshot, the planner prices possibly-cold page
    /// fetches via the observed pool miss rate, and STATS grows a
    /// `buffer_pool` section.
    Disk(DiskOptions),
}

/// Options for [`StorageMode::Disk`].
#[derive(Clone, Debug)]
pub struct DiskOptions {
    /// Directory holding one `shard-<i>.dct` paged file per shard. Without
    /// a WAL these files are the only copy of the data; with one they are
    /// working state, rebuilt from checkpoint images on recovery.
    pub dir: PathBuf,
    /// Buffer-pool and page-codec knobs (frame budget, block size,
    /// compression).
    pub ooc: OocOptions,
}

impl DiskOptions {
    /// Disk mode under `dir` with default pool options.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DiskOptions {
            dir: dir.into(),
            ooc: OocOptions::default(),
        }
    }
}

/// Which auxiliary query engines the shard writers maintain for the
/// cost-based planner (`dc-plan`). DC-tree descent is always available;
/// each engine enabled here is kept in sync by the owning writer thread
/// and published atomically with the tree snapshot, giving the planner a
/// real alternative to price. Maintenance is paid on the write path (one
/// bitmap append per level, one flat-table append, one lattice-cell merge
/// per view), which is exactly the static-index update cost the paper
/// criticizes — so the engines default off and benches opt in.
#[derive(Clone, Copy, Debug)]
pub struct PlannerOptions {
    /// Maintain a `dc-bitmap` WAH index per shard.
    pub bitmap: bool,
    /// Maintain the `dc-mview` single-dimension roll-up lattice per shard.
    /// Deletes mark the views stale; the writer rebuilds them from the
    /// shard tree at the next snapshot publish.
    pub views: bool,
    /// Maintain a `dc-scan` flat table per shard.
    pub table: bool,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        PlannerOptions {
            bitmap: true,
            views: true,
            table: true,
        }
    }
}

/// Engine construction knobs.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Number of shards (writer threads).
    pub num_shards: usize,
    /// Record → shard mapping.
    pub policy: PartitionPolicy,
    /// Configuration of each shard's `DcTree`.
    pub tree: DcTreeConfig,
    /// Maximum commands a writer applies before publishing a snapshot.
    pub batch_size: usize,
    /// `Some` makes ingest durable via a shared write-ahead log (reusing
    /// `dc-durable`'s framed WAL); recovery replays it on construction.
    pub wal: Option<WalOptions>,
    /// Evaluate multi-shard queries on the persistent work-stealing query
    /// pool instead of sequentially on the calling thread. Snapshots are
    /// immutable, so the two paths return identical answers; the pooled one
    /// wins wall-clock only when spare cores exist, which is why the
    /// default follows [`std::thread::available_parallelism`].
    pub parallel_queries: bool,
    /// Worker threads in the query pool (`None` = size by
    /// [`std::thread::available_parallelism`]). `Some(0)` disables the pool
    /// outright, like `parallel_queries = false`. The submitting thread
    /// always participates in its own query on top of these workers.
    pub pool_workers: Option<usize>,
    /// `Some` puts a hierarchy-aware aggregate cache (`dc-cache`) in front
    /// of the scatter-gather path: exact and contained (semantic) hits skip
    /// some or all shard descents, and shard writers patch cached summaries
    /// in place as part of snapshot publication. `None` disables caching —
    /// every query descends the shards (the uncached baseline).
    pub cache: Option<CacheConfig>,
    /// `Some` makes each shard writer maintain the selected auxiliary
    /// engines (bitmap index, roll-up views, flat table) alongside its
    /// tree, so the cost-based planner ([`ShardedDcTree::execute`]) has
    /// alternatives to DC-tree descent to choose from. `None` (the
    /// default) keeps the write path lean: the planner still runs, but
    /// descent is the only candidate.
    pub planner: Option<PlannerOptions>,
    /// Where the shard trees live: RAM-resident (default) or disk-backed
    /// through `dc-oocore`'s buffer pool. Disk mode maintains only the
    /// DC-tree backend, so it rejects [`EngineConfig::planner`] engines.
    pub storage: StorageMode,
    /// Writable primary (default) or read-only replication follower.
    pub role: EngineRole,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            num_shards: 4,
            policy: PartitionPolicy::Hash,
            tree: DcTreeConfig::default(),
            batch_size: 128,
            wal: None,
            parallel_queries: std::thread::available_parallelism()
                .map(|p| p.get() > 1)
                .unwrap_or(false),
            pool_workers: None,
            cache: Some(CacheConfig::default()),
            planner: None,
            storage: StorageMode::default(),
            role: EngineRole::default(),
        }
    }
}

/// One command on a shard's ingest queue.
enum Cmd {
    /// Apply a pre-interned record once the shard has replayed the catalog
    /// log through `epoch`.
    Insert { record: Record, epoch: u64 },
    /// Apply a whole pre-interned batch (one `INSERT_BATCH` group's worth
    /// routed to this shard) once the catalog is replayed through `epoch`.
    /// The resident writer feeds it to the tree's amortized batch path.
    InsertBatch { records: Vec<Record>, epoch: u64 },
    /// Delete one matching record (same epoch contract).
    Delete { record: Record, epoch: u64 },
    /// Acknowledge once everything enqueued before this command is applied
    /// and visible in a published snapshot.
    Flush(Sender<()>),
    /// Replay the catalog intern log through `epoch` and publish, even with
    /// no record traffic — the checkpoint path uses this to equalize every
    /// shard's schema with the master catalog before imaging, so any one
    /// shard image can restore the catalog on recovery.
    Catchup { epoch: u64 },
    /// Drain the queue, publish, exit.
    Shutdown,
}

/// The engine side of a configured WAL: the shared writer plus everything
/// checkpoints need (the filesystem, the directory, the cadence).
struct DurableWal {
    writer: Mutex<WalWriter>,
    fs: Arc<dyn WalFs>,
    dir: PathBuf,
    checkpoint_every: u64,
    /// Writers issue a group commit after each published batch (the
    /// [`SyncPolicy::GroupCommitMs`] contract).
    group_commit: bool,
    /// Mutations logged since the last checkpoint (drives auto-checkpoints).
    since_checkpoint: AtomicU64,
    /// Serializes checkpoints; `try_lock` makes concurrent auto-checkpoint
    /// attempts cheap no-ops.
    checkpoint_lock: Mutex<()>,
}

/// The engine's replication frontier: its role and the highest LSN it has
/// applied (logged, on a primary; replicated, on a follower), guarded by a
/// condvar so `WAIT_LSN` waiters block instead of polling.
struct ReplState {
    role: EngineRole,
    applied: Mutex<u64>,
    caught_up: Condvar,
}

/// What the checkpointer captured for one shard in phase 1: a resident
/// snapshot still to be serialized, or the raw paged-file bytes a
/// disk-backed shard was flushed down to.
enum CheckpointImage {
    Resident(Arc<DcTree>),
    Disk(Vec<u8>),
}

/// One shard's atomically published planning state: the tree snapshot, the
/// auxiliary engines built from exactly the same applied prefix, and the
/// publish-time statistics the cost model prices against. A single `Arc`
/// swap publishes all of it, so a query that plans *and* executes from one
/// `PlanState` read sees every backend at the same logical point in time —
/// the property the mid-churn differential tests pin.
struct PlanState {
    tree: Arc<DcTree>,
    bitmap: Option<Arc<BitmapIndex>>,
    views: Option<Arc<Vec<MaterializedView>>>,
    table: Option<Arc<FlatTable>>,
    stats: PartitionStats,
}

/// The writer-side mutable auxiliary engines (see [`PlannerOptions`]).
struct AuxEngines {
    bitmap: Option<BitmapIndex>,
    views: Option<Vec<MaterializedView>>,
    /// Set by deletes (summaries cannot subtract min/max); the views are
    /// rebuilt from the shard tree at the next publish.
    views_stale: bool,
    table: Option<FlatTable>,
}

impl AuxEngines {
    /// Builds the enabled engines and loads the tree's current records
    /// (the recovery path: checkpoint images restore trees, not indexes).
    fn build(tree: &DcTree, opts: PlannerOptions) -> Self {
        let schema = tree.schema();
        let mut aux = AuxEngines {
            bitmap: opts
                .bitmap
                .then(|| BitmapIndex::new(schema, BlockConfig::DEFAULT)),
            views: opts.views.then(|| fresh_views(schema)),
            views_stale: false,
            table: opts
                .table
                .then(|| FlatTable::for_schema(BlockConfig::DEFAULT, schema)),
        };
        for stored in tree.iter_records() {
            aux.insert(schema, &stored.record);
        }
        aux
    }

    fn insert(&mut self, schema: &CubeSchema, record: &Record) {
        if let Some(bitmap) = &mut self.bitmap {
            bitmap
                .insert(schema, record)
                .expect("catalog-backed insert cannot fail");
        }
        if let Some(table) = &mut self.table {
            table.insert(record.clone());
        }
        if !self.views_stale {
            if let Some(views) = &mut self.views {
                for v in views {
                    v.apply(schema, record)
                        .expect("catalog-backed insert cannot fail");
                }
            }
        }
    }

    /// Registers a tree-confirmed deletion.
    fn delete(&mut self, schema: &CubeSchema, record: &Record) {
        if let Some(bitmap) = &mut self.bitmap {
            let _ = bitmap.delete(schema, record);
        }
        if let Some(table) = &mut self.table {
            table.delete(record);
        }
        if self.views.is_some() {
            self.views_stale = true;
        }
    }
}

/// The single-dimension roll-up lattice plus the grand total.
fn fresh_views(schema: &CubeSchema) -> Vec<MaterializedView> {
    rollup_lattice(schema)
        .into_iter()
        .map(MaterializedView::new)
        .collect()
}

/// Captures a publish-time [`PlanState`] from the shard tree and its aux
/// engines (cloned — published state must be immutable).
fn capture_plan_state(
    tree: &DcTree,
    snap: Arc<DcTree>,
    aux: Option<&AuxEngines>,
) -> Arc<PlanState> {
    let ts = tree.stats();
    let bitmap = aux.and_then(|a| a.bitmap.clone()).map(Arc::new);
    let views = aux.and_then(|a| a.views.clone()).map(Arc::new);
    let table = aux.and_then(|a| a.table.clone()).map(Arc::new);
    let records_per_block = table
        .as_ref()
        .map(|t| t.records_per_block())
        .unwrap_or_else(|| {
            FlatTable::for_schema(BlockConfig::DEFAULT, tree.schema()).records_per_block()
        });
    let stats = PartitionStats {
        records: ts.records,
        tree_nodes: ts.dir_nodes + ts.data_nodes,
        tree_height: ts.height,
        records_per_block,
        bitmap_bytes: bitmap.as_ref().map(|b| b.bitmap_bytes()).unwrap_or(0),
        has_bitmap: bitmap.is_some(),
        has_table: table.is_some(),
        view_cells: views
            .as_ref()
            .map(|vs| {
                vs.iter()
                    .map(|v| (v.spec().levels.clone(), v.num_cells()))
                    .collect()
            })
            .unwrap_or_default(),
        views_stale: aux.map(|a| a.views_stale).unwrap_or(false),
        disk_resident: false,
        pool_miss_rate: 0.0,
    };
    Arc::new(PlanState {
        tree: snap,
        bitmap,
        views,
        table,
        stats,
    })
}

/// Borrowed handles into a published [`PlanState`], in `dc-plan`'s shape.
fn backend_refs(state: &PlanState) -> BackendRefs<'_> {
    BackendRefs {
        tree: &state.tree,
        bitmap: state.bitmap.as_deref(),
        views: state.views.as_ref().map(|v| &v[..]),
        table: state.table.as_deref(),
    }
}

/// The output of [`ShardedDcTree::compare_backends`]: one merged answer
/// per backend every visited shard maintains, plus the planner's own
/// per-shard mix — all computed from the same published snapshots.
#[derive(Debug)]
pub struct BackendComparison {
    /// Merged output per commonly-available backend, in [`Backend::ALL`]
    /// order.
    pub outputs: Vec<(Backend, QueryOutput)>,
    /// The planner's per-shard choice, executed on the same snapshots.
    pub chosen: QueryOutput,
}

/// One disk-backed shard: the pooled tree, its backing file, and the
/// publish-time planner statistics (swapped by the writer in place of a
/// snapshot — readers lock the tree itself, so there is nothing to swap).
struct OocShardState {
    tree: Arc<OocDcTree>,
    /// The shard's paged file (the checkpointer copies it after a flush).
    path: PathBuf,
    stats: RwLock<PartitionStats>,
}

struct Shard {
    tx: Mutex<Option<Sender<Cmd>>>,
    snapshot: Arc<RwLock<Arc<DcTree>>>,
    /// The planner's published state (same cadence as `snapshot`; the tree
    /// inside is the same `Arc`).
    plan: Arc<RwLock<Arc<PlanState>>>,
    /// `Some` in [`StorageMode::Disk`]; `snapshot` and `plan` then hold a
    /// shared empty placeholder and are never consulted.
    ooc: Option<Arc<OocShardState>>,
    writer: Mutex<Option<JoinHandle<()>>>,
}

/// A sharded, concurrent DC-tree serving engine.
///
/// Records are partitioned over `N` shards, each an owned [`DcTree`]
/// mutated only by its writer thread; ingest is an MPSC queue per shard.
/// Writers publish `Arc<DcTree>` snapshots after each applied batch, so
/// queries never block on writers: they scatter over the relevant shards'
/// snapshots and merge the per-shard [`MeasureSummary`]s (see the
/// [crate docs](crate) for why that merge is exact).
pub struct ShardedDcTree {
    catalog: Arc<SchemaCatalog>,
    shards: Vec<Shard>,
    metrics: Arc<EngineMetrics>,
    policy: PartitionPolicy,
    /// The persistent work-stealing executor (`None` = evaluate multi-shard
    /// queries sequentially on the calling thread). Outlives `shutdown` —
    /// queries keep working against the final snapshots — and is joined
    /// when the engine drops.
    pool: Option<QueryPool>,
    /// `DcTreeConfig::use_paper_fig7_containment`, hoisted so the engine
    /// can prepare ranges once against the catalog with the same
    /// containment mode every shard tree would use.
    paper_mode: bool,
    cache: Option<Arc<SharedCache>>,
    wal: Option<Arc<DurableWal>>,
    /// Ingest holds this for read around {WAL append → enqueue}; the
    /// checkpoint path holds it for write, so its LSN capture sees no
    /// half-enqueued mutation.
    ingest_gate: RwLock<()>,
    /// Role and applied-LSN frontier (see [`ReplState`]).
    repl: ReplState,
}

impl ShardedDcTree {
    /// Builds the engine over `schema` and starts one writer thread per
    /// shard. With [`EngineConfig::wal`] set, the directory is recovered
    /// first — latest checkpoint images + tail-segment replay (with any
    /// torn tail truncated) — before the engine accepts traffic.
    pub fn new(schema: CubeSchema, config: EngineConfig) -> DcResult<Self> {
        assert!(config.num_shards > 0, "need at least one shard");
        assert!(config.batch_size > 0, "batch_size must be positive");
        if config.role == EngineRole::Follower && config.wal.is_none() {
            return Err(DcError::Config(
                "a follower recovers from a replicated WAL directory; set EngineConfig::wal".into(),
            ));
        }
        // Recover the WAL directory before anything is built: checkpoint
        // images decide the starting state of the catalog and the shards.
        let recovered = match &config.wal {
            None => None,
            Some(opts) => {
                let fs: Arc<dyn WalFs> = opts.fs.clone().unwrap_or_else(|| Arc::new(StdFs));
                fs.create_dir_all(&opts.dir)?;
                let scan = WalReader::recover(&*fs, &opts.dir)?;
                let images = if scan.manifest.checkpoint_lsn > 0 {
                    if scan.manifest.shards as usize != config.num_shards {
                        return Err(DcError::Config(format!(
                            "checkpoint was taken with {} shards, engine configured with {}",
                            scan.manifest.shards, config.num_shards
                        )));
                    }
                    let mut raw = Vec::with_capacity(config.num_shards);
                    for i in 0..config.num_shards {
                        let name =
                            checkpoint_file_name(scan.manifest.checkpoint_lsn, Some(i as u32));
                        let bytes = fs.read(&opts.dir.join(&name))?.ok_or_else(|| {
                            DcError::Corrupt(format!("missing checkpoint image {name}"))
                        })?;
                        raw.push(bytes);
                    }
                    Some(raw)
                } else {
                    None
                };
                Some((fs, scan, images))
            }
        };
        let (recovered_fs, recovered_scan, images) = match recovered {
            Some((fs, scan, images)) => (Some(fs), Some(scan), images),
            None => (None, None, None),
        };
        let disk_opts = match &config.storage {
            StorageMode::Resident => None,
            StorageMode::Disk(opts) => Some(opts.clone()),
        };
        if disk_opts.is_some() && config.planner.is_some() {
            return Err(DcError::Config(
                "disk-backed storage maintains only the DC-tree descent backend; \
                 disable the planner engines"
                    .into(),
            ));
        }
        // Materialize the shard backing. Resident images parse back into
        // trees; disk images *are* the paged shard-file format and are laid
        // down under the storage directory, then opened through the buffer
        // pool. (A WAL directory's images are therefore tied to the storage
        // mode they were taken under.)
        let resident_trees: Option<Vec<DcTree>> = match (&disk_opts, &images) {
            (None, Some(raw)) => Some(
                raw.iter()
                    .map(|b| DcTree::from_bytes(b))
                    .collect::<DcResult<Vec<_>>>()?,
            ),
            _ => None,
        };
        let ooc_trees: Option<Vec<(Arc<OocDcTree>, PathBuf)>> = match &disk_opts {
            None => None,
            Some(opts) => {
                std::fs::create_dir_all(&opts.dir)?;
                let mut out = Vec::with_capacity(config.num_shards);
                for i in 0..config.num_shards {
                    let path = opts.dir.join(format!("shard-{i}.dct"));
                    let tree = match &images {
                        Some(raw) => {
                            std::fs::write(&path, &raw[i])?;
                            OocDcTree::open(&path, config.tree, opts.ooc)?
                        }
                        None => OocDcTree::create(&path, schema.clone(), config.tree, opts.ooc)?,
                    };
                    out.push((Arc::new(tree), path));
                }
                Some(out)
            }
        };
        // Before imaging, the checkpoint path catches every shard up to the
        // full catalog epoch, so every image carries the complete master
        // schema — shard 0's restores the catalog exactly.
        let schema = if let Some(trees) = &resident_trees {
            trees[0].schema().clone()
        } else if images.is_some() {
            ooc_trees.as_ref().expect("disk images imply disk shards")[0]
                .0
                .schema()
        } else {
            schema
        };
        if let PartitionPolicy::ByDimension { dim, level } = config.policy {
            let h = schema.dim(dim);
            assert!(
                level <= h.top_level(),
                "partition level {level} above the hierarchy"
            );
        }
        let catalog = Arc::new(SchemaCatalog::new(schema.clone()));
        let metrics = Arc::new(EngineMetrics::new(config.num_shards));
        let cache = config.cache.map(|c| Arc::new(SharedCache::new(c)));
        let wal = match (&config.wal, &recovered_fs, &recovered_scan) {
            (Some(opts), Some(fs), Some(scan)) => {
                let d = &metrics.durability;
                d.recovery_checkpoint_lsn
                    .store(scan.manifest.checkpoint_lsn, Relaxed);
                d.recovery_replayed_entries
                    .store(scan.entries.len() as u64, Relaxed);
                d.recovery_truncated_bytes
                    .store(scan.truncated_bytes, Relaxed);
                if config.role == EngineRole::Follower {
                    // A follower only recovers from the replicated
                    // directory; it appends nothing, so it opens no writer
                    // (and must not: a local fresh segment would collide
                    // with the next segment shipped from the primary).
                    None
                } else {
                    let writer = WalWriter::open(
                        Arc::clone(fs),
                        &opts.dir,
                        WalConfig {
                            segment_bytes: opts.segment_bytes,
                            sync: opts.sync,
                        },
                        scan,
                        config.num_shards as u32,
                    )?;
                    Some(Arc::new(DurableWal {
                        writer: Mutex::new(writer),
                        fs: Arc::clone(fs),
                        dir: opts.dir.clone(),
                        checkpoint_every: opts.checkpoint_every,
                        group_commit: matches!(opts.sync, SyncPolicy::GroupCommitMs(_)),
                        since_checkpoint: AtomicU64::new(0),
                        checkpoint_lock: Mutex::new(()),
                    }))
                }
            }
            _ => None,
        };
        // The replication frontier starts at the recovered tip; the STATS
        // section is gated on actually participating in replication (any
        // WAL-backed engine can serve fetches; followers always count).
        let recovered_lsn = recovered_scan.as_ref().map_or(0, |s| s.next_lsn - 1);
        if config.wal.is_some() {
            let r = &metrics.replication;
            r.enabled.store(1, Relaxed);
            r.follower
                .store((config.role == EngineRole::Follower) as u64, Relaxed);
            r.applied_lsn.store(recovered_lsn, Relaxed);
        }
        let mut shards = Vec::with_capacity(config.num_shards);
        if let Some(ooc_trees) = ooc_trees {
            // Disk mode: queries lock the pooled tree directly, so the
            // resident snapshot/plan slots hold one shared empty
            // placeholder and are never consulted.
            let placeholder = Arc::new(DcTree::new(schema, config.tree));
            for (shard_id, (tree, path)) in ooc_trees.into_iter().enumerate() {
                let snapshot = Arc::new(RwLock::new(Arc::clone(&placeholder)));
                let plan = Arc::new(RwLock::new(capture_plan_state(
                    &placeholder,
                    Arc::clone(&placeholder),
                    None,
                )));
                let stats = capture_ooc_stats(&tree.read(), tree.pool());
                let state = Arc::new(OocShardState {
                    tree,
                    path,
                    stats: RwLock::new(stats),
                });
                let (tx, rx) = channel();
                let writer = spawn_writer_ooc(
                    shard_id,
                    Arc::clone(&state),
                    rx,
                    Arc::clone(&catalog),
                    Arc::clone(&metrics),
                    config.batch_size,
                    cache.clone(),
                    wal.clone(),
                );
                shards.push(Shard {
                    tx: Mutex::new(Some(tx)),
                    snapshot,
                    plan,
                    ooc: Some(state),
                    writer: Mutex::new(Some(writer)),
                });
            }
        } else {
            let mut shard_trees: Vec<DcTree> = match resident_trees {
                Some(trees) => trees,
                None => (0..config.num_shards)
                    .map(|_| DcTree::new(schema.clone(), config.tree))
                    .collect(),
            };
            for (shard_id, tree) in shard_trees.drain(..).enumerate() {
                // Aux engines are rebuilt from the (possibly recovered) tree:
                // checkpoint images restore trees, never derived indexes.
                let aux = config.planner.map(|opts| AuxEngines::build(&tree, opts));
                let snap = Arc::new(tree.clone());
                let snapshot = Arc::new(RwLock::new(Arc::clone(&snap)));
                let plan = Arc::new(RwLock::new(capture_plan_state(&tree, snap, aux.as_ref())));
                let (tx, rx) = channel();
                let writer = spawn_writer(
                    shard_id,
                    tree,
                    rx,
                    Arc::clone(&snapshot),
                    Arc::clone(&plan),
                    aux,
                    Arc::clone(&catalog),
                    Arc::clone(&metrics),
                    config.batch_size,
                    cache.clone(),
                    wal.clone(),
                );
                shards.push(Shard {
                    tx: Mutex::new(Some(tx)),
                    snapshot,
                    plan,
                    ooc: None,
                    writer: Mutex::new(Some(writer)),
                });
            }
        }
        // Disk-mode queries evaluate sequentially under the shard read
        // locks (the work-stealing pool scatters over owned snapshots,
        // which disk shards do not publish), so the pool is not started.
        let pool = if disk_opts.is_none() && config.parallel_queries && config.num_shards > 1 {
            let workers = config.pool_workers.unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            });
            (workers >= 1).then(|| QueryPool::new(workers, Arc::clone(&metrics)))
        } else {
            None
        };
        let engine = ShardedDcTree {
            catalog,
            shards,
            metrics,
            policy: config.policy,
            pool,
            paper_mode: config.tree.use_paper_fig7_containment,
            cache,
            wal,
            ingest_gate: RwLock::new(()),
            repl: ReplState {
                role: config.role,
                applied: Mutex::new(recovered_lsn),
                caught_up: Condvar::new(),
            },
        };
        // Replay the recovered tail over the checkpoint state. The entries
        // are already durable in their segments, so they are NOT re-logged
        // (`log_to_wal = false`) — a double-open must not duplicate them.
        if let Some(scan) = &recovered_scan {
            for entry in &scan.entries {
                match entry {
                    WalEntry::Insert { paths, measure } => {
                        engine.ingest(paths, *measure, false)?;
                    }
                    WalEntry::Delete { paths, measure } => {
                        engine.remove(paths, *measure, false)?;
                    }
                }
            }
            if !scan.entries.is_empty() {
                engine.flush();
            }
        }
        engine.refresh_pool_gauges();
        Ok(engine)
    }

    /// `true` when the shards are disk-backed ([`StorageMode::Disk`]).
    pub fn is_disk(&self) -> bool {
        self.shards.first().is_some_and(|s| s.ooc.is_some())
    }

    /// Serializes the STATS payload, refreshing the `buffer_pool` gauges
    /// from the live pools first (disk mode only; resident engines emit no
    /// `buffer_pool` section).
    pub fn stats_json(&self) -> String {
        self.refresh_pool_gauges();
        self.metrics.to_json()
    }

    /// Sums the per-shard buffer-pool counters into the STATS gauges.
    fn refresh_pool_gauges(&self) {
        let mut agg = OocPoolStats::default();
        let mut any = false;
        for shard in &self.shards {
            if let Some(state) = &shard.ooc {
                let s = state.tree.pool_stats();
                agg.hits += s.hits;
                agg.misses += s.misses;
                agg.evictions += s.evictions;
                agg.writebacks += s.writebacks;
                agg.resident += s.resident;
                agg.capacity += s.capacity;
                any = true;
            }
        }
        if !any {
            return;
        }
        let bp = &self.metrics.buffer_pool;
        bp.enabled.store(1, Relaxed);
        bp.hits.store(agg.hits, Relaxed);
        bp.misses.store(agg.misses, Relaxed);
        bp.evictions.store(agg.evictions, Relaxed);
        bp.writebacks.store(agg.writebacks, Relaxed);
        bp.resident.store(agg.resident, Relaxed);
        bp.capacity.store(agg.capacity, Relaxed);
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The engine's metric registry.
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// A clone of the current master schema (for parsing dc-ql against).
    pub fn schema(&self) -> CubeSchema {
        self.catalog.schema()
    }

    /// Runs `f` against the master schema without cloning it.
    pub fn with_schema<R>(&self, f: impl FnOnce(&CubeSchema) -> R) -> R {
        self.catalog.with_schema(f)
    }

    // ------------------------------------------------------------------
    // Ingest
    // ------------------------------------------------------------------

    /// Asynchronously inserts a raw record (one top→leaf attribute path per
    /// dimension plus the measure). Returns once the record is durably
    /// logged (if a WAL is configured) and enqueued on its shard; call
    /// [`flush`](Self::flush) to wait for visibility.
    pub fn insert_raw<S: AsRef<str>>(&self, paths: &[Vec<S>], measure: Measure) -> DcResult<()> {
        self.ensure_writable()?;
        self.ingest(paths, measure, true)
    }

    /// Asynchronously inserts a whole batch of raw records — the
    /// `INSERT_BATCH` fast path. The batch is logged as **one WAL frame
    /// group** (one buffered write, one fsync decision), interned once
    /// against the catalog, and handed to each destination shard as a
    /// single batch command whose writer applies it through the tree's
    /// amortized batch insert. Returns once the group is durably logged
    /// and enqueued; call [`flush`](Self::flush) for visibility.
    pub fn insert_batch_raw<S: AsRef<str>>(
        &self,
        batch: &[(Vec<Vec<S>>, Measure)],
    ) -> DcResult<()> {
        self.ensure_writable()?;
        if batch.is_empty() {
            return Ok(());
        }
        {
            let _gate = self.ingest_gate.read();
            // Intern and route the whole batch before logging any of it:
            // the group is all-or-nothing at the validation boundary, so a
            // batch with one malformed record leaves the WAL untouched
            // instead of poisoning recovery with entries the catalog
            // rejected.
            let mut per_shard: Vec<Vec<Record>> = vec![Vec::new(); self.shards.len()];
            let mut epoch = 0u64;
            for (paths, measure) in batch {
                let (record, e) = self.catalog.intern(paths, *measure)?;
                let shard = self.route(paths, &record)?;
                epoch = epoch.max(e);
                per_shard[shard].push(record);
            }
            self.append_wal_batch(batch)?;
            self.metrics.inserts.fetch_add(batch.len() as u64, Relaxed);
            self.metrics.insert_batches.fetch_add(1, Relaxed);
            self.metrics
                .insert_batch_records
                .fetch_add(batch.len() as u64, Relaxed);
            for (shard, records) in per_shard.into_iter().enumerate() {
                if records.is_empty() {
                    continue;
                }
                self.metrics.shards[shard]
                    .queue_depth
                    .fetch_add(records.len() as u64, Relaxed);
                self.send(shard, Cmd::InsertBatch { records, epoch })?;
            }
        }
        self.maybe_auto_checkpoint()
    }

    /// Asynchronously deletes one record matching the paths and measure.
    /// A miss is a silent no-op, matching `dc-durable`'s replay contract.
    pub fn delete_raw<S: AsRef<str>>(&self, paths: &[Vec<S>], measure: Measure) -> DcResult<()> {
        self.ensure_writable()?;
        self.remove(paths, measure, true)
    }

    fn ensure_writable(&self) -> DcResult<()> {
        if self.repl.role == EngineRole::Follower {
            return Err(DcError::Config(
                "engine is a read-only follower; promote it before writing".into(),
            ));
        }
        Ok(())
    }

    fn ingest<S: AsRef<str>>(
        &self,
        paths: &[Vec<S>],
        measure: Measure,
        log_to_wal: bool,
    ) -> DcResult<()> {
        {
            let _gate = self.ingest_gate.read();
            // Intern and route before logging: a record the catalog
            // rejects must never reach the WAL, or recovery (and every
            // follower tailing the log) replays the rejection as
            // corruption. Interning's only side effect on failure-free
            // paths later is new vocabulary, which is harmless.
            let (record, epoch) = self.catalog.intern(paths, measure)?;
            let shard = self.route(paths, &record)?;
            if log_to_wal {
                self.append_wal(paths, measure, false)?;
            }
            self.metrics.inserts.fetch_add(1, Relaxed);
            self.metrics.shards[shard].queue_depth.fetch_add(1, Relaxed);
            self.send(shard, Cmd::Insert { record, epoch })?;
        }
        if log_to_wal {
            self.maybe_auto_checkpoint()?;
        }
        Ok(())
    }

    fn remove<S: AsRef<str>>(
        &self,
        paths: &[Vec<S>],
        measure: Measure,
        log_to_wal: bool,
    ) -> DcResult<()> {
        {
            let _gate = self.ingest_gate.read();
            // Validate-by-interning before logging, as in `ingest`.
            let (record, epoch) = self.catalog.intern(paths, measure)?;
            let shard = self.route(paths, &record)?;
            if log_to_wal {
                self.append_wal(paths, measure, true)?;
            }
            self.metrics.deletes.fetch_add(1, Relaxed);
            self.metrics.shards[shard].queue_depth.fetch_add(1, Relaxed);
            self.send(shard, Cmd::Delete { record, epoch })?;
        }
        if log_to_wal {
            self.maybe_auto_checkpoint()?;
        }
        Ok(())
    }

    fn append_wal<S: AsRef<str>>(
        &self,
        paths: &[Vec<S>],
        measure: Measure,
        delete: bool,
    ) -> DcResult<()> {
        let Some(wal) = &self.wal else { return Ok(()) };
        let owned: Vec<Vec<String>> = paths
            .iter()
            .map(|d| d.iter().map(|s| s.as_ref().to_string()).collect())
            .collect();
        let entry = if delete {
            WalEntry::Delete {
                paths: owned,
                measure,
            }
        } else {
            WalEntry::Insert {
                paths: owned,
                measure,
            }
        };
        let lsn = {
            let mut w = wal.writer.lock();
            let lsn = w.append(&entry)?;
            self.refresh_wal_gauges(&w);
            lsn
        };
        wal.since_checkpoint.fetch_add(1, Relaxed);
        self.note_applied(lsn);
        Ok(())
    }

    /// Logs a whole insert batch as one WAL frame group: the writer lock is
    /// taken once and the configured sync policy decides once for the
    /// group. Entries stay per-record `Insert` frames, so recovery and
    /// replication replay are byte-identical to a looped `INSERT` stream.
    fn append_wal_batch<S: AsRef<str>>(&self, batch: &[(Vec<Vec<S>>, Measure)]) -> DcResult<()> {
        let Some(wal) = &self.wal else { return Ok(()) };
        let entries: Vec<WalEntry> = batch
            .iter()
            .map(|(paths, measure)| WalEntry::Insert {
                paths: paths
                    .iter()
                    .map(|d| d.iter().map(|s| s.as_ref().to_string()).collect())
                    .collect(),
                measure: *measure,
            })
            .collect();
        let lsn = {
            let mut w = wal.writer.lock();
            let lsn = w.append_batch(&entries)?;
            self.refresh_wal_gauges(&w);
            lsn
        };
        wal.since_checkpoint
            .fetch_add(entries.len() as u64, Relaxed);
        self.note_applied(lsn);
        Ok(())
    }

    /// Copies the WAL writer's counters into the STATS gauges (called with
    /// the writer lock held).
    fn refresh_wal_gauges(&self, w: &WalWriter) {
        let stats = w.stats();
        let d = &self.metrics.durability;
        d.wal_appends.store(stats.appends, Relaxed);
        d.wal_syncs.store(stats.syncs, Relaxed);
        d.wal_rotations.store(stats.rotations, Relaxed);
        d.wal_segment.store(w.segment_seq(), Relaxed);
        d.wal_last_lsn.store(w.lsn(), Relaxed);
        d.wal_synced_lsn.store(w.synced_lsn(), Relaxed);
    }

    fn maybe_auto_checkpoint(&self) -> DcResult<()> {
        let Some(wal) = &self.wal else { return Ok(()) };
        if wal.checkpoint_every == 0 || wal.since_checkpoint.load(Relaxed) < wal.checkpoint_every {
            return Ok(());
        }
        // Someone else checkpointing right now already covers these
        // mutations; skipping keeps the ingest path non-blocking.
        if let Some(_one_at_a_time) = wal.checkpoint_lock.try_lock() {
            self.checkpoint_locked(wal)?;
        }
        Ok(())
    }

    /// Takes a checkpoint: quiesces ingest, catches every shard up to the
    /// full catalog epoch, images each shard at the captured LSN, then
    /// commits the manifest and deletes superseded segments and images.
    /// Returns the checkpoint LSN. Fails with [`DcError::Config`] when the
    /// engine has no WAL.
    pub fn checkpoint(&self) -> DcResult<u64> {
        let Some(wal) = &self.wal else {
            return Err(DcError::Config("engine has no WAL configured".into()));
        };
        let _one_at_a_time = wal.checkpoint_lock.lock();
        self.checkpoint_locked(wal)
    }

    /// The checkpoint body (caller holds [`DurableWal::checkpoint_lock`]).
    fn checkpoint_locked(&self, wal: &DurableWal) -> DcResult<u64> {
        // Phase 1 (under the ingest gate): capture an LSN no in-flight
        // mutation straddles, rotate past it, and snapshot every shard at
        // exactly that point.
        let (lsn, start_seq, snaps) = {
            let _gate = self.ingest_gate.write();
            let (lsn, start_seq) = {
                let mut w = wal.writer.lock();
                let r = w.prepare_checkpoint()?;
                self.refresh_wal_gauges(&w);
                r
            };
            let epoch = self.catalog.epoch();
            for i in 0..self.shards.len() {
                self.send(i, Cmd::Catchup { epoch })?;
            }
            self.flush();
            let mut snaps: Vec<CheckpointImage> = Vec::with_capacity(self.shards.len());
            for (i, shard) in self.shards.iter().enumerate() {
                match &shard.ooc {
                    None => snaps.push(CheckpointImage::Resident(self.shard_snapshot(i))),
                    Some(state) => {
                        // Write back every dirty frame and fsync, then copy
                        // the complete paged file as the image. Ingest is
                        // gated and the flush barrier above drained the
                        // writer, so the file cannot move underneath.
                        state.tree.flush()?;
                        snaps.push(CheckpointImage::Disk(std::fs::read(&state.path)?));
                    }
                }
            }
            (lsn, start_seq, snaps)
        };
        // Phase 2 (ingest running again): serialize the images, then commit.
        // A crash anywhere in here recovers through the *previous*
        // checkpoint — the old manifest and segments are still intact.
        for (i, snap) in snaps.into_iter().enumerate() {
            let bytes = match snap {
                CheckpointImage::Resident(tree) => tree.to_bytes(),
                CheckpointImage::Disk(bytes) => bytes,
            };
            wal.fs.write_atomic(
                &wal.dir.join(checkpoint_file_name(lsn, Some(i as u32))),
                &bytes,
            )?;
        }
        {
            let mut w = wal.writer.lock();
            w.commit_checkpoint(lsn, start_seq, self.shards.len() as u32)?;
            self.refresh_wal_gauges(&w);
        }
        for name in wal.fs.list(&wal.dir)? {
            if let Some((image_lsn, _)) = parse_checkpoint_file_name(&name) {
                if image_lsn != lsn {
                    wal.fs.remove(&wal.dir.join(&name))?;
                }
            }
        }
        wal.since_checkpoint.store(0, Relaxed);
        let d = &self.metrics.durability;
        d.checkpoints.fetch_add(1, Relaxed);
        d.checkpoint_last_lsn.store(lsn, Relaxed);
        Ok(lsn)
    }

    fn send(&self, shard: usize, cmd: Cmd) -> DcResult<()> {
        let guard = self.shards[shard].tx.lock();
        let Some(tx) = guard.as_ref() else {
            return Err(DcError::Corrupt("engine is shut down".into()));
        };
        tx.send(cmd)
            .map_err(|_| DcError::Corrupt(format!("shard {shard} writer died")))
    }

    /// The shard a record routes to.
    fn route<S: AsRef<str>>(&self, paths: &[Vec<S>], record: &Record) -> DcResult<usize> {
        let n = self.shards.len();
        match self.policy {
            PartitionPolicy::Hash => {
                // FNV-1a over the path strings: stable across runs, so a
                // WAL replay routes every record back to some shard
                // deterministically.
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for dim in paths {
                    for name in dim {
                        for b in name.as_ref().bytes() {
                            h ^= u64::from(b);
                            h = h.wrapping_mul(0x1000_0000_01b3);
                        }
                        h ^= 0xff;
                        h = h.wrapping_mul(0x1000_0000_01b3);
                    }
                }
                Ok((h % n as u64) as usize)
            }
            PartitionPolicy::ByDimension { dim, level } => {
                let leaf = record.dims[dim.as_usize()];
                let anchor = self
                    .catalog
                    .with_schema(|s| s.dim(dim).ancestor_at(leaf, level))?;
                Ok(anchor.index() as usize % n)
            }
        }
    }

    // ------------------------------------------------------------------
    // Visibility control
    // ------------------------------------------------------------------

    /// Blocks until everything enqueued before this call is applied and
    /// visible in published snapshots, on every shard. Also a durability
    /// barrier: with a WAL configured, everything logged before this call
    /// is synced when it returns.
    pub fn flush(&self) {
        let mut acks = Vec::with_capacity(self.shards.len());
        for i in 0..self.shards.len() {
            let (tx, rx) = channel();
            if self.send(i, Cmd::Flush(tx)).is_ok() {
                acks.push(rx);
            }
        }
        for rx in acks {
            let _ = rx.recv();
        }
        if let Some(wal) = &self.wal {
            let mut w = wal.writer.lock();
            let _ = w.sync();
            self.refresh_wal_gauges(&w);
        }
    }

    /// Stops the engine: writers drain their queues, publish a final
    /// snapshot, and exit; their threads are joined. Queries keep working
    /// against the final snapshots; further ingest fails.
    pub fn shutdown(&self) {
        for shard in &self.shards {
            let tx = shard.tx.lock().take();
            if let Some(tx) = tx {
                let _ = tx.send(Cmd::Shutdown);
                // Sender drops here; the writer drains what's left.
            }
            let writer = shard.writer.lock().take();
            if let Some(writer) = writer {
                let _ = writer.join();
            }
        }
        if let Some(wal) = &self.wal {
            let _ = wal.writer.lock().sync();
        }
        // Disk shards: leave a complete on-disk image behind (writers are
        // joined, so nothing mutates underneath the flush).
        for shard in &self.shards {
            if let Some(state) = &shard.ooc {
                let _ = state.tree.flush();
            }
        }
    }

    // ------------------------------------------------------------------
    // Replication
    // ------------------------------------------------------------------

    /// The engine's replication role.
    pub fn role(&self) -> EngineRole {
        self.repl.role
    }

    /// The replication frontier. On a primary: the highest LSN logged to
    /// its WAL — what a client quotes to a follower's `WAIT_LSN` to read
    /// its own write. On a follower: the highest LSN applied *and
    /// visible* (published after each replicated batch is flushed). `0`
    /// before any mutation.
    pub fn applied_lsn(&self) -> u64 {
        *self.repl.applied.lock()
    }

    /// Advances the applied frontier (monotonic max) and wakes `WAIT_LSN`
    /// waiters.
    fn note_applied(&self, lsn: u64) {
        let mut applied = self.repl.applied.lock();
        if lsn > *applied {
            *applied = lsn;
            self.metrics.replication.applied_lsn.store(lsn, Relaxed);
            self.repl.caught_up.notify_all();
        }
    }

    /// Applies one replicated WAL entry (follower ingest path: nothing is
    /// re-logged, and the read-only guard is bypassed — the entry is
    /// already durable in the replicated segment). The applied frontier
    /// does NOT advance here: [`flush`](Self::flush) the batch, then
    /// [`publish_applied`](Self::publish_applied) — so `WAIT_LSN n`
    /// returning means LSN `n` is both applied *and visible* to queries
    /// (the read-your-LSN contract).
    pub fn apply_replicated(&self, entry: &WalEntry) -> DcResult<()> {
        match entry {
            WalEntry::Insert { paths, measure } => self.ingest(paths, *measure, false),
            WalEntry::Delete { paths, measure } => self.remove(paths, *measure, false),
        }
    }

    /// Advances the replication frontier to `lsn` (monotonic max) and
    /// wakes `WAIT_LSN` waiters. Call only once every entry up to `lsn`
    /// is visible (after [`flush`](Self::flush)).
    pub fn publish_applied(&self, lsn: u64) {
        self.note_applied(lsn);
    }

    /// Blocks until [`applied_lsn`](Self::applied_lsn) reaches `lsn` (the
    /// read-your-LSN barrier behind `WAIT_LSN` / `MIN_LSN`). Returns the
    /// applied LSN at wake-up, or [`DcError::Config`] on timeout.
    pub fn wait_lsn(&self, lsn: u64, timeout: Duration) -> DcResult<u64> {
        self.metrics.replication.waits.fetch_add(1, Relaxed);
        let deadline = Instant::now() + timeout;
        let mut applied = self.repl.applied.lock();
        while *applied < lsn {
            let now = Instant::now();
            if now >= deadline {
                self.metrics.replication.wait_timeouts.fetch_add(1, Relaxed);
                return Err(DcError::Config(format!(
                    "WAIT_LSN {lsn} timed out at applied lsn {}",
                    *applied
                )));
            }
            let _ = self.repl.caught_up.wait_for(&mut applied, deadline - now);
        }
        Ok(*applied)
    }

    /// Serves a follower's log fetch from this engine's WAL directory:
    /// every live segment holding entries past `from_lsn`, or a
    /// `NeedCheckpoint` redirect when `from_lsn` predates the oldest
    /// retained segment. Requires a WAL (primary side of replication).
    pub fn fetch_segments(&self, from_lsn: u64) -> DcResult<FetchOutcome> {
        let Some(wal) = &self.wal else {
            return Err(DcError::Config(
                "engine has no WAL to replicate from; configure EngineConfig::wal".into(),
            ));
        };
        let out = ship::fetch_segments(&*wal.fs, &wal.dir, from_lsn)?;
        let r = &self.metrics.replication;
        r.segment_fetches.fetch_add(1, Relaxed);
        match &out {
            FetchOutcome::NeedCheckpoint { .. } => {
                r.checkpoint_redirects.fetch_add(1, Relaxed);
            }
            FetchOutcome::Segments(segs) => {
                r.segments_shipped.fetch_add(segs.len() as u64, Relaxed);
                let bytes: u64 = segs.iter().map(|s| s.bytes.len() as u64).sum();
                r.bytes_shipped.fetch_add(bytes, Relaxed);
            }
        }
        Ok(out)
    }

    /// Serves the latest committed checkpoint bundle (manifest + shard
    /// images) for a follower bootstrap. Requires a WAL.
    pub fn fetch_checkpoint(&self) -> DcResult<CheckpointBundle> {
        let Some(wal) = &self.wal else {
            return Err(DcError::Config(
                "engine has no WAL to replicate from; configure EngineConfig::wal".into(),
            ));
        };
        let bundle = ship::fetch_checkpoint(&*wal.fs, &wal.dir)?;
        self.metrics
            .replication
            .checkpoint_fetches
            .fetch_add(1, Relaxed);
        Ok(bundle)
    }

    /// The published snapshot of one shard (primarily for tests and
    /// tools). Disk-backed shards publish no snapshots — this returns
    /// their empty placeholder; query through the engine instead.
    pub fn shard_snapshot(&self, shard: usize) -> Arc<DcTree> {
        Arc::clone(&self.shards[shard].snapshot.read())
    }

    /// Total records across the shards (published snapshots, or the live
    /// disk trees in disk mode).
    pub fn len(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| match &s.ooc {
                Some(state) => state.tree.len(),
                None => s.snapshot.read().len(),
            })
            .sum()
    }

    /// `true` when no published snapshot holds any record.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // ------------------------------------------------------------------
    // Queries (scatter-gather over snapshots)
    // ------------------------------------------------------------------

    /// The merged summary of all records inside `range`, across shards —
    /// answered from the aggregate cache when possible.
    pub fn range_summary(&self, range: &Mds) -> DcResult<MeasureSummary> {
        let t0 = Instant::now();
        // A full summary exposes MIN/MAX, so delete-degraded cache entries
        // may not serve it.
        let total = self.cached_summary(range, true)?;
        self.metrics.queries.fetch_add(1, Relaxed);
        self.metrics.query_latency.record(t0.elapsed());
        Ok(total)
    }

    /// Answers `range` through the cache: exact hit → no descent; semantic
    /// hit → descend only the remainder MDSs and merge onto the cached
    /// base; miss → full descent. Computed summaries are inserted back
    /// unless a snapshot publish intervened (the version check in
    /// `dc-cache` — a summary computed from superseded snapshots must not
    /// be cached).
    ///
    /// Lock order is catalog → cache here, and writers never hold the
    /// catalog lock while publishing to the cache, so the two paths cannot
    /// deadlock.
    fn cached_summary(&self, range: &Mds, need_extrema: bool) -> DcResult<MeasureSummary> {
        let Some(cache) = &self.cache else {
            return Ok(self.descend(range)?.0);
        };
        let t0 = Instant::now();
        let looked = self.catalog.with_schema(|schema| {
            // Partial-width MDSs (fewer dims than the schema) bypass the
            // cache: containment and delta matching assume full width.
            if range.num_dims() != schema.num_dims() {
                return Ok(None);
            }
            cache.lookup(schema, range, need_extrema).map(Some)
        })?;
        let cm = &self.metrics.cache;
        cm.lookup_latency.record(t0.elapsed());
        match looked {
            None => Ok(self.descend(range)?.0),
            Some(Lookup::Hit(summary)) => {
                cm.hits.fetch_add(1, Relaxed);
                Ok(summary)
            }
            Some(Lookup::Semantic {
                base,
                exact_extrema,
                remainders,
                version,
            }) => {
                cm.semantic_hits.fetch_add(1, Relaxed);
                let mut total = base;
                let mut pages = 0;
                for term in &remainders {
                    let (part, p) = self.descend(term)?;
                    total.merge(&part);
                    pages += p;
                }
                // Only an extrema-exact base yields a summary fit to cache.
                if exact_extrema {
                    self.note_insert(cache, version, range, total, pages);
                }
                Ok(total)
            }
            Some(Lookup::Miss { version }) => {
                cm.misses.fetch_add(1, Relaxed);
                let (total, pages) = self.descend(range)?;
                self.note_insert(cache, version, range, total, pages);
                Ok(total)
            }
        }
    }

    /// Scatter-gathers `range` over the shard snapshots, returning the
    /// merged summary and the logical pages read by the descent (the
    /// benefit a future cache hit reaps; measured from the shared snapshot
    /// I/O counters, so concurrent queries make it a heuristic, not an
    /// exact cost).
    fn descend(&self, range: &Mds) -> DcResult<(MeasureSummary, u64)> {
        if self.is_disk() {
            return self.descend_ooc(range);
        }
        let parts = self.eval_shards(range, self.paper_mode, |snap, q| {
            let r0 = snap.io_stats().reads;
            let summary = snap.range_summary_prepared(q)?;
            Ok((summary, snap.io_stats().reads.saturating_sub(r0)))
        })?;
        let mut total = MeasureSummary::empty();
        let mut pages = 0;
        for (part, p) in &parts {
            total.merge(part);
            pages += p;
        }
        Ok((total, pages))
    }

    /// Inserts a freshly computed summary, updating the cache metrics.
    fn note_insert(
        &self,
        cache: &SharedCache,
        version: u64,
        range: &Mds,
        summary: MeasureSummary,
        pages: u64,
    ) {
        let Some(stats) = cache.insert_if_current(version, range.clone(), summary, pages) else {
            return;
        };
        let cm = &self.metrics.cache;
        cm.insertions.fetch_add(1, Relaxed);
        cm.evictions.fetch_add(stats.evictions, Relaxed);
        cm.entries.store(stats.entries, Relaxed);
    }

    /// Evaluates `eval` against every relevant shard's snapshot — on the
    /// persistent query pool when one is configured and more than one shard
    /// is visited, sequentially on the calling thread otherwise.
    ///
    /// The range is prepared **once** against the global catalog (with the
    /// given containment mode) and shared by every shard evaluation: shard
    /// schemas replay the catalog's intern log, so they are prefixes of the
    /// catalog schema — same `ValueId`s, same parents — and the traversal
    /// only ever probes shard-known values against the prepared bitsets.
    /// Shards that cannot contribute (no query value interned in some
    /// dimension) are skipped *before* counting a visit.
    fn eval_shards<R: Send + 'static>(
        &self,
        range: &Mds,
        paper_mode: bool,
        eval: impl Fn(&DcTree, &PreparedRange) -> DcResult<R> + Send + Sync + 'static,
    ) -> DcResult<Vec<R>> {
        let prepared = self
            .catalog
            .with_schema(|schema| PreparedRange::with_mode(schema, range, paper_mode))?;
        let catalog_values = self.catalog.with_schema(schema_total_values);
        // Pre-sized once: per-query allocation count must not grow with the
        // number of visited shards (asserted by `query_bench`).
        let mut snaps: Vec<(usize, Arc<DcTree>)> = Vec::with_capacity(self.shards.len());
        for s in self.relevant_shards(range)? {
            let snap = self.shard_snapshot(s);
            if !shard_covers(range, snap.schema(), catalog_values) {
                continue;
            }
            self.metrics.shard_visits.fetch_add(1, Relaxed);
            snaps.push((s, snap));
        }
        match &self.pool {
            Some(pool) if snaps.len() > 1 => pool.scatter_eval(snaps, prepared, eval),
            _ => {
                // Explicit loop rather than `collect::<DcResult<Vec<_>>>`:
                // the Result shunt drops the exact size hint, and the
                // resulting growth reallocations would scale with visits.
                let mut out = Vec::with_capacity(snaps.len());
                for (_, snap) in &snaps {
                    out.push(eval(snap, &prepared)?);
                }
                Ok(out)
            }
        }
    }

    /// The disk-mode twin of [`Self::descend`]: merges the shard answers
    /// and the buffer-pool page *touches* the descents cost (hot or cold —
    /// the currency the cost model estimates in).
    fn descend_ooc(&self, range: &Mds) -> DcResult<(MeasureSummary, u64)> {
        let parts = self.eval_shards_ooc(range, self.paper_mode, |tree, q| {
            tree.range_summary_prepared(q)
        })?;
        let mut total = MeasureSummary::empty();
        let mut pages = 0;
        for (part, p) in &parts {
            total.merge(part);
            pages += p;
        }
        Ok((total, pages))
    }

    /// Evaluates `eval` against every relevant disk shard, sequentially,
    /// under each shard's read lock (the pooled store is internally
    /// concurrent; the lock only orders a query against whole writer
    /// batches). Returns each shard's result plus its pool-touch delta —
    /// heuristic under concurrent queries, same as the resident counters.
    fn eval_shards_ooc<R>(
        &self,
        range: &Mds,
        paper_mode: bool,
        mut eval: impl FnMut(&PagedDcTree<OocStore>, &PreparedRange) -> DcResult<R>,
    ) -> DcResult<Vec<(R, u64)>> {
        let prepared = self
            .catalog
            .with_schema(|schema| PreparedRange::with_mode(schema, range, paper_mode))?;
        let catalog_values = self.catalog.with_schema(schema_total_values);
        let mut out = Vec::with_capacity(self.shards.len());
        for s in self.relevant_shards(range)? {
            let state = self.shards[s].ooc.as_ref().expect("disk-mode shard");
            let tree = state.tree.read();
            if !shard_covers(range, tree.schema(), catalog_values) {
                continue;
            }
            self.metrics.shard_visits.fetch_add(1, Relaxed);
            let p0 = state.tree.pool_stats();
            let r = eval(&tree, &prepared)?;
            let p1 = state.tree.pool_stats();
            let pages = (p1.hits + p1.misses).saturating_sub(p0.hits + p0.misses);
            out.push((r, pages));
        }
        Ok(out)
    }

    /// One aggregate over `range` (`None` when the op is undefined on an
    /// empty selection, e.g. `AVG`). SUM/COUNT/AVG tolerate cache entries
    /// whose extrema were degraded by deletes; MIN/MAX do not.
    pub fn range_query(&self, range: &Mds, op: AggregateOp) -> DcResult<Option<f64>> {
        let t0 = Instant::now();
        let need_extrema = matches!(op, AggregateOp::Min | AggregateOp::Max);
        let total = self.cached_summary(range, need_extrema)?;
        self.metrics.queries.fetch_add(1, Relaxed);
        self.metrics.query_latency.record(t0.elapsed());
        Ok(total.eval(op))
    }

    /// Grouped summaries at `(dim, level)` under `filter`, merged across
    /// shards. Groups are keyed by `ValueId`, which the catalog keeps
    /// consistent across all shards, so same-key merging is sound.
    pub fn group_by(
        &self,
        dim: DimensionId,
        level: Level,
        filter: &Mds,
    ) -> DcResult<Vec<(ValueId, MeasureSummary)>> {
        let t0 = Instant::now();
        // `DcTree::group_by` always prepares in the sound containment mode,
        // so the shared preparation does too.
        let parts: Vec<Vec<(ValueId, MeasureSummary)>> = if self.is_disk() {
            self.eval_shards_ooc(filter, false, |tree, q| {
                tree.group_by_prepared(dim, level, q)
            })?
            .into_iter()
            .map(|(groups, _)| groups)
            .collect()
        } else {
            self.eval_shards(filter, false, move |snap, q| {
                snap.group_by_prepared(dim, level, q)
            })?
        };
        let mut merged: BTreeMap<ValueId, MeasureSummary> = BTreeMap::new();
        for groups in parts {
            for (value, summary) in groups {
                merged
                    .entry(value)
                    .or_insert_with(MeasureSummary::empty)
                    .merge(&summary);
            }
        }
        self.metrics.queries.fetch_add(1, Relaxed);
        self.metrics.query_latency.record(t0.elapsed());
        Ok(merged.into_iter().collect())
    }

    // ------------------------------------------------------------------
    // Planned queries (dc-plan)
    // ------------------------------------------------------------------

    /// Executes a resolved dc-ql statement through the cost-based planner:
    /// each visited shard prices the backends it maintains against its
    /// publish-time [`PartitionStats`] and runs the cheapest one. Scalar
    /// plans where every shard picks DC-tree descent delegate to the
    /// cached scatter-gather path, so the aggregate cache keeps serving
    /// the workloads it already accelerates.
    pub fn execute(&self, stmt: &ParsedStatement) -> DcResult<QueryOutput> {
        let t0 = Instant::now();
        let plan = LogicalPlan::from_statement(stmt);
        self.metrics.plan.plans.fetch_add(1, Relaxed);
        if plan.group_by.is_none() && self.all_shards_pick_descend(&plan)? {
            self.metrics
                .plan
                .chosen(Backend::Descend)
                .fetch_add(1, Relaxed);
            let total = self.cached_summary(&plan.filter, plan.needs_extrema())?;
            self.metrics.queries.fetch_add(1, Relaxed);
            self.metrics.query_latency.record(t0.elapsed());
            return Ok(QueryOutput::Scalar(total));
        }
        let (out, explain) = self.run_planned(&plan, None)?;
        self.note_plan_metrics(&explain);
        self.metrics.queries.fetch_add(1, Relaxed);
        self.metrics.query_latency.record(t0.elapsed());
        Ok(out)
    }

    /// Plans and executes `stmt`, returning the answer plus the full
    /// `EXPLAIN` record: chosen backend, estimated vs. measured page
    /// reads, and per-shard plan fragments. Always takes the per-shard
    /// measured path (no cache), since EXPLAIN is the diagnostic view.
    pub fn explain(&self, stmt: &ParsedStatement) -> DcResult<(QueryOutput, Explain)> {
        let t0 = Instant::now();
        let plan = LogicalPlan::from_statement(stmt);
        self.metrics.plan.plans.fetch_add(1, Relaxed);
        self.metrics.plan.explains.fetch_add(1, Relaxed);
        let (out, explain) = self.run_planned(&plan, None)?;
        self.note_plan_metrics(&explain);
        self.metrics.queries.fetch_add(1, Relaxed);
        self.metrics.query_latency.record(t0.elapsed());
        Ok((out, explain))
    }

    /// Plans and executes with the backend choice overridden on every
    /// shard — the "always-X" baseline benches and tests compare the
    /// planner against. Does not touch the planner counters. Errors when a
    /// visited shard does not maintain `backend`.
    pub fn execute_forced(
        &self,
        stmt: &ParsedStatement,
        backend: Backend,
    ) -> DcResult<(QueryOutput, Explain)> {
        let plan = LogicalPlan::from_statement(stmt);
        self.run_planned(&plan, Some(backend))
    }

    /// Evaluates `stmt` on **every** backend the visited shards all
    /// maintain, plus the planner's per-shard choice, from one atomically
    /// acquired [`PlanState`] per shard — so even under concurrent
    /// ingest/delete churn every returned output describes the same
    /// published data and must agree. This is the differential suite's
    /// hook; it bypasses the cache and the planner counters.
    pub fn compare_backends(&self, stmt: &ParsedStatement) -> DcResult<BackendComparison> {
        let plan = LogicalPlan::from_statement(stmt);
        if self.is_disk() {
            // Descent is the only backend disk shards maintain; the
            // comparison degenerates to one execution.
            let (out, _) = self.run_planned_ooc(&plan, None)?;
            return Ok(BackendComparison {
                outputs: vec![(Backend::Descend, out.clone())],
                chosen: out,
            });
        }
        // Sound containment mode: every backend must agree bit-for-bit.
        let prepared = self
            .catalog
            .with_schema(|s| PreparedRange::with_mode(s, &plan.filter, false))?;
        let catalog_values = self.catalog.with_schema(schema_total_values);
        let mut states = Vec::new();
        for s in self.relevant_shards(&plan.filter)? {
            let state = Arc::clone(&self.shards[s].plan.read());
            if shard_covers(&plan.filter, state.tree.schema(), catalog_values) {
                states.push(state);
            }
        }
        let mut backends = vec![Backend::Descend];
        if states.iter().all(|st| st.bitmap.is_some()) {
            backends.push(Backend::Bitmap);
        }
        if states
            .iter()
            .all(|st| st.views.is_some() && !st.stats.views_stale)
        {
            backends.push(Backend::Mview);
        }
        if states.iter().all(|st| st.table.is_some()) {
            backends.push(Backend::Scan);
        }
        let grouped = plan.group_by.is_some();
        let mut outputs = Vec::new();
        'backends: for &backend in &backends {
            let mut out = QueryOutput::empty(grouped);
            for st in &states {
                let prepared_ref = (backend == Backend::Descend).then_some(&prepared);
                match dc_plan::execute(
                    st.tree.schema(),
                    &plan,
                    backend,
                    &backend_refs(st),
                    prepared_ref,
                ) {
                    Ok((part, _)) => out.merge(&part),
                    // No lattice view answers this query shape on this
                    // shard — the backend is simply not comparable here.
                    Err(DcError::IncomparableMds(_)) if backend == Backend::Mview => {
                        continue 'backends;
                    }
                    Err(e) => return Err(e),
                }
            }
            outputs.push((backend, out));
        }
        let mut chosen = QueryOutput::empty(grouped);
        for st in &states {
            let backend = self
                .catalog
                .with_schema(|schema| choose(schema, &plan, &st.stats).backend);
            let prepared_ref = (backend == Backend::Descend).then_some(&prepared);
            let (part, _) = dc_plan::execute(
                st.tree.schema(),
                &plan,
                backend,
                &backend_refs(st),
                prepared_ref,
            )?;
            chosen.merge(&part);
        }
        Ok(BackendComparison { outputs, chosen })
    }

    /// One shard's current planner statistics, whichever storage mode
    /// published them.
    fn shard_stats(&self, s: usize) -> PartitionStats {
        match &self.shards[s].ooc {
            Some(state) => state.stats.read().clone(),
            None => self.shards[s].plan.read().stats.clone(),
        }
    }

    /// `true` when the cost model picks descent on every relevant shard
    /// (the cheap pre-check behind [`Self::execute`]'s cache delegation).
    /// Trivially true in disk mode: descent is the only backend there, so
    /// scalar planned queries keep flowing through the aggregate cache.
    fn all_shards_pick_descend(&self, plan: &LogicalPlan) -> DcResult<bool> {
        for s in self.relevant_shards(&plan.filter)? {
            let stats = self.shard_stats(s);
            let picked = self
                .catalog
                .with_schema(|schema| choose(schema, plan, &stats).backend);
            if picked != Backend::Descend {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// The planned scatter-gather: reads each visited shard's [`PlanState`]
    /// once, prices the backends, executes the chosen (or forced) one, and
    /// assembles the per-shard explain fragments.
    fn run_planned(
        &self,
        plan: &LogicalPlan,
        force: Option<Backend>,
    ) -> DcResult<(QueryOutput, Explain)> {
        if self.is_disk() {
            return self.run_planned_ooc(plan, force);
        }
        // `group_by` decomposes containment per group, which the paper-mode
        // shortcut does not model — grouped plans always prepare soundly.
        let paper = self.paper_mode && plan.group_by.is_none();
        let prepared = self
            .catalog
            .with_schema(|s| PreparedRange::with_mode(s, &plan.filter, paper))?;
        let catalog_values = self.catalog.with_schema(schema_total_values);
        let mut out = QueryOutput::empty(plan.group_by.is_some());
        let mut frags = Vec::new();
        for s in self.relevant_shards(&plan.filter)? {
            let state = Arc::clone(&self.shards[s].plan.read());
            if !shard_covers(&plan.filter, state.tree.schema(), catalog_values) {
                frags.push(ShardExplain {
                    shard: s,
                    backend: Backend::Descend,
                    est_pages: 0.0,
                    actual_pages: None,
                });
                continue;
            }
            self.metrics.shard_visits.fetch_add(1, Relaxed);
            let (backend, est_pages) = self.catalog.with_schema(|schema| {
                let choice = choose(schema, plan, &state.stats);
                match force {
                    None => (choice.backend, choice.est_pages),
                    Some(b) => (
                        b,
                        choice
                            .candidates
                            .iter()
                            .find(|c| c.backend == b)
                            .map(|c| c.pages)
                            .unwrap_or(0.0),
                    ),
                }
            });
            let prepared_ref = (backend == Backend::Descend).then_some(&prepared);
            let (part, pages) = dc_plan::execute(
                state.tree.schema(),
                plan,
                backend,
                &backend_refs(&state),
                prepared_ref,
            )?;
            out.merge(&part);
            frags.push(ShardExplain {
                shard: s,
                backend,
                est_pages,
                actual_pages: Some(pages),
            });
        }
        Ok((out, Explain::from_shards(frags)))
    }

    /// The disk-mode planned path. Disk shards maintain only the DC-tree,
    /// so every shard runs descent; the value of planning here is the
    /// estimate itself — `choose` prices the descent with the observed
    /// buffer-pool miss rate (see `dc_plan::cold_factor`), and EXPLAIN
    /// reports estimated vs. measured pool touches per shard.
    fn run_planned_ooc(
        &self,
        plan: &LogicalPlan,
        force: Option<Backend>,
    ) -> DcResult<(QueryOutput, Explain)> {
        if force.is_some_and(|b| b != Backend::Descend) {
            return Err(DcError::Config(
                "disk-backed shards only maintain the DC-tree descent backend".into(),
            ));
        }
        let paper = self.paper_mode && plan.group_by.is_none();
        let prepared = self
            .catalog
            .with_schema(|s| PreparedRange::with_mode(s, &plan.filter, paper))?;
        let catalog_values = self.catalog.with_schema(schema_total_values);
        let mut out = QueryOutput::empty(plan.group_by.is_some());
        let mut frags = Vec::new();
        for s in self.relevant_shards(&plan.filter)? {
            let state = self.shards[s].ooc.as_ref().expect("disk-mode shard");
            let tree = state.tree.read();
            if !shard_covers(&plan.filter, tree.schema(), catalog_values) {
                frags.push(ShardExplain {
                    shard: s,
                    backend: Backend::Descend,
                    est_pages: 0.0,
                    actual_pages: None,
                });
                continue;
            }
            self.metrics.shard_visits.fetch_add(1, Relaxed);
            let stats = state.stats.read().clone();
            let est_pages = self
                .catalog
                .with_schema(|schema| choose(schema, plan, &stats).est_pages);
            let p0 = state.tree.pool_stats();
            let part = match plan.group_by {
                None => QueryOutput::Scalar(tree.range_summary_prepared(&prepared)?),
                Some((dim, level)) => {
                    QueryOutput::Grouped(tree.group_by_prepared(dim, level, &prepared)?)
                }
            };
            let p1 = state.tree.pool_stats();
            let pages = (p1.hits + p1.misses).saturating_sub(p0.hits + p0.misses);
            out.merge(&part);
            frags.push(ShardExplain {
                shard: s,
                backend: Backend::Descend,
                est_pages,
                actual_pages: Some(pages),
            });
        }
        Ok((out, Explain::from_shards(frags)))
    }

    /// Folds one planned query's explain record into the `plan` counters.
    fn note_plan_metrics(&self, explain: &Explain) {
        let pm = &self.metrics.plan;
        pm.chosen(explain.backend).fetch_add(1, Relaxed);
        pm.est_pages
            .fetch_add(explain.est_pages.round() as u64, Relaxed);
        pm.actual_pages.fetch_add(explain.actual_pages, Relaxed);
        let est = explain.est_pages.max(1.0);
        let actual = (explain.actual_pages as f64).max(1.0);
        if actual / est > 2.0 || est / actual > 2.0 {
            pm.mispredictions.fetch_add(1, Relaxed);
        }
    }

    /// The summary of the whole cube (merged shard totals).
    pub fn total_summary(&self) -> MeasureSummary {
        let mut total = MeasureSummary::empty();
        for (i, shard) in self.shards.iter().enumerate() {
            match &shard.ooc {
                Some(state) => total.merge(
                    &state
                        .tree
                        .total_summary()
                        .expect("disk shard total_summary failed"),
                ),
                None => total.merge(&self.shard_snapshot(i).total_summary()),
            }
        }
        total
    }

    /// The shards a query must visit. Under `Hash` that is all of them;
    /// under `ByDimension` the query's constraint on the routing dimension
    /// prunes to the shards owning the matching partition-level ancestors.
    fn relevant_shards(&self, range: &Mds) -> DcResult<Vec<usize>> {
        let n = self.shards.len();
        let all = || (0..n).collect::<Vec<_>>();
        let PartitionPolicy::ByDimension { dim, level } = self.policy else {
            return Ok(all());
        };
        if range.num_dims() <= dim.as_usize() {
            return Ok(all());
        }
        let set = range.dim(dim.as_usize());
        self.catalog.with_schema(|schema| {
            let h = schema.dim(dim);
            if set.level() >= h.top_level() {
                return Ok(all()); // unconstrained (ALL)
            }
            let mut mask = vec![false; n];
            if set.level() <= level {
                // Query at or below the partition level: each value has one
                // owning ancestor.
                for &v in set.values() {
                    mask[h.ancestor_at(v, level)?.index() as usize % n] = true;
                }
            } else {
                // Query coarser than the partition level: a value owns every
                // partition-level descendant shard.
                for v in h.values_at(level) {
                    if set.contains_value(h.ancestor_at(v, set.level())?) {
                        mask[v.index() as usize % n] = true;
                    }
                }
            }
            let mut hits = Vec::with_capacity(n);
            hits.extend(
                mask.into_iter()
                    .enumerate()
                    .filter_map(|(i, hit)| hit.then_some(i)),
            );
            Ok(hits)
        })
    }
}

impl Drop for ShardedDcTree {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ShardedDcTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedDcTree")
            .field("shards", &self.shards.len())
            .field("policy", &self.policy)
            .field("len", &self.len())
            .finish()
    }
}

/// Total interned values across all dimensions of a schema. Shard schemas
/// replay the catalog's intern log in order, so a shard schema is always a
/// *prefix* of the catalog's — equal totals mean the schemas are identical.
fn schema_total_values(schema: &CubeSchema) -> usize {
    (0..schema.num_dims())
        .map(|d| schema.dim(DimensionId(d as u16)).num_values())
        .sum()
}

/// `true` iff the shard can contribute anything to `range`: in every
/// dimension, at least one query value is interned in the shard's schema.
/// A shard that lags the catalog cannot hold records under values it never
/// interned, so a dimension with no known value proves the shard's answer
/// empty — the query skips it without a snapshot descent (and without a
/// `shard_visits` tick).
///
/// Fast path: a shard whose schema is complete (same value total as the
/// catalog — shard schemas are catalog prefixes) covers every valid query
/// by construction, with no per-value checks.
fn shard_covers(range: &Mds, schema: &CubeSchema, catalog_values: usize) -> bool {
    if schema_total_values(schema) == catalog_values {
        return true;
    }
    range.dims().enumerate().all(|(d, set)| {
        let h: &ConceptHierarchy = schema.dim(DimensionId(d as u16));
        set.values().iter().any(|&v| h.contains(v))
    })
}

/// Starts a shard's writer thread: drains its queue in batches, replays the
/// catalog intern log up to each command's epoch, applies (collecting cache
/// deltas), then publishes a fresh snapshot — patching the aggregate cache
/// atomically with the snapshot swap when a cache is configured.
#[allow(clippy::too_many_arguments)]
fn spawn_writer(
    shard_id: usize,
    mut tree: DcTree,
    rx: Receiver<Cmd>,
    snapshot: Arc<RwLock<Arc<DcTree>>>,
    plan: Arc<RwLock<Arc<PlanState>>>,
    mut aux: Option<AuxEngines>,
    catalog: Arc<SchemaCatalog>,
    metrics: Arc<EngineMetrics>,
    batch_size: usize,
    cache: Option<Arc<SharedCache>>,
    wal: Option<Arc<DurableWal>>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("dc-shard-{shard_id}"))
        .spawn(move || {
            let shard_metrics = &metrics.shards[shard_id];
            let mut replayed: u64 = 0;
            let mut pending_flushes: Vec<Sender<()>> = Vec::new();
            let mut deltas: Vec<CacheDelta> = Vec::new();
            let mut shutting_down = false;
            'outer: loop {
                // Block for the first command, then opportunistically drain
                // up to a batch.
                let first = match rx.recv() {
                    Ok(cmd) => cmd,
                    Err(_) => break 'outer, // all senders gone
                };
                let mut batch = vec![first];
                while batch.len() < batch_size {
                    match rx.try_recv() {
                        Ok(cmd) => batch.push(cmd),
                        Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                    }
                }
                let mut mutated = false;
                for cmd in batch {
                    apply(
                        cmd,
                        &mut tree,
                        &catalog,
                        &metrics,
                        shard_id,
                        &mut replayed,
                        &mut mutated,
                        &mut pending_flushes,
                        &mut shutting_down,
                        cache.is_some().then_some(&mut deltas),
                        aux.as_mut(),
                    );
                }
                if shutting_down {
                    // Drain whatever is still queued before exiting.
                    while let Ok(cmd) = rx.try_recv() {
                        apply(
                            cmd,
                            &mut tree,
                            &catalog,
                            &metrics,
                            shard_id,
                            &mut replayed,
                            &mut mutated,
                            &mut pending_flushes,
                            &mut shutting_down,
                            cache.is_some().then_some(&mut deltas),
                            aux.as_mut(),
                        );
                    }
                }
                if mutated || !pending_flushes.is_empty() {
                    publish(
                        &tree,
                        &snapshot,
                        &plan,
                        &mut aux,
                        &metrics,
                        shard_id,
                        cache.as_deref(),
                        &mut deltas,
                    );
                }
                // Group commit: under `GroupCommitMs` this writer syncs the
                // shared WAL after publishing its batch, before any flush is
                // acknowledged — an acked FLUSH is both visible and durable.
                if let Some(wal) = wal.as_ref().filter(|w| w.group_commit) {
                    if mutated || !pending_flushes.is_empty() {
                        let _ = wal.writer.lock().group_commit();
                    }
                }
                for ack in pending_flushes.drain(..) {
                    let _ = ack.send(());
                }
                if shutting_down {
                    break 'outer;
                }
            }
            shard_metrics.queue_depth.store(0, Relaxed);
        })
        .expect("spawn shard writer")
}

/// Applies one command inside a writer thread. With a cache configured,
/// `deltas` accumulates the record-level changes this batch made (deletes
/// only when the shard tree actually held the record — a routed-away or
/// already-removed record must not be subtracted from cached summaries).
#[allow(clippy::too_many_arguments)]
fn apply(
    cmd: Cmd,
    tree: &mut DcTree,
    catalog: &SchemaCatalog,
    metrics: &EngineMetrics,
    shard_id: usize,
    replayed: &mut u64,
    mutated: &mut bool,
    pending_flushes: &mut Vec<Sender<()>>,
    shutting_down: &mut bool,
    deltas: Option<&mut Vec<CacheDelta>>,
    aux: Option<&mut AuxEngines>,
) {
    let shard_metrics = &metrics.shards[shard_id];
    match cmd {
        Cmd::Insert { record, epoch } => {
            let t0 = Instant::now();
            replay_catalog(tree, catalog, replayed, epoch);
            if let Some(deltas) = deltas {
                deltas.push(CacheDelta {
                    record: record.clone(),
                    delete: false,
                });
            }
            if let Some(aux) = aux {
                aux.insert(tree.schema(), &record);
            }
            tree.insert(record)
                .expect("catalog-backed insert cannot fail");
            metrics.apply_latency.record(t0.elapsed());
            shard_metrics.queue_depth.fetch_sub(1, Relaxed);
            shard_metrics.applied.fetch_add(1, Relaxed);
            *mutated = true;
        }
        Cmd::InsertBatch { records, epoch } => {
            let t0 = Instant::now();
            replay_catalog(tree, catalog, replayed, epoch);
            let n = records.len() as u64;
            if let Some(deltas) = deltas {
                for record in &records {
                    deltas.push(CacheDelta {
                        record: record.clone(),
                        delete: false,
                    });
                }
            }
            if let Some(aux) = aux {
                for record in &records {
                    aux.insert(tree.schema(), record);
                }
            }
            tree.insert_batch(records)
                .expect("catalog-backed batch insert cannot fail");
            metrics.batch_apply_latency.record(t0.elapsed());
            shard_metrics.queue_depth.fetch_sub(n, Relaxed);
            shard_metrics.applied.fetch_add(n, Relaxed);
            *mutated = true;
        }
        Cmd::Delete { record, epoch } => {
            let t0 = Instant::now();
            replay_catalog(tree, catalog, replayed, epoch);
            // A miss means the record never existed on this shard — the
            // documented no-op.
            let removed = tree.delete(&record).unwrap_or(false);
            if removed {
                if let Some(aux) = aux {
                    aux.delete(tree.schema(), &record);
                }
                if let Some(deltas) = deltas {
                    deltas.push(CacheDelta {
                        record,
                        delete: true,
                    });
                }
            }
            metrics.apply_latency.record(t0.elapsed());
            shard_metrics.queue_depth.fetch_sub(1, Relaxed);
            shard_metrics.applied.fetch_add(1, Relaxed);
            *mutated = true;
        }
        Cmd::Flush(ack) => pending_flushes.push(ack),
        Cmd::Catchup { epoch } => {
            replay_catalog(tree, catalog, replayed, epoch);
            // Force a publish: the checkpoint path images the *published*
            // snapshot, which must carry the caught-up schema.
            *mutated = true;
        }
        Cmd::Shutdown => *shutting_down = true,
    }
}

/// Brings a shard tree's schema up to `epoch` by replaying the catalog's
/// intern log. Interning is idempotent and IDs are assigned in insertion
/// order, so the shard's schema stays an exact prefix of the catalog's.
fn replay_catalog(tree: &mut DcTree, catalog: &SchemaCatalog, replayed: &mut u64, epoch: u64) {
    if *replayed >= epoch {
        return;
    }
    for entry in catalog.entries(*replayed, epoch) {
        tree.intern_paths(&entry)
            .expect("catalog replay cannot fail");
    }
    *replayed = epoch;
}

/// Publishes a fresh snapshot of the shard tree and updates its gauges.
/// With a cache configured, the batch's deltas are applied to cached
/// summaries and the snapshot is swapped *under the cache lock* (one
/// version bump covers both), so a cached answer always corresponds to
/// some published state a bypassing query could have seen. The planner's
/// [`PlanState`] is swapped inside the same closure, so the tree snapshot
/// and the aux engines can never be observed at different batch points.
#[allow(clippy::too_many_arguments)]
fn publish(
    tree: &DcTree,
    snapshot: &RwLock<Arc<DcTree>>,
    plan: &RwLock<Arc<PlanState>>,
    aux: &mut Option<AuxEngines>,
    metrics: &EngineMetrics,
    shard_id: usize,
    cache: Option<&SharedCache>,
    deltas: &mut Vec<CacheDelta>,
) {
    if let Some(aux) = aux.as_mut() {
        if aux.views_stale {
            // Deletes cannot be subtracted from roll-up cells; rebuild the
            // lattice from the authoritative tree before publishing.
            if let Some(views) = &mut aux.views {
                let schema = tree.schema();
                let mut fresh = fresh_views(schema);
                for stored in tree.iter_records() {
                    for v in &mut fresh {
                        v.apply(schema, &stored.record)
                            .expect("tree records resolve in their own schema");
                    }
                }
                *views = fresh;
            }
            aux.views_stale = false;
        }
    }
    let snap = Arc::new(tree.clone());
    let plan_state = capture_plan_state(tree, Arc::clone(&snap), aux.as_ref());
    let io = snap.io_stats();
    let shard_metrics = &metrics.shards[shard_id];
    shard_metrics.snapshot_records.store(snap.len(), Relaxed);
    shard_metrics.io_reads.store(io.reads, Relaxed);
    shard_metrics.io_writes.store(io.writes, Relaxed);
    shard_metrics
        .snapshot_published_at
        .store(metrics.now_nanos().max(1), Relaxed);
    let swap = move || {
        *snapshot.write() = snap;
        *plan.write() = plan_state;
    };
    match cache {
        Some(cache) => {
            // The shard tree has replayed the catalog through every epoch
            // in this batch, so its schema resolves all delta values.
            let (stats, ()) = cache.publish(tree.schema(), deltas, swap);
            metrics.cache.patches.fetch_add(stats.patches, Relaxed);
            metrics
                .cache
                .invalidations
                .fetch_add(stats.invalidations, Relaxed);
        }
        None => swap(),
    }
    deltas.clear();
}

/// Starts a disk-backed shard's writer thread. The structure mirrors
/// [`spawn_writer`], with one crucial difference: there is no snapshot to
/// swap. Instead the writer holds the shard's **write lock across the
/// whole batch and the publish**, so readers (who take the read lock per
/// query) observe pre- or post-batch state only — the same all-or-nothing
/// visibility the snapshot swap gives resident shards.
#[allow(clippy::too_many_arguments)]
fn spawn_writer_ooc(
    shard_id: usize,
    state: Arc<OocShardState>,
    rx: Receiver<Cmd>,
    catalog: Arc<SchemaCatalog>,
    metrics: Arc<EngineMetrics>,
    batch_size: usize,
    cache: Option<Arc<SharedCache>>,
    wal: Option<Arc<DurableWal>>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("dc-shard-{shard_id}"))
        .spawn(move || {
            let shard_metrics = &metrics.shards[shard_id];
            let mut replayed: u64 = 0;
            let mut pending_flushes: Vec<Sender<()>> = Vec::new();
            let mut deltas: Vec<CacheDelta> = Vec::new();
            let mut shutting_down = false;
            'outer: loop {
                let first = match rx.recv() {
                    Ok(cmd) => cmd,
                    Err(_) => break 'outer,
                };
                let mut batch = vec![first];
                while batch.len() < batch_size {
                    match rx.try_recv() {
                        Ok(cmd) => batch.push(cmd),
                        Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                    }
                }
                let mut mutated = false;
                {
                    let mut tree = state.tree.write();
                    for cmd in batch {
                        apply_ooc(
                            cmd,
                            &mut tree,
                            &catalog,
                            &metrics,
                            shard_id,
                            &mut replayed,
                            &mut mutated,
                            &mut pending_flushes,
                            &mut shutting_down,
                            cache.is_some().then_some(&mut deltas),
                        );
                    }
                    if shutting_down {
                        while let Ok(cmd) = rx.try_recv() {
                            apply_ooc(
                                cmd,
                                &mut tree,
                                &catalog,
                                &metrics,
                                shard_id,
                                &mut replayed,
                                &mut mutated,
                                &mut pending_flushes,
                                &mut shutting_down,
                                cache.is_some().then_some(&mut deltas),
                            );
                        }
                    }
                    if mutated || !pending_flushes.is_empty() {
                        publish_ooc(
                            &tree,
                            &state,
                            &metrics,
                            shard_id,
                            cache.as_deref(),
                            &mut deltas,
                        );
                    }
                    // The write lock drops here: the batch and its cache
                    // version bump become visible together.
                }
                if let Some(wal) = wal.as_ref().filter(|w| w.group_commit) {
                    if mutated || !pending_flushes.is_empty() {
                        let _ = wal.writer.lock().group_commit();
                    }
                }
                for ack in pending_flushes.drain(..) {
                    let _ = ack.send(());
                }
                if shutting_down {
                    break 'outer;
                }
            }
            shard_metrics.queue_depth.store(0, Relaxed);
        })
        .expect("spawn shard writer")
}

/// Applies one command to a disk-backed shard tree (the [`apply`] twin;
/// no aux engines — disk shards maintain descent only). Mutations go
/// through the buffer pool, so an `Err` here is real disk I/O failure:
/// the writer panics, poisoning the shard the same way a resident
/// writer's impossible-error `expect`s would.
#[allow(clippy::too_many_arguments)]
fn apply_ooc(
    cmd: Cmd,
    tree: &mut PagedDcTree<OocStore>,
    catalog: &SchemaCatalog,
    metrics: &EngineMetrics,
    shard_id: usize,
    replayed: &mut u64,
    mutated: &mut bool,
    pending_flushes: &mut Vec<Sender<()>>,
    shutting_down: &mut bool,
    deltas: Option<&mut Vec<CacheDelta>>,
) {
    let shard_metrics = &metrics.shards[shard_id];
    match cmd {
        Cmd::Insert { record, epoch } => {
            let t0 = Instant::now();
            replay_catalog_ooc(tree, catalog, replayed, epoch);
            if let Some(deltas) = deltas {
                deltas.push(CacheDelta {
                    record: record.clone(),
                    delete: false,
                });
            }
            tree.insert(record).expect("disk shard insert I/O failed");
            metrics.apply_latency.record(t0.elapsed());
            shard_metrics.queue_depth.fetch_sub(1, Relaxed);
            shard_metrics.applied.fetch_add(1, Relaxed);
            *mutated = true;
        }
        Cmd::InsertBatch { records, epoch } => {
            let t0 = Instant::now();
            replay_catalog_ooc(tree, catalog, replayed, epoch);
            let n = records.len() as u64;
            if let Some(deltas) = deltas {
                for record in &records {
                    deltas.push(CacheDelta {
                        record: record.clone(),
                        delete: false,
                    });
                }
            }
            // The paged tree has no bottom-up batch path; content
            // equivalence with the resident shard holds record by record.
            for record in records {
                tree.insert(record).expect("disk shard insert I/O failed");
            }
            metrics.batch_apply_latency.record(t0.elapsed());
            shard_metrics.queue_depth.fetch_sub(n, Relaxed);
            shard_metrics.applied.fetch_add(n, Relaxed);
            *mutated = true;
        }
        Cmd::Delete { record, epoch } => {
            let t0 = Instant::now();
            replay_catalog_ooc(tree, catalog, replayed, epoch);
            let removed = tree.delete(&record).expect("disk shard delete I/O failed");
            if removed {
                if let Some(deltas) = deltas {
                    deltas.push(CacheDelta {
                        record,
                        delete: true,
                    });
                }
            }
            metrics.apply_latency.record(t0.elapsed());
            shard_metrics.queue_depth.fetch_sub(1, Relaxed);
            shard_metrics.applied.fetch_add(1, Relaxed);
            *mutated = true;
        }
        Cmd::Flush(ack) => pending_flushes.push(ack),
        Cmd::Catchup { epoch } => {
            replay_catalog_ooc(tree, catalog, replayed, epoch);
            // Force a publish; the checkpoint path then flushes the file,
            // which must carry the caught-up schema.
            *mutated = true;
        }
        Cmd::Shutdown => *shutting_down = true,
    }
}

/// [`replay_catalog`] for a disk-backed shard tree.
fn replay_catalog_ooc(
    tree: &mut PagedDcTree<OocStore>,
    catalog: &SchemaCatalog,
    replayed: &mut u64,
    epoch: u64,
) {
    if *replayed >= epoch {
        return;
    }
    for entry in catalog.entries(*replayed, epoch) {
        tree.intern_paths(&entry)
            .expect("disk shard catalog replay I/O failed");
    }
    *replayed = epoch;
}

/// The disk-mode publish: refreshes the shard's planner statistics and
/// gauges, and (with a cache) applies the batch's deltas under the cache
/// lock. The caller still holds the shard write lock, so the cache version
/// bump and the batch become visible to readers atomically — a reader that
/// observed the pre-batch tree can never pair its answer with the
/// post-batch cache version, and vice versa.
fn publish_ooc(
    tree: &PagedDcTree<OocStore>,
    state: &OocShardState,
    metrics: &EngineMetrics,
    shard_id: usize,
    cache: Option<&SharedCache>,
    deltas: &mut Vec<CacheDelta>,
) {
    let stats = capture_ooc_stats(tree, state.tree.pool());
    let pool = state.tree.pool_stats();
    let shard_metrics = &metrics.shards[shard_id];
    shard_metrics.snapshot_records.store(tree.len(), Relaxed);
    shard_metrics
        .io_reads
        .store(pool.hits + pool.misses, Relaxed);
    shard_metrics.io_writes.store(pool.writebacks, Relaxed);
    shard_metrics
        .snapshot_published_at
        .store(metrics.now_nanos().max(1), Relaxed);
    let swap = move || {
        *state.stats.write() = stats;
    };
    match cache {
        Some(cache) => {
            let (cstats, ()) = cache.publish(tree.schema(), deltas, swap);
            metrics.cache.patches.fetch_add(cstats.patches, Relaxed);
            metrics
                .cache
                .invalidations
                .fetch_add(cstats.invalidations, Relaxed);
        }
        None => swap(),
    }
    deltas.clear();
}

/// Publish-time [`PartitionStats`] for a disk-backed shard: tree shape
/// plus the observed buffer-pool miss rate the cost model converts into a
/// cold-fetch multiplier. A pool with no history prices fully cold — the
/// conservative prior for freshly opened shards.
fn capture_ooc_stats(
    tree: &PagedDcTree<OocStore>,
    pool: &dc_oocore::ConcurrentPool,
) -> PartitionStats {
    let p = pool.stats();
    let touches = p.hits + p.misses;
    PartitionStats {
        records: tree.len(),
        tree_nodes: tree.num_nodes() as usize,
        tree_height: tree.height().unwrap_or(1),
        records_per_block: FlatTable::for_schema(BlockConfig::DEFAULT, tree.schema())
            .records_per_block(),
        disk_resident: true,
        pool_miss_rate: if touches == 0 {
            1.0
        } else {
            p.misses as f64 / touches as f64
        },
        ..PartitionStats::default()
    }
}
