//! Semantic reuse: answering a range query from a cached MDS that is
//! *contained* by the query, plus a disjoint remainder that still descends
//! the tree.
//!
//! Containment here is Definition 4's sound direction — the same one the
//! DC-tree's materialized shortcut uses after the Fig. 7 erratum (see
//! DESIGN.md §5): `entry ⊑ query` means every leaf cell reachable under the
//! entry's MDS is selected by the query, so the entry's materialized
//! [`MeasureSummary`](dc_common::MeasureSummary) may be added wholesale.
//! The other direction (query ⊑ entry) would require *subtracting* the
//! unselected part of the entry, which is exactly the over-count the paper's
//! literal Fig. 7 commits; this module never uses it.
//!
//! # The remainder decomposition
//!
//! Let the query `Q` constrain dimension `i` at level `l_i^Q` and the cached
//! entry `E` at level `l_i^E ≤ l_i^Q` (containment guarantees the entry is
//! at-or-below the query's level in every dimension). Expanding each query
//! value down to `l_i^E` via [`descendants_at`]
//! (dc_hierarchy::ConceptHierarchy::descendants_at) yields `D_i` with
//! `E_i ⊆ D_i`, and `Q` selects exactly the cells of `D_1 × … × D_d`
//! (ancestor composition: a record's ancestor at `l_i^Q` is in `Q_i` iff its
//! ancestor at `l_i^E` is in `D_i`). The classic box difference then splits
//! the uncovered part into `d` pairwise-disjoint MDSs:
//!
//! ```text
//! Q \ E  =  ⊎_{i=1..d}  E_1 × … × E_{i-1} × (D_i \ E_i) × D_{i+1} × … × D_d
//! ```
//!
//! so `summary(Q) = summary(E) + Σ_i summary(term_i)` — an *equality*, not a
//! bound, because the terms partition the uncovered cells. The property test
//! in `tests/proptests.rs` pins this against full descents.

use dc_common::{DcResult, DimensionId};
use dc_hierarchy::CubeSchema;
use dc_mds::{DimSet, Mds};

/// Computes the disjoint remainder MDSs of `query \ entry`.
///
/// Preconditions: `entry.contained_in(query)` holds (the caller checked) and
/// both cover the same dimensions. Returns `None` when expanding the query
/// down to the entry's levels would materialize more than `max_values`
/// attribute values in total — the gate that keeps semantic reuse from
/// costing more than the descent it saves. An empty vector means the entry
/// covers the query exactly (only the cached summary is needed).
pub fn remainder_terms(
    schema: &CubeSchema,
    query: &Mds,
    entry: &Mds,
    max_values: usize,
) -> DcResult<Option<Vec<Mds>>> {
    let d = query.num_dims();
    debug_assert_eq!(d, entry.num_dims(), "query/entry dimension mismatch");
    let mut budget = max_values;
    let mut expanded: Vec<DimSet> = Vec::with_capacity(d);
    for i in 0..d {
        let (q, e) = (query.dim(i), entry.dim(i));
        debug_assert!(
            e.level() <= q.level(),
            "containment puts the entry at-or-below the query level"
        );
        let set = if e.level() == q.level() {
            q.clone()
        } else {
            let h = schema.dim(DimensionId(i as u16));
            let mut values = Vec::new();
            for &v in q.values() {
                values.extend(h.descendants_at(v, e.level())?);
                if values.len() > budget {
                    return Ok(None);
                }
            }
            DimSet::new(e.level(), values)
        };
        if set.len() > budget {
            return Ok(None);
        }
        budget -= set.len();
        expanded.push(set);
    }
    let mut terms = Vec::new();
    for i in 0..d {
        let rest = expanded[i].difference(entry.dim(i));
        if rest.is_empty() {
            continue;
        }
        let dims = (0..d)
            .map(|j| {
                if j < i {
                    entry.dim(j).clone()
                } else if j == i {
                    rest.clone()
                } else {
                    expanded[j].clone()
                }
            })
            .collect();
        terms.push(Mds::new(dims));
    }
    Ok(Some(terms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_hierarchy::HierarchySchema;

    /// Two 2-level dimensions with a handful of values each.
    fn schema() -> CubeSchema {
        let mut s = CubeSchema::new(
            vec![
                HierarchySchema::new("X", vec!["Region".into(), "Nation".into()]),
                HierarchySchema::new("Y", vec!["Year".into(), "Month".into()]),
            ],
            "m",
        );
        for (r, n) in [("EU", "DE"), ("EU", "FR"), ("AS", "JP"), ("AS", "CN")] {
            for (y, mo) in [("1996", "Jan"), ("1996", "Feb"), ("1997", "Jan")] {
                s.intern_record(&[vec![r, n], vec![y, mo]], 0).unwrap();
            }
        }
        s
    }

    fn lookup(s: &CubeSchema, dim: u16, path: &[&str]) -> dc_common::ValueId {
        s.dim(DimensionId(dim)).lookup_path(path).unwrap()
    }

    #[test]
    fn exact_coverage_has_no_remainder() {
        let s = schema();
        let q = Mds::new(vec![
            DimSet::singleton(lookup(&s, 0, &["EU"])),
            DimSet::singleton(lookup(&s, 1, &["1996"])),
        ]);
        let terms = remainder_terms(&s, &q, &q, 1024).unwrap().unwrap();
        assert!(terms.is_empty());
    }

    #[test]
    fn finer_entry_leaves_disjoint_terms_partitioning_the_query() {
        let s = schema();
        // Query: all of EU × year 1996. Entry: {DE} × {1996-Jan, 1996-Feb}.
        let q = Mds::new(vec![
            DimSet::singleton(lookup(&s, 0, &["EU"])),
            DimSet::singleton(lookup(&s, 1, &["1996"])),
        ]);
        let e = Mds::new(vec![
            DimSet::singleton(lookup(&s, 0, &["EU", "DE"])),
            DimSet::new(
                0,
                vec![
                    lookup(&s, 1, &["1996", "Jan"]),
                    lookup(&s, 1, &["1996", "Feb"]),
                ],
            ),
        ]);
        assert!(e.contained_in(&q, &s).unwrap());
        let terms = remainder_terms(&s, &q, &e, 1024).unwrap().unwrap();
        // One term per dimension with something missing: {FR}×{Jan,Feb} and
        // {DE}×{} (empty, dropped) — dim 1 is fully covered by the entry.
        assert_eq!(terms.len(), 1);
        assert_eq!(terms[0].dim(0).values(), &[lookup(&s, 0, &["EU", "FR"])]);
        assert_eq!(terms[0].dim(1).len(), 2);
        // Disjointness from the entry: no overlap in dimension 0.
        assert_eq!(terms[0].overlap(&e), 0);
    }

    #[test]
    fn expansion_budget_gates_reuse() {
        let s = schema();
        let q = Mds::new(vec![
            DimSet::singleton(s.dim(DimensionId(0)).all()),
            DimSet::singleton(s.dim(DimensionId(1)).all()),
        ]);
        let e = Mds::new(vec![
            DimSet::singleton(lookup(&s, 0, &["EU", "DE"])),
            DimSet::singleton(lookup(&s, 1, &["1996", "Jan"])),
        ]);
        assert!(e.contained_in(&q, &s).unwrap());
        assert!(remainder_terms(&s, &q, &e, 2).unwrap().is_none());
        assert!(remainder_terms(&s, &q, &e, 1024).unwrap().is_some());
    }
}
