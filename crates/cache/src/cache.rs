//! The aggregate cache proper: MDS-keyed [`MeasureSummary`] entries, a
//! per-(dimension, value) inverted index for write-through delta
//! maintenance, and cost-aware eviction.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use dc_common::{DcResult, DimensionId, MeasureSummary, ValueId};
use dc_hierarchy::{CubeSchema, Record};
use dc_mds::Mds;
use parking_lot::Mutex;

use crate::semantic::remainder_terms;

/// Cache construction knobs.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Maximum cached entries; eviction starts above this.
    pub capacity: usize,
    /// Enable containment-based reuse of non-identical entries.
    pub semantic_reuse: bool,
    /// Upper bound on attribute values materialized when expanding a query
    /// down to a cached entry's levels; candidates needing more are skipped.
    pub max_remainder_values: usize,
    /// How many entries a semantic lookup may examine for containment —
    /// bounds the miss-path cost at large capacities.
    pub semantic_scan_limit: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 4096,
            semantic_reuse: true,
            max_remainder_values: 1024,
            semantic_scan_limit: 128,
        }
    }
}

/// One record-level write, queued by a shard writer and applied to the
/// cache atomically with that shard's snapshot publication.
#[derive(Clone, Debug)]
pub struct CacheDelta {
    /// The interned record (leaf values + measure).
    pub record: Record,
    /// `true` for a delete that the shard tree actually held (delete misses
    /// change nothing and must not be queued).
    pub delete: bool,
}

/// Counts returned by one delta batch.
#[derive(Clone, Copy, Default, Debug)]
pub struct ApplyStats {
    /// Entries patched in place (sum/count always; min/max when exact).
    pub patches: u64,
    /// Entries whose min/max became unreliable (a delete touched the
    /// extremum) or that were dropped as inconsistent.
    pub invalidations: u64,
}

/// Counts returned by one insertion.
#[derive(Clone, Copy, Default, Debug)]
pub struct InsertStats {
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries resident after the insertion.
    pub entries: u64,
}

/// What a lookup found (inner, version-free form; [`SharedCache::lookup`]
/// attaches the publish version).
pub enum InnerLookup {
    /// An entry answering the query outright.
    Hit(MeasureSummary),
    /// A contained entry plus the disjoint remainder MDSs that must still
    /// descend the tree.
    Semantic {
        /// The cached entry's summary.
        base: MeasureSummary,
        /// `false` when the base can only vouch for sum/count (its extrema
        /// were degraded by a delete) — the combined answer then must not be
        /// served for MIN/MAX nor re-cached as exact.
        exact_extrema: bool,
        /// Pairwise-disjoint MDSs covering everything the entry does not.
        remainders: Vec<Mds>,
    },
    /// Nothing usable.
    Miss,
}

/// A lookup against the [`SharedCache`], carrying the publish version the
/// optimistic insertion protocol checks (see the crate docs).
pub enum Lookup {
    /// An entry answering the query outright.
    Hit(MeasureSummary),
    /// Partial answer: merge `base` with descents of `remainders`.
    Semantic {
        /// The cached entry's summary.
        base: MeasureSummary,
        /// Whether the base's min/max are exact.
        exact_extrema: bool,
        /// Disjoint MDSs that still descend the tree.
        remainders: Vec<Mds>,
        /// Version for [`SharedCache::insert_if_current`].
        version: u64,
    },
    /// Nothing usable; descend and optionally insert at `version`.
    Miss {
        /// Version for [`SharedCache::insert_if_current`].
        version: u64,
    },
}

struct Entry {
    mds: Mds,
    summary: MeasureSummary,
    /// `false` after a delete removed an extremum: sum/count stay exact,
    /// min/max may be stale-wide and must not be served.
    extrema_valid: bool,
    /// Logical page reads the filling descent performed — the benefit a hit
    /// reaps, and the first factor of the eviction score.
    saved_pages: u64,
    hits: u64,
    last_used: u64,
}

/// A single-threaded aggregate cache over normalized query MDSs.
///
/// [`SharedCache`] adds the lock and the publish-version discipline; this
/// type holds the data structures:
///
/// * `by_key`: exact-match index (MDSs are canonical — sorted, deduplicated
///   per-dimension sets — so structural equality is semantic equality at
///   equal levels);
/// * `inverted`: per-(dimension, value) postings used by delta maintenance.
///   A record affects an entry iff, in every dimension, the record's
///   ancestor at the entry's relevant level is in the entry's set — so the
///   ancestor *chain* of the record's leaf in one probe dimension meets the
///   postings of every affected entry, no matter how coarse the cached
///   level. Candidates from the probe dimension are then verified on the
///   remaining dimensions with `contains_record`.
pub struct AggregateCache {
    config: CacheConfig,
    tick: u64,
    next_id: u64,
    entries: HashMap<u64, Entry>,
    by_key: HashMap<Mds, u64>,
    inverted: HashMap<(DimensionId, ValueId), HashSet<u64>>,
}

impl AggregateCache {
    /// An empty cache.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.capacity > 0, "cache capacity must be positive");
        AggregateCache {
            config,
            tick: 0,
            next_id: 0,
            entries: HashMap::new(),
            by_key: HashMap::new(),
            inverted: HashMap::new(),
        }
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up `query`. `need_extrema` demands exact min/max (a full
    /// summary or a MIN/MAX query); entries degraded by deletes then
    /// neither hit nor contribute.
    pub fn lookup(
        &mut self,
        schema: &CubeSchema,
        query: &Mds,
        need_extrema: bool,
    ) -> DcResult<InnerLookup> {
        self.tick += 1;
        if let Some(&id) = self.by_key.get(query) {
            let e = self.entries.get_mut(&id).expect("indexed entry exists");
            if e.extrema_valid || !need_extrema {
                e.hits += 1;
                e.last_used = self.tick;
                return Ok(InnerLookup::Hit(e.summary));
            }
        }
        if !self.config.semantic_reuse {
            return Ok(InnerLookup::Miss);
        }
        // Best contained entry = the one covering the most records: every
        // covered record is a record the remainder descent skips.
        let mut best: Option<(u64, u64)> = None;
        for (&id, e) in self.entries.iter().take(self.config.semantic_scan_limit) {
            if (need_extrema && !e.extrema_valid) || e.summary.is_empty() {
                continue;
            }
            if best.is_some_and(|(_, count)| e.summary.count <= count) {
                continue;
            }
            if e.mds.contained_in(query, schema)? {
                best = Some((id, e.summary.count));
            }
        }
        let Some((id, _)) = best else {
            return Ok(InnerLookup::Miss);
        };
        let entry_mds = self.entries[&id].mds.clone();
        match remainder_terms(schema, query, &entry_mds, self.config.max_remainder_values)? {
            None => Ok(InnerLookup::Miss),
            Some(remainders) => {
                let e = self.entries.get_mut(&id).expect("candidate entry exists");
                e.hits += 1;
                e.last_used = self.tick;
                Ok(InnerLookup::Semantic {
                    base: e.summary,
                    exact_extrema: e.extrema_valid,
                    remainders,
                })
            }
        }
    }

    /// Applies one batch of record-level writes: every entry covering a
    /// record is patched in place (insert: add; delete: subtract, degrading
    /// the extrema only when the deleted value touched them — the
    /// MIN/MAX-only invalidation of the write-through design).
    pub fn apply_deltas(&mut self, schema: &CubeSchema, deltas: &[CacheDelta]) -> ApplyStats {
        let mut stats = ApplyStats::default();
        if self.entries.is_empty() {
            return stats;
        }
        let probe = DimensionId(0);
        let h = schema.dim(probe);
        let top = h.top_level();
        for delta in deltas {
            let record = &delta.record;
            let leaf = record.dims[probe.as_usize()];
            let mut candidates: Vec<u64> = Vec::new();
            for level in leaf.level()..=top {
                let Ok(anc) = h.ancestor_at(leaf, level) else {
                    break;
                };
                if let Some(ids) = self.inverted.get(&(probe, anc)) {
                    candidates.extend(ids.iter().copied());
                }
            }
            for id in candidates {
                let Some(e) = self.entries.get_mut(&id) else {
                    continue;
                };
                if !matches!(e.mds.contains_record(schema, record), Ok(true)) {
                    continue;
                }
                if delta.delete {
                    if e.summary.is_empty() {
                        // A delete under an empty entry means the entry no
                        // longer reflects the tree; drop it defensively.
                        stats.invalidations += 1;
                        self.remove(id);
                        continue;
                    }
                    let exact = e.summary.subtract(record.measure);
                    if e.summary.is_empty() {
                        e.extrema_valid = true; // empty is exact again
                    } else if !exact {
                        if e.extrema_valid {
                            stats.invalidations += 1;
                        }
                        e.extrema_valid = false;
                    }
                } else {
                    e.summary.add(record.measure);
                }
                stats.patches += 1;
            }
        }
        stats
    }

    /// Inserts (or refreshes) the entry for `query`. `saved_pages` is the
    /// logical page-read cost of the descent this entry short-circuits.
    pub fn insert(&mut self, query: Mds, summary: MeasureSummary, saved_pages: u64) -> InsertStats {
        let mut stats = InsertStats::default();
        self.tick += 1;
        if let Some(&id) = self.by_key.get(&query) {
            let e = self.entries.get_mut(&id).expect("indexed entry exists");
            e.summary = summary;
            e.extrema_valid = true;
            e.saved_pages = e.saved_pages.max(saved_pages);
            e.last_used = self.tick;
            stats.entries = self.entries.len() as u64;
            return stats;
        }
        while self.entries.len() >= self.config.capacity {
            let Some(victim) = self.pick_victim() else {
                break;
            };
            self.remove(victim);
            stats.evictions += 1;
        }
        let id = self.next_id;
        self.next_id += 1;
        for (d, set) in query.dims().enumerate() {
            for &v in set.values() {
                self.inverted
                    .entry((DimensionId(d as u16), v))
                    .or_default()
                    .insert(id);
            }
        }
        self.by_key.insert(query.clone(), id);
        self.entries.insert(
            id,
            Entry {
                mds: query,
                summary,
                extrema_valid: true,
                saved_pages,
                hits: 0,
                last_used: self.tick,
            },
        );
        stats.entries = self.entries.len() as u64;
        stats
    }

    /// The entry with the lowest benefit score: pages-saved × hit count,
    /// discounted by recency (ticks since last use) — a cheap, frequently
    /// re-used entry outlives an expensive one nobody asks for anymore.
    fn pick_victim(&self) -> Option<u64> {
        self.entries
            .iter()
            .min_by_key(|(_, e)| {
                let benefit = u128::from(e.saved_pages.max(1)) * u128::from(e.hits + 1);
                let age = u128::from(self.tick - e.last_used + 1);
                // Scale before dividing so small benefits stay ordered.
                benefit.saturating_mul(1 << 20) / age
            })
            .map(|(&id, _)| id)
    }

    fn remove(&mut self, id: u64) {
        let Some(e) = self.entries.remove(&id) else {
            return;
        };
        self.by_key.remove(&e.mds);
        for (d, set) in e.mds.dims().enumerate() {
            for &v in set.values() {
                let key = (DimensionId(d as u16), v);
                if let Some(ids) = self.inverted.get_mut(&key) {
                    ids.remove(&id);
                    if ids.is_empty() {
                        self.inverted.remove(&key);
                    }
                }
            }
        }
    }
}

/// The thread-safe cache the serving engine embeds.
///
/// One mutex guards the whole cache; a monotonically increasing *publish
/// version* implements the epoch discipline (see the crate docs): shard
/// writers call [`publish`](Self::publish), which applies their delta batch
/// and swaps their snapshot while holding the lock, so cache contents and
/// published snapshots never diverge observably. Query threads that miss
/// compute from snapshots and insert through
/// [`insert_if_current`](Self::insert_if_current), which drops the insertion
/// if any publish intervened — a summary computed from superseded snapshots
/// never enters the cache.
pub struct SharedCache {
    inner: Mutex<AggregateCache>,
    version: AtomicU64,
}

impl SharedCache {
    /// An empty shared cache.
    pub fn new(config: CacheConfig) -> Self {
        SharedCache {
            inner: Mutex::new(AggregateCache::new(config)),
            version: AtomicU64::new(0),
        }
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// The current publish version (for tests and tools).
    pub fn version(&self) -> u64 {
        self.version.load(Relaxed)
    }

    /// Looks up `query`, attaching the publish version misses must echo
    /// back through [`insert_if_current`](Self::insert_if_current).
    pub fn lookup(&self, schema: &CubeSchema, query: &Mds, need_extrema: bool) -> DcResult<Lookup> {
        let mut inner = self.inner.lock();
        let version = self.version.load(Relaxed);
        Ok(match inner.lookup(schema, query, need_extrema)? {
            InnerLookup::Hit(s) => Lookup::Hit(s),
            InnerLookup::Semantic {
                base,
                exact_extrema,
                remainders,
            } => Lookup::Semantic {
                base,
                exact_extrema,
                remainders,
                version,
            },
            InnerLookup::Miss => Lookup::Miss { version },
        })
    }

    /// Applies a shard writer's delta batch and runs `swap` (the snapshot
    /// publication) under the cache lock, bumping the publish version iff
    /// the batch changed anything. Atomicity of patch + swap is what keeps a
    /// cached answer pinned to the epoch a bypassing query would see.
    pub fn publish<R>(
        &self,
        schema: &CubeSchema,
        deltas: &[CacheDelta],
        swap: impl FnOnce() -> R,
    ) -> (ApplyStats, R) {
        let mut inner = self.inner.lock();
        let stats = inner.apply_deltas(schema, deltas);
        if !deltas.is_empty() {
            self.version.fetch_add(1, Relaxed);
        }
        let result = swap();
        (stats, result)
    }

    /// Inserts the entry unless a publish intervened since `version` was
    /// observed (the summary would then describe superseded snapshots).
    pub fn insert_if_current(
        &self,
        version: u64,
        query: Mds,
        summary: MeasureSummary,
        saved_pages: u64,
    ) -> Option<InsertStats> {
        let mut inner = self.inner.lock();
        if self.version.load(Relaxed) != version {
            return None;
        }
        Some(inner.insert(query, summary, saved_pages))
    }
}

impl std::fmt::Debug for SharedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedCache")
            .field("entries", &self.len())
            .field("version", &self.version())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_hierarchy::HierarchySchema;
    use dc_mds::DimSet;

    fn schema() -> CubeSchema {
        let mut s = CubeSchema::new(
            vec![
                HierarchySchema::new("X", vec!["Region".into(), "Nation".into()]),
                HierarchySchema::new("Y", vec!["Year".into()]),
            ],
            "m",
        );
        for (r, n) in [("EU", "DE"), ("EU", "FR"), ("AS", "JP")] {
            for y in ["1996", "1997"] {
                s.intern_record(&[vec![r, n], vec![y]], 0).unwrap();
            }
        }
        s
    }

    fn record(s: &mut CubeSchema, r: &str, n: &str, y: &str, m: i64) -> Record {
        s.intern_record(&[vec![r, n], vec![y]], m).unwrap()
    }

    fn eu_96(s: &CubeSchema) -> Mds {
        Mds::new(vec![
            DimSet::singleton(s.dim(DimensionId(0)).lookup_path(&["EU"]).unwrap()),
            DimSet::singleton(s.dim(DimensionId(1)).lookup_path(&["1996"]).unwrap()),
        ])
    }

    #[test]
    fn exact_hit_after_insert() {
        let s = schema();
        let mut c = AggregateCache::new(CacheConfig::default());
        let q = eu_96(&s);
        let summary: MeasureSummary = [10i64, 20].into_iter().collect();
        c.insert(q.clone(), summary, 7);
        match c.lookup(&s, &q, true).unwrap() {
            InnerLookup::Hit(got) => assert_eq!(got, summary),
            _ => panic!("expected exact hit"),
        }
    }

    #[test]
    fn coarse_entry_is_patched_through_the_ancestor_chain() {
        let mut s = schema();
        let mut c = AggregateCache::new(CacheConfig::default());
        // Cached at the Region level; the record arrives at the leaf level.
        let q = eu_96(&s);
        c.insert(q.clone(), [10i64, 20].into_iter().collect(), 1);
        let r = record(&mut s, "EU", "DE", "1996", 5);
        let stats = c.apply_deltas(
            &s,
            &[CacheDelta {
                record: r,
                delete: false,
            }],
        );
        assert_eq!(stats.patches, 1);
        assert_eq!(stats.invalidations, 0);
        match c.lookup(&s, &q, true).unwrap() {
            InnerLookup::Hit(got) => {
                assert_eq!(got.sum, 35);
                assert_eq!(got.count, 3);
                assert_eq!(got.min, 5);
                assert_eq!(got.max, 20);
            }
            _ => panic!("expected hit"),
        }
        // A record outside the entry (AS or 1997) leaves it untouched.
        let out = record(&mut s, "AS", "JP", "1996", 100);
        let stats = c.apply_deltas(
            &s,
            &[CacheDelta {
                record: out,
                delete: false,
            }],
        );
        assert_eq!(stats.patches, 0);
    }

    #[test]
    fn delete_patches_sum_count_and_degrades_extrema_only_when_touched() {
        let mut s = schema();
        let mut c = AggregateCache::new(CacheConfig::default());
        let q = eu_96(&s);
        c.insert(q.clone(), [10i64, 20, 30].into_iter().collect(), 1);
        // Interior delete: everything stays exact.
        let mid = record(&mut s, "EU", "FR", "1996", 20);
        c.apply_deltas(
            &s,
            &[CacheDelta {
                record: mid,
                delete: true,
            }],
        );
        match c.lookup(&s, &q, true).unwrap() {
            InnerLookup::Hit(got) => {
                assert_eq!((got.sum, got.count, got.min, got.max), (40, 2, 10, 30))
            }
            _ => panic!("expected hit"),
        }
        // Extremum delete: sum/count remain servable, min/max do not.
        let top = record(&mut s, "EU", "DE", "1996", 30);
        let stats = c.apply_deltas(
            &s,
            &[CacheDelta {
                record: top,
                delete: true,
            }],
        );
        assert_eq!(stats.invalidations, 1);
        assert!(matches!(
            c.lookup(&s, &q, false).unwrap(),
            InnerLookup::Hit(got) if got.sum == 10 && got.count == 1
        ));
        assert!(matches!(c.lookup(&s, &q, true).unwrap(), InnerLookup::Miss));
    }

    #[test]
    fn semantic_lookup_returns_contained_entry_plus_remainder() {
        let s = schema();
        let mut c = AggregateCache::new(CacheConfig::default());
        // Cache {DE} × 1996; query EU × 1996.
        let entry = Mds::new(vec![
            DimSet::singleton(s.dim(DimensionId(0)).lookup_path(&["EU", "DE"]).unwrap()),
            DimSet::singleton(s.dim(DimensionId(1)).lookup_path(&["1996"]).unwrap()),
        ]);
        let base: MeasureSummary = [5i64].into_iter().collect();
        c.insert(entry, base, 3);
        match c.lookup(&s, &eu_96(&s), true).unwrap() {
            InnerLookup::Semantic {
                base: got,
                exact_extrema,
                remainders,
            } => {
                assert_eq!(got, base);
                assert!(exact_extrema);
                assert_eq!(remainders.len(), 1); // {FR} × {1996}
            }
            _ => panic!("expected semantic reuse"),
        }
    }

    #[test]
    fn eviction_prefers_low_benefit_entries() {
        let s = schema();
        let mut c = AggregateCache::new(CacheConfig {
            capacity: 2,
            ..CacheConfig::default()
        });
        let expensive = eu_96(&s);
        c.insert(expensive.clone(), MeasureSummary::of(1), 1_000);
        let cheap = Mds::new(vec![
            DimSet::singleton(s.dim(DimensionId(0)).lookup_path(&["AS"]).unwrap()),
            DimSet::singleton(s.dim(DimensionId(1)).lookup_path(&["1997"]).unwrap()),
        ]);
        c.insert(cheap, MeasureSummary::of(2), 1);
        // Keep the expensive entry warm.
        let _ = c.lookup(&s, &expensive, true).unwrap();
        let third = Mds::new(vec![
            DimSet::singleton(s.dim(DimensionId(0)).all()),
            DimSet::singleton(s.dim(DimensionId(1)).all()),
        ]);
        let stats = c.insert(third, MeasureSummary::of(3), 10);
        assert_eq!(stats.evictions, 1);
        assert_eq!(c.len(), 2);
        // The expensive, recently-hit entry survived.
        assert!(matches!(
            c.lookup(&s, &expensive, true).unwrap(),
            InnerLookup::Hit(_)
        ));
    }

    #[test]
    fn shared_cache_version_gates_stale_insertions() {
        let mut s = schema();
        let shared = SharedCache::new(CacheConfig::default());
        let q = eu_96(&s);
        let Lookup::Miss { version } = shared.lookup(&s, &q, true).unwrap() else {
            panic!("expected miss");
        };
        // A publish with deltas intervenes: the insertion must be dropped.
        let r = record(&mut s, "EU", "DE", "1996", 5);
        let (_, ()) = shared.publish(
            &s,
            &[CacheDelta {
                record: r,
                delete: false,
            }],
            || (),
        );
        assert!(shared
            .insert_if_current(version, q.clone(), MeasureSummary::of(1), 1)
            .is_none());
        // A delta-free publish (flush-only) does not bump the version.
        let Lookup::Miss { version } = shared.lookup(&s, &q, true).unwrap() else {
            panic!("expected miss");
        };
        let (_, ()) = shared.publish(&s, &[], || ());
        assert!(shared
            .insert_if_current(version, q, MeasureSummary::of(1), 1)
            .is_some());
        assert_eq!(shared.len(), 1);
    }
}
