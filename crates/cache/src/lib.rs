//! # dc-cache — a hierarchy-aware semantic aggregate cache
//!
//! Dashboard-style OLAP workloads hammer a small set of roll-up queries
//! while trickle loads mutate the cube underneath them. This crate caches
//! *normalized query MDSs* → materialized
//! [`MeasureSummary`](dc_common::MeasureSummary) aggregates for the serving
//! engine, with three properties a plain result-LRU lacks:
//!
//! 1. **Semantic reuse.** An exact hit answers immediately; failing that, a
//!    cached entry whose MDS is *contained* by the query (the sound Fig. 7
//!    direction — see [`semantic`]) contributes its summary wholesale, and
//!    only the disjoint remainder descends the tree.
//! 2. **Write-through delta maintenance.** Inserts and deletes *patch*
//!    affected entries through a per-(dimension, value) inverted index and
//!    the concept-hierarchy ancestor mapping, instead of blanket
//!    invalidation. SUM/COUNT are always exact; MIN/MAX are degraded only
//!    when a delete removes the extremum itself.
//! 3. **Cost-aware eviction.** Victims minimize pages-saved × hit-count
//!    discounted by recency, so an expensive roll-up the dashboard refreshes
//!    every few seconds outlives a cheap point query from an hour ago.
//!
//! ## Consistency with snapshot publication
//!
//! The serving engine publishes per-shard snapshots epoch-atomically; the
//! cache must never serve an answer a bypassing query could not have seen.
//! [`SharedCache`] therefore couples a publish *version* to the engine's
//! snapshot swaps: writers call [`SharedCache::publish`], which applies
//! their [`CacheDelta`] batch **and** swaps the snapshot while holding the
//! cache lock; query threads that miss record the version at lookup time
//! and insert via [`SharedCache::insert_if_current`], which discards
//! summaries computed against superseded snapshots.

#![warn(missing_docs)]

mod cache;
pub mod semantic;

pub use cache::{
    AggregateCache, ApplyStats, CacheConfig, CacheDelta, InnerLookup, InsertStats, Lookup,
    SharedCache,
};
