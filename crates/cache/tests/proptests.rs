//! Property tests pinning the semantic-reuse identity: for random
//! (cached entry ⊑ query) MDS pairs, the cached summary plus the summaries
//! of the remainder terms must equal the full-descent answer — an exact
//! partition, not a bound. The oracle is a plain scan over the record
//! multiset, independent of both the cache and the DC-tree.

use dc_cache::semantic::remainder_terms;
use dc_cache::{AggregateCache, CacheConfig, InnerLookup};
use dc_common::{DimensionId, Level, MeasureSummary, ValueId};
use dc_hierarchy::{CubeSchema, HierarchySchema, Record};
use dc_mds::{DimSet, Mds};
use proptest::prelude::*;

/// A fixed schema with a 3-level and a 2-level dimension, populated
/// deterministically so strategies can index into it (same cube as the
/// dc-mds property suite).
fn schema() -> CubeSchema {
    let mut s = CubeSchema::new(
        vec![
            HierarchySchema::new("X", vec!["A".into(), "B".into(), "C".into()]),
            HierarchySchema::new("Y", vec!["P".into(), "Q".into()]),
        ],
        "m",
    );
    for a in 0..4 {
        for b in 0..3 {
            for c in 0..3 {
                s.intern_record(
                    &[
                        vec![
                            format!("a{a}"),
                            format!("a{a}b{b}"),
                            format!("a{a}b{b}c{c}"),
                        ],
                        vec![
                            format!("p{}", (a + b) % 3),
                            format!("p{}q{}", (a + b) % 3, c),
                        ],
                    ],
                    0,
                )
                .unwrap();
            }
        }
    }
    s
}

/// Strategy: a random MDS over the fixed schema.
fn mds(schema: &CubeSchema) -> impl Strategy<Value = Mds> {
    let per_dim: Vec<_> = schema
        .dims()
        .map(|h| {
            let top = h.top_level();
            (0..=top as usize).prop_flat_map(move |level| {
                let level = level as Level;
                (Just(level), prop::collection::btree_set(0u32..64, 1..6))
            })
        })
        .collect();
    let counts: Vec<Vec<usize>> = schema
        .dims()
        .map(|h| (0..=h.top_level()).map(|l| h.num_values_at(l)).collect())
        .collect();
    per_dim.prop_map(move |dims| {
        Mds::new(
            dims.into_iter()
                .enumerate()
                .map(|(d, (level, picks))| {
                    let count = counts[d][level as usize] as u32;
                    let values: Vec<ValueId> = picks
                        .into_iter()
                        .map(|p| ValueId::new(level, p % count))
                        .collect();
                    DimSet::new(level, values)
                })
                .collect(),
        )
    })
}

/// Strategy: a random record multiset of the fixed schema.
fn records(schema: &CubeSchema) -> impl Strategy<Value = Vec<Record>> {
    let leaf_counts: Vec<u32> = schema.dims().map(|h| h.num_values_at(0) as u32).collect();
    prop::collection::vec((any::<u32>(), any::<u32>(), -50i64..50), 0..60).prop_map(move |raw| {
        raw.into_iter()
            .map(|(x, y, m)| {
                Record::new(
                    vec![
                        ValueId::new(0, x % leaf_counts[0]),
                        ValueId::new(0, y % leaf_counts[1]),
                    ],
                    m,
                )
            })
            .collect()
    })
}

/// Derives an entry MDS *contained in* `query` from per-dimension seeds:
/// push each dimension down `drop` levels (expanding through the
/// hierarchy) and keep a seed-chosen non-empty subset of the expansion.
fn contained_entry(schema: &CubeSchema, query: &Mds, seeds: &[(u8, u64)]) -> Mds {
    let dims = query
        .dims()
        .enumerate()
        .map(|(d, set)| {
            let (drop, pick) = seeds[d];
            let target = set.level().saturating_sub(drop % 3);
            let h = schema.dim(DimensionId(d as u16));
            let mut expanded: Vec<ValueId> = Vec::new();
            for &v in set.values() {
                expanded.extend(h.descendants_at(v, target).unwrap());
            }
            expanded.sort_unstable();
            expanded.dedup();
            let mut kept: Vec<ValueId> = expanded
                .iter()
                .enumerate()
                .filter(|(i, _)| pick >> (i % 64) & 1 == 1)
                .map(|(_, &v)| v)
                .collect();
            if kept.is_empty() {
                kept.push(expanded[pick as usize % expanded.len()]);
            }
            DimSet::new(target, kept)
        })
        .collect();
    Mds::new(dims)
}

/// The scan oracle: the summary of every record the MDS selects.
fn oracle(schema: &CubeSchema, q: &Mds, records: &[Record]) -> MeasureSummary {
    let mut total = MeasureSummary::empty();
    for r in records {
        if q.contains_record(schema, r).unwrap() {
            total.add(r.measure);
        }
    }
    total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// summary(query) == summary(entry) + Σ summary(remainder term): the
    /// box-difference decomposition partitions the query exactly, for any
    /// contained entry and any record multiset.
    #[test]
    fn semantic_reuse_equals_full_descent(
        q in mds(&schema()),
        seeds in prop::collection::vec((any::<u8>(), any::<u64>()), 2),
        rs in records(&schema()),
    ) {
        let s = schema();
        let entry = contained_entry(&s, &q, &seeds);
        prop_assert!(entry.contained_in(&q, &s).unwrap(), "construction broke containment");
        let terms = remainder_terms(&s, &q, &entry, 4096).unwrap()
            .expect("budget large enough for the fixed schema");

        let mut reused = oracle(&s, &entry, &rs);
        for t in &terms {
            // Terms must be disjoint from the entry and from each other —
            // otherwise the merge double-counts.
            prop_assert_eq!(t.overlap(&entry.adapt_to_levels(&s, &t.levels()).unwrap()), 0);
            reused.merge(&oracle(&s, t, &rs));
        }
        prop_assert_eq!(reused, oracle(&s, &q, &rs));
    }

    /// The same identity through the cache itself: insert the entry with
    /// its true summary, look the query up, and the assembled answer must
    /// equal the oracle whichever arm the lookup takes.
    #[test]
    fn cache_lookup_answers_match_oracle(
        q in mds(&schema()),
        seeds in prop::collection::vec((any::<u8>(), any::<u64>()), 2),
        rs in records(&schema()),
    ) {
        let s = schema();
        let entry = contained_entry(&s, &q, &seeds);
        let entry_summary = oracle(&s, &entry, &rs);
        let mut cache = AggregateCache::new(CacheConfig::default());
        cache.insert(entry, entry_summary, 1);

        let want = oracle(&s, &q, &rs);
        match cache.lookup(&s, &q, true).unwrap() {
            InnerLookup::Hit(got) => prop_assert_eq!(got, want),
            InnerLookup::Semantic { base, exact_extrema, remainders } => {
                prop_assert!(exact_extrema);
                let mut got = base;
                for t in &remainders {
                    got.merge(&oracle(&s, t, &rs));
                }
                prop_assert_eq!(got, want);
            }
            // Only legitimate when the entry covers nothing (the lookup
            // skips empty entries — nothing to reuse).
            InnerLookup::Miss => prop_assert!(entry_summary.is_empty()),
        }
    }

    /// Write-through patching keeps exact-hit answers equal to a rescan of
    /// the mutated multiset (while extrema stay valid).
    #[test]
    fn patched_entries_match_rescan(
        q in mds(&schema()),
        rs in records(&schema()),
        extra in records(&schema()),
    ) {
        use dc_cache::CacheDelta;
        let s = schema();
        let mut cache = AggregateCache::new(CacheConfig::default());
        cache.insert(q.clone(), oracle(&s, &q, &rs), 1);

        let mut live: Vec<Record> = rs.clone();
        let mut deltas = Vec::new();
        for (i, r) in extra.iter().enumerate() {
            if i % 3 == 0 && !live.is_empty() {
                let victim = live.remove(i % live.len());
                deltas.push(CacheDelta { record: victim, delete: true });
            } else {
                live.push(r.clone());
                deltas.push(CacheDelta { record: r.clone(), delete: false });
            }
        }
        cache.apply_deltas(&s, &deltas);

        let want = oracle(&s, &q, &live);
        match cache.lookup(&s, &q, false).unwrap() {
            InnerLookup::Hit(got) => {
                // Sum and count are always patched exactly; extrema only
                // when no delete touched them (then the full summary holds).
                prop_assert_eq!(got.sum, want.sum);
                prop_assert_eq!(got.count, want.count);
            }
            other => {
                let kind = match other {
                    InnerLookup::Semantic { .. } => "semantic",
                    _ => "miss",
                };
                prop_assert!(false, "exact entry disappeared: {}", kind);
            }
        }
        if let InnerLookup::Hit(got) = cache.lookup(&s, &q, true).unwrap() {
            prop_assert_eq!(got, want, "extrema-valid hit must be the full truth");
        }
    }
}
