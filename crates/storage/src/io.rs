//! Logical I/O accounting.
//!
//! Query and insert paths charge one logical *page read* (or write) per
//! block of every node they touch. Supernodes therefore cost as many
//! accesses as they span blocks — exactly the cost model under which the
//! paper's supernode trade-off (one multi-block sequential read instead of
//! overlapping subtrees) is discussed.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A snapshot of I/O counters.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct IoStats {
    /// Logical block reads.
    pub reads: u64,
    /// Logical block writes.
    pub writes: u64,
}

impl IoStats {
    /// Total logical accesses.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Component-wise difference (`self` must be the later snapshot).
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
        }
    }
}

impl fmt::Display for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} reads / {} writes", self.reads, self.writes)
    }
}

/// Interior-mutable I/O counter, so `&self` query paths can account reads.
///
/// Counters are relaxed atomics: the index structures themselves are
/// single-writer, but read-only queries may run from several threads (the
/// `ConcurrentDcTree` wrapper), and counting must not un-`Sync` the trees.
#[derive(Default, Debug)]
pub struct IoTracker {
    reads: AtomicU64,
    writes: AtomicU64,
    /// Optional access trace (synthetic block ids) for cache simulation;
    /// `None` when tracing is off. Uncontended in practice — tracing is a
    /// single-threaded measurement mode.
    trace: Mutex<Option<Vec<u64>>>,
}

impl IoTracker {
    /// Fresh tracker with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `blocks` logical reads.
    #[inline]
    pub fn read(&self, blocks: u32) {
        self.reads.fetch_add(blocks as u64, Ordering::Relaxed);
    }

    /// Charges `blocks` logical writes.
    #[inline]
    pub fn write(&self, blocks: u32) {
        self.writes.fetch_add(blocks as u64, Ordering::Relaxed);
    }

    /// Charges `blocks` logical reads attributed to the storage object
    /// `key` (e.g. a node id); when tracing is active, appends one synthetic
    /// block id per block to the trace so [`CacheSim`] can replay it.
    ///
    /// [`CacheSim`]: crate::cachesim::CacheSim
    #[inline]
    pub fn read_keyed(&self, key: u64, blocks: u32) {
        self.read(blocks);
        let mut guard = self.trace.lock().expect("trace mutex");
        if let Some(trace) = guard.as_mut() {
            for b in 0..blocks as u64 {
                trace.push(key * 4096 + b);
            }
        }
    }

    /// Starts recording an access trace (clearing any previous one).
    pub fn begin_trace(&self) {
        *self.trace.lock().expect("trace mutex") = Some(Vec::new());
    }

    /// Stops recording and returns the trace (empty if tracing was off).
    pub fn end_trace(&self) -> Vec<u64> {
        self.trace
            .lock()
            .expect("trace mutex")
            .take()
            .unwrap_or_default()
    }

    /// Current counter values.
    pub fn stats(&self) -> IoStats {
        IoStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }

    /// Resets both counters to zero.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
    }
}

impl Clone for IoTracker {
    fn clone(&self) -> Self {
        // Counters carry over; an in-progress trace does not.
        let t = IoTracker::new();
        let s = self.stats();
        t.reads.store(s.reads, Ordering::Relaxed);
        t.writes.store(s.writes, Ordering::Relaxed);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_accumulates() {
        let t = IoTracker::new();
        t.read(1);
        t.read(3);
        t.write(2);
        assert_eq!(
            t.stats(),
            IoStats {
                reads: 4,
                writes: 2
            }
        );
        assert_eq!(t.stats().total(), 6);
    }

    #[test]
    fn since_computes_deltas() {
        let t = IoTracker::new();
        t.read(10);
        let before = t.stats();
        t.read(5);
        t.write(1);
        let delta = t.stats().since(&before);
        assert_eq!(
            delta,
            IoStats {
                reads: 5,
                writes: 1
            }
        );
    }

    #[test]
    fn keyed_reads_trace_when_enabled() {
        let t = IoTracker::new();
        t.read_keyed(7, 2); // tracing off: only counters move
        t.begin_trace();
        t.read_keyed(1, 1);
        t.read_keyed(2, 3);
        let trace = t.end_trace();
        assert_eq!(trace.len(), 4);
        assert_eq!(trace[0], 4096);
        assert_eq!(&trace[1..], &[2 * 4096, 2 * 4096 + 1, 2 * 4096 + 2]);
        assert_eq!(t.stats().reads, 2 + 4);
        // A second end without begin yields empty.
        assert!(t.end_trace().is_empty());
    }

    #[test]
    fn reset_zeroes() {
        let t = IoTracker::new();
        t.read(7);
        t.reset();
        assert_eq!(t.stats(), IoStats::default());
    }
}
