//! Trace-driven cache simulation.
//!
//! The paper normalizes resources by restricting "the main memory available
//! for the X-tree … to the memory size that the DC-tree uses". This module
//! makes that comparison executable: index structures record a trace of
//! logical block accesses (see [`IoTracker::begin_trace`]), and
//! [`CacheSim`] replays a trace against an LRU cache of a fixed frame
//! budget, yielding the **physical** reads a disk-resident deployment with
//! that much memory would issue.
//!
//! [`IoTracker::begin_trace`]: crate::io::IoTracker::begin_trace

use std::collections::HashMap;

/// Result of replaying one trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheReport {
    /// Logical block accesses in the trace.
    pub logical: u64,
    /// Accesses that missed the cache (physical reads).
    pub physical: u64,
    /// Cache capacity used, in frames (blocks).
    pub frames: usize,
}

impl CacheReport {
    /// Fraction of accesses served from memory.
    pub fn hit_ratio(&self) -> f64 {
        if self.logical == 0 {
            return 1.0;
        }
        1.0 - self.physical as f64 / self.logical as f64
    }
}

/// An LRU cache simulator over block identifiers.
#[derive(Debug)]
pub struct CacheSim {
    frames: usize,
    /// block → last-use clock
    resident: HashMap<u64, u64>,
    clock: u64,
}

impl CacheSim {
    /// A simulator with a budget of `frames` blocks.
    ///
    /// # Panics
    /// Panics if `frames` is zero.
    pub fn new(frames: usize) -> Self {
        assert!(frames > 0, "a cache needs at least one frame");
        CacheSim {
            frames,
            resident: HashMap::new(),
            clock: 0,
        }
    }

    /// Touches one block; returns `true` on a hit.
    pub fn touch(&mut self, block: u64) -> bool {
        self.clock += 1;
        if let Some(last) = self.resident.get_mut(&block) {
            *last = self.clock;
            return true;
        }
        if self.resident.len() >= self.frames {
            // Evict the least recently used frame. Linear scan: simulation
            // budgets are small and correctness is what matters here.
            let victim = *self
                .resident
                .iter()
                .min_by_key(|(_, &t)| t)
                .map(|(b, _)| b)
                .expect("non-empty cache");
            self.resident.remove(&victim);
        }
        self.resident.insert(block, self.clock);
        false
    }

    /// Replays a trace of block ids, returning the physical-read report.
    pub fn replay(frames: usize, trace: impl IntoIterator<Item = u64>) -> CacheReport {
        let mut sim = CacheSim::new(frames);
        let mut logical = 0;
        let mut physical = 0;
        for block in trace {
            logical += 1;
            if !sim.touch(block) {
                physical += 1;
            }
        }
        CacheReport {
            logical,
            physical,
            frames,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits_after_first_miss() {
        let r = CacheSim::replay(4, [1, 1, 1, 1, 1]);
        assert_eq!(r.logical, 5);
        assert_eq!(r.physical, 1);
        assert!((r.hit_ratio() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn working_set_within_budget_misses_once_per_block() {
        let trace: Vec<u64> = (0..4).cycle().take(40).collect();
        let r = CacheSim::replay(4, trace);
        assert_eq!(r.physical, 4);
    }

    #[test]
    fn lru_thrashes_on_cyclic_overflow() {
        // Classic LRU worst case: cycling over frames+1 blocks misses every
        // access.
        let trace: Vec<u64> = (0..5).cycle().take(50).collect();
        let r = CacheSim::replay(4, trace);
        assert_eq!(r.physical, 50);
    }

    #[test]
    fn hot_block_survives_scans() {
        // Touch block 0 between scans of a large set: with 2 frames the hot
        // block keeps hitting while scan blocks miss.
        let mut trace = Vec::new();
        for i in 0..20u64 {
            trace.push(0);
            trace.push(100 + i);
        }
        let r = CacheSim::replay(2, trace);
        assert_eq!(
            r.physical,
            1 + 20,
            "one miss for block 0, one per scan block"
        );
    }

    #[test]
    fn empty_trace() {
        let r = CacheSim::replay(8, []);
        assert_eq!(r.logical, 0);
        assert_eq!(r.physical, 0);
        assert_eq!(r.hit_ratio(), 1.0);
    }
}
