//! A block-aligned paged file: the on-disk substrate a production
//! deployment of the trees would sit on.
//!
//! Layout: page 0 is the header (magic, block size, page count, free-list
//! head); every other page is either live data or a free-list link. Freed
//! pages form an intrusive singly-linked list threaded through their first
//! eight bytes, so allocation is O(1) and the file is reused instead of
//! growing monotonically.
//!
//! The paged file itself is deliberately dumb — fixed-size page reads and
//! writes plus allocation — with all caching delegated to
//! [`BufferPool`](crate::buffer::BufferPool), mirroring the classic DBMS split.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use dc_common::{DcError, DcResult};

use crate::block::BlockConfig;
use crate::io::IoTracker;

const MAGIC: u64 = 0x4443_5041_4745_4431; // "DCPAGED1"
const NO_PAGE: u64 = u64::MAX;

/// Identifier of a page within a [`PagedFile`] (page 0 is the header and
/// never handed out).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PageId(pub u64);

/// A block-aligned file of fixed-size pages with a free list.
#[derive(Debug)]
pub struct PagedFile {
    file: File,
    block: BlockConfig,
    num_pages: u64,
    free_head: u64,
    io: IoTracker,
}

impl PagedFile {
    /// Creates a new paged file (truncating any existing one).
    pub fn create(path: impl AsRef<Path>, block: BlockConfig) -> DcResult<Self> {
        assert!(
            block.block_size >= 32,
            "pages must hold at least the header"
        );
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut pf = PagedFile {
            file,
            block,
            num_pages: 1,
            free_head: NO_PAGE,
            io: IoTracker::new(),
        };
        pf.write_header()?;
        Ok(pf)
    }

    /// Opens an existing paged file, validating its header.
    pub fn open(path: impl AsRef<Path>, block: BlockConfig) -> DcResult<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut pf = PagedFile {
            file,
            block,
            num_pages: 0,
            free_head: NO_PAGE,
            io: IoTracker::new(),
        };
        let header = pf.read_page_raw(0)?;
        let magic = u64::from_le_bytes(header[0..8].try_into().expect("8 bytes"));
        if magic != MAGIC {
            return Err(DcError::Corrupt("not a DC paged file".into()));
        }
        let stored_block = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes")) as usize;
        if stored_block != block.block_size {
            return Err(DcError::Corrupt(format!(
                "file uses {stored_block}-byte pages, opened with {}",
                block.block_size
            )));
        }
        pf.num_pages = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
        pf.free_head = u64::from_le_bytes(header[24..32].try_into().expect("8 bytes"));
        if pf.num_pages == 0 {
            return Err(DcError::Corrupt(
                "paged file header claims zero pages".into(),
            ));
        }
        pf.check_free_link(pf.free_head)?;
        Ok(pf)
    }

    /// Validates a free-list link read from disk: either the end-of-list
    /// sentinel or a data-page id. Following a corrupt link would silently
    /// hand out the header page or read past the file.
    fn check_free_link(&self, link: u64) -> DcResult<()> {
        if link != NO_PAGE && (link == 0 || link >= self.num_pages) {
            return Err(DcError::Corrupt(format!(
                "free-list link {link} out of bounds ({} pages)",
                self.num_pages
            )));
        }
        Ok(())
    }

    /// The page size in bytes.
    pub fn page_size(&self) -> usize {
        self.block.block_size
    }

    /// Total pages in the file, header included.
    pub fn num_pages(&self) -> u64 {
        self.num_pages
    }

    /// Physical I/O counters (header maintenance included).
    pub fn io_stats(&self) -> crate::io::IoStats {
        self.io.stats()
    }

    fn write_header(&mut self) -> DcResult<()> {
        let mut page = vec![0u8; self.block.block_size];
        page[0..8].copy_from_slice(&MAGIC.to_le_bytes());
        page[8..16].copy_from_slice(&(self.block.block_size as u64).to_le_bytes());
        page[16..24].copy_from_slice(&self.num_pages.to_le_bytes());
        page[24..32].copy_from_slice(&self.free_head.to_le_bytes());
        self.write_page_raw(0, &page)
    }

    fn read_page_raw(&mut self, page: u64) -> DcResult<Vec<u8>> {
        let mut buf = vec![0u8; self.block.block_size];
        self.file
            .seek(SeekFrom::Start(page * self.block.block_size as u64))?;
        self.file.read_exact(&mut buf)?;
        self.io.read(1);
        Ok(buf)
    }

    fn write_page_raw(&mut self, page: u64, data: &[u8]) -> DcResult<()> {
        debug_assert_eq!(data.len(), self.block.block_size);
        self.file
            .seek(SeekFrom::Start(page * self.block.block_size as u64))?;
        self.file.write_all(data)?;
        self.io.write(1);
        Ok(())
    }

    /// Allocates a page: reuses the free list if possible, otherwise grows
    /// the file.
    pub fn alloc(&mut self) -> DcResult<PageId> {
        let id = if self.free_head != NO_PAGE {
            let head = self.free_head;
            let page = self.read_page_raw(head)?;
            let next = u64::from_le_bytes(page[0..8].try_into().expect("8 bytes"));
            self.check_free_link(next)?;
            self.free_head = next;
            // Zero the recycled page so stale free-list links (or old
            // content) never leak to the new owner.
            self.write_page_raw(head, &vec![0u8; self.block.block_size])?;
            head
        } else {
            let id = self.num_pages;
            self.num_pages += 1;
            // Materialize the page so reads within the file length succeed.
            self.write_page_raw(id, &vec![0u8; self.block.block_size])?;
            id
        };
        self.write_header()?;
        Ok(PageId(id))
    }

    /// Returns a page to the free list.
    ///
    /// # Panics
    /// Panics on an attempt to free the header page.
    pub fn free(&mut self, id: PageId) -> DcResult<()> {
        assert_ne!(id.0, 0, "cannot free the header page");
        if id.0 >= self.num_pages {
            return Err(DcError::Corrupt(format!(
                "freeing page {} beyond the file ({} pages)",
                id.0, self.num_pages
            )));
        }
        let mut page = vec![0u8; self.block.block_size];
        page[0..8].copy_from_slice(&self.free_head.to_le_bytes());
        self.write_page_raw(id.0, &page)?;
        self.free_head = id.0;
        self.write_header()
    }

    /// Reads a full page.
    pub fn read(&mut self, id: PageId) -> DcResult<Vec<u8>> {
        if id.0 == 0 || id.0 >= self.num_pages {
            return Err(DcError::Corrupt(format!("page {} out of bounds", id.0)));
        }
        self.read_page_raw(id.0)
    }

    /// Writes a full page (must be exactly `page_size` bytes).
    pub fn write(&mut self, id: PageId, data: &[u8]) -> DcResult<()> {
        if id.0 == 0 || id.0 >= self.num_pages {
            return Err(DcError::Corrupt(format!("page {} out of bounds", id.0)));
        }
        if data.len() != self.block.block_size {
            return Err(DcError::Corrupt(format!(
                "page write of {} bytes into {}-byte pages",
                data.len(),
                self.block.block_size
            )));
        }
        self.write_page_raw(id.0, data)
    }

    /// Flushes OS buffers to durable storage.
    pub fn sync(&mut self) -> DcResult<()> {
        self.file.sync_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("dc-storage-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn create_alloc_write_read_roundtrip() {
        let path = tmp("roundtrip");
        let mut f = PagedFile::create(&path, BlockConfig::new(256)).unwrap();
        let a = f.alloc().unwrap();
        let b = f.alloc().unwrap();
        assert_ne!(a, b);
        let data_a = vec![0xAB; 256];
        let data_b = vec![0xCD; 256];
        f.write(a, &data_a).unwrap();
        f.write(b, &data_b).unwrap();
        assert_eq!(f.read(a).unwrap(), data_a);
        assert_eq!(f.read(b).unwrap(), data_b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_preserves_contents_and_freelist() {
        let path = tmp("reopen");
        let (a, b);
        {
            let mut f = PagedFile::create(&path, BlockConfig::new(128)).unwrap();
            a = f.alloc().unwrap();
            b = f.alloc().unwrap();
            f.write(a, &[7u8; 128]).unwrap();
            f.free(b).unwrap();
            f.sync().unwrap();
        }
        let mut f = PagedFile::open(&path, BlockConfig::new(128)).unwrap();
        assert_eq!(f.read(a).unwrap(), vec![7u8; 128]);
        // The freed page is recycled before the file grows.
        let c = f.alloc().unwrap();
        assert_eq!(c, b);
        let d = f.alloc().unwrap();
        assert!(d.0 > c.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_block_size_rejected_on_open() {
        let path = tmp("blocksize");
        PagedFile::create(&path, BlockConfig::new(128)).unwrap();
        // Larger pages may fail with an I/O error (file shorter than one
        // page) or Corrupt (header mismatch) — either way it must not open.
        assert!(PagedFile::open(&path, BlockConfig::new(256)).is_err());
        assert!(matches!(
            PagedFile::open(&path, BlockConfig::new(64)),
            Err(DcError::Corrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_bounds_and_bad_sizes_are_errors() {
        let path = tmp("bounds");
        let mut f = PagedFile::create(&path, BlockConfig::new(128)).unwrap();
        let a = f.alloc().unwrap();
        assert!(f.read(PageId(0)).is_err(), "header is not readable as data");
        assert!(f.read(PageId(99)).is_err());
        assert!(f.write(a, &[0u8; 64]).is_err(), "short writes rejected");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn free_list_is_lifo_and_reusable() {
        let path = tmp("freelist");
        let mut f = PagedFile::create(&path, BlockConfig::new(128)).unwrap();
        let pages: Vec<PageId> = (0..5).map(|_| f.alloc().unwrap()).collect();
        for &p in &pages {
            f.free(p).unwrap();
        }
        // LIFO reuse.
        for &p in pages.iter().rev() {
            assert_eq!(f.alloc().unwrap(), p);
        }
        assert_eq!(f.num_pages(), 6); // header + 5, never grew past that
        std::fs::remove_file(&path).ok();
    }

    /// Regression test for free-list handling across reopen: a page freed
    /// before close must be the first one handed out after reopen, instead
    /// of the file growing a new page.
    #[test]
    fn alloc_free_reopen_alloc_reuses_freed_page() {
        let path = tmp("freelist-reopen");
        let freed;
        let pages_before;
        {
            let mut f = PagedFile::create(&path, BlockConfig::new(128)).unwrap();
            let _keep = f.alloc().unwrap();
            freed = f.alloc().unwrap();
            f.free(freed).unwrap();
            pages_before = f.num_pages();
            f.sync().unwrap();
        }
        let mut f = PagedFile::open(&path, BlockConfig::new(128)).unwrap();
        let reused = f.alloc().unwrap();
        assert_eq!(reused, freed, "freed page is reused after reopen");
        assert_eq!(
            f.num_pages(),
            pages_before,
            "the file must not grow while the free list is non-empty"
        );
        // The recycled page comes back zeroed, not carrying its old link.
        assert_eq!(f.read(reused).unwrap(), vec![0u8; 128]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_free_list_links_are_checked_errors() {
        let path = tmp("freelist-corrupt");
        {
            let mut f = PagedFile::create(&path, BlockConfig::new(128)).unwrap();
            let a = f.alloc().unwrap();
            f.free(a).unwrap();
            f.sync().unwrap();
        }
        // Smash the header's free_head to point past the file.
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut raw = OpenOptions::new().write(true).open(&path).unwrap();
            raw.seek(SeekFrom::Start(24)).unwrap();
            raw.write_all(&999u64.to_le_bytes()).unwrap();
        }
        assert!(matches!(
            PagedFile::open(&path, BlockConfig::new(128)),
            Err(DcError::Corrupt(_))
        ));
        // Out-of-bounds frees are rejected too.
        let path2 = tmp("freelist-badfree");
        let mut f = PagedFile::create(&path2, BlockConfig::new(128)).unwrap();
        assert!(matches!(f.free(PageId(42)), Err(DcError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&path2).ok();
    }

    #[test]
    fn garbage_file_rejected() {
        let path = tmp("garbage");
        std::fs::write(&path, vec![0u8; 512]).unwrap();
        assert!(PagedFile::open(&path, BlockConfig::new(128)).is_err());
        std::fs::remove_file(&path).ok();
    }
}
