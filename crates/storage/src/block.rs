//! Block-size arithmetic.

/// Configuration of the simulated block device.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BlockConfig {
    /// Size of one disk block in bytes. The paper's node capacities are
    /// expressed in multiples of this "standard block size".
    pub block_size: usize,
}

impl BlockConfig {
    /// A typical 4 KiB block.
    pub const DEFAULT: BlockConfig = BlockConfig { block_size: 4096 };

    /// Creates a configuration with the given block size.
    ///
    /// # Panics
    /// Panics if `block_size` is zero.
    pub fn new(block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        BlockConfig { block_size }
    }

    /// Number of whole blocks needed to store `bytes` (at least 1: even an
    /// empty node occupies its block).
    pub fn blocks_for(&self, bytes: usize) -> u32 {
        (bytes.max(1)).div_ceil(self.block_size) as u32
    }

    /// Capacity in bytes of a (super)node spanning `blocks` blocks.
    pub fn bytes_for(&self, blocks: u32) -> usize {
        self.block_size * blocks as usize
    }
}

impl Default for BlockConfig {
    fn default() -> Self {
        BlockConfig::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_for_rounds_up() {
        let c = BlockConfig::new(4096);
        assert_eq!(c.blocks_for(0), 1);
        assert_eq!(c.blocks_for(1), 1);
        assert_eq!(c.blocks_for(4096), 1);
        assert_eq!(c.blocks_for(4097), 2);
        assert_eq!(c.blocks_for(3 * 4096), 3);
    }

    #[test]
    fn bytes_for_is_inverse_bound() {
        let c = BlockConfig::new(512);
        for blocks in 1..5 {
            let bytes = c.bytes_for(blocks);
            assert_eq!(c.blocks_for(bytes), blocks);
            assert_eq!(c.blocks_for(bytes + 1), blocks + 1);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_block_size_panics() {
        let _ = BlockConfig::new(0);
    }
}
