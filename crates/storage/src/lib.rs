//! # dc-storage
//!
//! The simulated block-storage layer shared by the DC-tree and the X-tree.
//!
//! The paper's trees are disk-based structures with a "standard block size"
//! and *supernodes* spanning "a multiple of the standard block size". This
//! crate supplies the pieces that make those notions concrete without tying
//! the index structures to a real disk:
//!
//! * [`BlockConfig`] — the block size and the byte↔block arithmetic used
//!   for node capacities and supernode growth;
//! * [`IoStats`] / [`IoTracker`] — logical page-access counters charged on
//!   every node touch, so experiments can report page I/O alongside wall
//!   time (the machine-independent half of the paper's measurements);
//! * [`codec`] — a small, checked binary reader/writer used to persist
//!   trees and to compute byte-accurate node sizes;
//! * [`PagedFile`] — a block-aligned file of fixed-size pages with a free
//!   list, the on-disk substrate of a production deployment;
//! * [`BufferPool`] — a pinned, write-back LRU cache of fixed frame count
//!   over a paged file, with hit/miss accounting.

pub mod block;
pub mod buffer;
pub mod cachesim;
pub mod codec;
pub mod io;
pub mod paged;

pub use block::BlockConfig;
pub use buffer::{BufferPool, PinGuard, PoolStats};
pub use cachesim::{CacheReport, CacheSim};
pub use codec::{crc32, ByteReader, ByteWriter};
pub use io::{IoStats, IoTracker};
pub use paged::{PageId, PagedFile};
