//! A small, checked binary codec.
//!
//! Used for two purposes:
//! 1. computing the exact serialized byte size of tree nodes (the quantity
//!    compared against the block size for capacity and supernode decisions);
//! 2. persisting whole trees to disk and loading them back.
//!
//! All integers are little-endian and fixed-width; strings are
//! length-prefixed UTF-8. Reads are bounds- and UTF-8-checked and fail with
//! [`DcError::Corrupt`] instead of panicking, so a damaged image can never
//! crash the process.

use bytes::{Buf, BufMut, BytesMut};
use dc_common::{DcError, DcResult};

/// Append-only binary writer.
#[derive(Default, Debug)]
pub struct ByteWriter {
    buf: BytesMut,
}

impl ByteWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` iff nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf.to_vec()
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.put_u16_le(v);
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Appends an `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.put_i64_le(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.put_slice(s.as_bytes());
    }
}

/// Checked binary reader over a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
}

impl<'a> ByteReader<'a> {
    /// Reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Fails with [`DcError::Corrupt`] unless all input was consumed.
    pub fn expect_end(&self) -> DcResult<()> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(DcError::Corrupt(format!(
                "{} trailing bytes",
                self.buf.len()
            )))
        }
    }

    fn take(&mut self, n: usize) -> DcResult<&'a [u8]> {
        if self.buf.len() < n {
            return Err(DcError::Corrupt(format!(
                "needed {n} bytes, only {} remain",
                self.buf.len()
            )));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> DcResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn get_u16(&mut self) -> DcResult<u16> {
        Ok(self.take(2)?.get_u16_le())
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> DcResult<u32> {
        Ok(self.take(4)?.get_u32_le())
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> DcResult<u64> {
        Ok(self.take(8)?.get_u64_le())
    }

    /// Reads an `i64`.
    pub fn get_i64(&mut self) -> DcResult<i64> {
        Ok(self.take(8)?.get_i64_le())
    }

    /// Reads an element count that will drive a `Vec::with_capacity`,
    /// validating it against the bytes actually remaining: a count claiming
    /// more than `remaining / min_elem_size` elements cannot be honest, so a
    /// corrupted length field fails with [`DcError::Corrupt`] instead of
    /// triggering a huge allocation.
    pub fn get_count(&mut self, min_elem_size: usize) -> DcResult<usize> {
        let count = self.get_u32()? as usize;
        let bound = self.remaining() / min_elem_size.max(1);
        if count > bound {
            return Err(DcError::Corrupt(format!(
                "count {count} exceeds what {} remaining bytes can hold",
                self.remaining()
            )));
        }
        Ok(count)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> DcResult<String> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| DcError::Corrupt(format!("invalid UTF-8 string: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_i64(-42);
        w.put_str("DC-tree");
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 300);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), 1 << 40);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_str().unwrap(), "DC-tree");
        r.expect_end().unwrap();
    }

    #[test]
    fn truncated_input_is_corrupt_not_panic() {
        let mut w = ByteWriter::new();
        w.put_u64(1);
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes[..5]);
        assert!(matches!(r.get_u64(), Err(DcError::Corrupt(_))));
    }

    #[test]
    fn oversized_string_length_is_corrupt() {
        let mut w = ByteWriter::new();
        w.put_u32(1_000_000); // claims a huge string
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.get_str(), Err(DcError::Corrupt(_))));
    }

    #[test]
    fn invalid_utf8_is_corrupt() {
        let mut w = ByteWriter::new();
        w.put_u32(2);
        let mut bytes = w.into_vec();
        bytes.extend_from_slice(&[0xff, 0xfe]);
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.get_str(), Err(DcError::Corrupt(_))));
    }

    #[test]
    fn get_count_bounds_against_remaining() {
        let mut w = ByteWriter::new();
        w.put_u32(3);
        w.put_u32(1);
        w.put_u32(2);
        w.put_u32(3);
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_count(4).unwrap(), 3);
        // A count claiming more elements than bytes remain is corrupt.
        let mut w = ByteWriter::new();
        w.put_u32(1_000);
        w.put_u32(1);
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.get_count(4), Err(DcError::Corrupt(_))));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = ByteWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes);
        let _ = r.get_u8().unwrap();
        assert!(matches!(r.expect_end(), Err(DcError::Corrupt(_))));
    }
}

/// CRC-32 (IEEE 802.3) over a byte slice — used by the write-ahead log to
/// detect torn or corrupted entries. Table-driven, computed at first use.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod crc_tests {
    use super::crc32;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the dc-tree stays online".to_vec();
        let clean = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), clean, "flip at {i}:{bit} undetected");
            }
        }
    }
}
