//! A fixed-capacity LRU buffer pool over a [`PagedFile`].
//!
//! Classic DBMS buffering: pages are fetched into frames, pinned while in
//! use, and evicted least-recently-used when the pool is full; dirty frames
//! are written back on eviction and on [`flush`](BufferPool::flush). Hit and
//! miss counts are tracked so experiments can reason about the cache the
//! paper's "memory restricted to the size the DC-tree uses" comparison
//! implies.
//!
//! Pinning is RAII: [`BufferPool::pin`] returns a [`PinGuard`] that unpins
//! on drop; the closure API ([`with_page`](BufferPool::with_page) /
//! [`with_page_mut`](BufferPool::with_page_mut)) is kept as a thin wrapper
//! over it. Victim selection walks a recency-ordered `BTreeMap` keyed by a
//! monotone clock instead of scanning every frame, so eviction is
//! `O(log frames)` rather than `O(frames)`.

use std::collections::{BTreeMap, HashMap};

use dc_common::{DcError, DcResult};

use crate::paged::{PageId, PagedFile};

#[derive(Debug)]
struct Frame {
    page: PageId,
    data: Vec<u8>,
    dirty: bool,
    pins: u32,
    /// Monotone clock of the last touch, for LRU.
    last_used: u64,
}

/// Buffer-pool counters.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct PoolStats {
    /// Requests served from memory.
    pub hits: u64,
    /// Requests that had to read the file.
    pub misses: u64,
    /// Dirty frames written back.
    pub writebacks: u64,
    /// Frames evicted.
    pub evictions: u64,
}

/// An LRU buffer pool of fixed frame count over a paged file.
#[derive(Debug)]
pub struct BufferPool {
    file: PagedFile,
    capacity: usize,
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    /// Recency order: `last_used` clock → frame index. The clock is strictly
    /// monotone, so keys are unique; the first unpinned entry is the LRU
    /// victim.
    lru: BTreeMap<u64, usize>,
    clock: u64,
    stats: PoolStats,
}

impl BufferPool {
    /// Wraps `file` with a pool of `capacity` frames.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(file: PagedFile, capacity: usize) -> Self {
        assert!(capacity > 0, "a buffer pool needs at least one frame");
        BufferPool {
            file,
            capacity,
            frames: Vec::new(),
            map: HashMap::new(),
            lru: BTreeMap::new(),
            clock: 0,
            stats: PoolStats::default(),
        }
    }

    /// Pool counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// The underlying file (e.g. for allocation or its I/O stats).
    pub fn file_mut(&mut self) -> &mut PagedFile {
        &mut self.file
    }

    /// Allocates a fresh page (delegates to the file).
    pub fn alloc(&mut self) -> DcResult<PageId> {
        self.file.alloc()
    }

    /// Frees a page, dropping any cached frame for it.
    pub fn free(&mut self, page: PageId) -> DcResult<()> {
        if let Some(&idx) = self.map.get(&page) {
            if self.frames[idx].pins > 0 {
                return Err(DcError::Corrupt(format!("freeing pinned page {}", page.0)));
            }
            self.map.remove(&page);
            self.remove_frame(idx);
        }
        self.file.free(page)
    }

    /// Drops frame `idx` from the slab, repairing both indices for the frame
    /// that `swap_remove` moved into its slot. The caller has already
    /// removed the frame's own `map` entry.
    fn remove_frame(&mut self, idx: usize) -> Frame {
        let frame = self.frames.swap_remove(idx);
        self.lru.remove(&frame.last_used);
        if idx < self.frames.len() {
            let moved = &self.frames[idx];
            self.map.insert(moved.page, idx);
            self.lru.insert(moved.last_used, idx);
        }
        frame
    }

    fn touch(&mut self, idx: usize) {
        self.clock += 1;
        self.lru.remove(&self.frames[idx].last_used);
        self.frames[idx].last_used = self.clock;
        self.lru.insert(self.clock, idx);
    }

    fn load(&mut self, page: PageId) -> DcResult<usize> {
        if let Some(&idx) = self.map.get(&page) {
            self.stats.hits += 1;
            self.touch(idx);
            return Ok(idx);
        }
        self.stats.misses += 1;
        if self.frames.len() >= self.capacity {
            self.evict_one()?;
        }
        let data = self.file.read(page)?;
        let idx = self.frames.len();
        self.frames.push(Frame {
            page,
            data,
            dirty: false,
            pins: 0,
            last_used: 0,
        });
        self.map.insert(page, idx);
        self.touch(idx);
        Ok(idx)
    }

    fn evict_one(&mut self) -> DcResult<()> {
        // Oldest-first walk of the recency order; only pinned frames are
        // skipped, so this terminates after at most `pins + 1` steps.
        let victim = self
            .lru
            .values()
            .copied()
            .find(|&i| self.frames[i].pins == 0)
            .ok_or_else(|| DcError::Corrupt("all buffer frames pinned".into()))?;
        self.map.remove(&self.frames[victim].page);
        let frame = self.remove_frame(victim);
        if frame.dirty {
            self.file.write(frame.page, &frame.data)?;
            self.stats.writebacks += 1;
        }
        self.stats.evictions += 1;
        Ok(())
    }

    /// Pins `page` into a frame and returns an RAII guard that unpins on
    /// drop. While the guard lives the frame cannot be evicted or freed.
    pub fn pin(&mut self, page: PageId) -> DcResult<PinGuard<'_>> {
        let idx = self.load(page)?;
        self.frames[idx].pins += 1;
        Ok(PinGuard { pool: self, idx })
    }

    /// Reads a page through the pool, handing the bytes to `f` while the
    /// frame is pinned. Thin wrapper over [`pin`](Self::pin).
    pub fn with_page<R>(&mut self, page: PageId, f: impl FnOnce(&[u8]) -> R) -> DcResult<R> {
        let guard = self.pin(page)?;
        Ok(f(guard.data()))
    }

    /// Mutates a page through the pool; the frame is marked dirty and
    /// written back lazily (on eviction or flush). Thin wrapper over
    /// [`pin`](Self::pin).
    pub fn with_page_mut<R>(
        &mut self,
        page: PageId,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> DcResult<R> {
        let mut guard = self.pin(page)?;
        Ok(f(guard.data_mut()))
    }

    /// Writes every dirty frame back and syncs the file.
    pub fn flush(&mut self) -> DcResult<()> {
        for i in 0..self.frames.len() {
            if self.frames[i].dirty {
                let (page, data) = (self.frames[i].page, self.frames[i].data.clone());
                self.file.write(page, &data)?;
                self.frames[i].dirty = false;
                self.stats.writebacks += 1;
            }
        }
        self.file.sync()
    }
}

/// An RAII pin on one buffered page: the frame stays resident while the
/// guard lives and is unpinned on drop. Obtained from [`BufferPool::pin`].
#[derive(Debug)]
pub struct PinGuard<'a> {
    pool: &'a mut BufferPool,
    idx: usize,
}

impl PinGuard<'_> {
    /// The pinned page's identifier.
    pub fn page(&self) -> PageId {
        self.pool.frames[self.idx].page
    }

    /// The page bytes.
    pub fn data(&self) -> &[u8] {
        &self.pool.frames[self.idx].data
    }

    /// Mutable page bytes; marks the frame dirty (written back on eviction
    /// or flush).
    pub fn data_mut(&mut self) -> &mut [u8] {
        let frame = &mut self.pool.frames[self.idx];
        frame.dirty = true;
        &mut frame.data
    }
}

impl Drop for PinGuard<'_> {
    fn drop(&mut self) {
        self.pool.frames[self.idx].pins -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockConfig;

    fn pool(name: &str, frames: usize) -> (BufferPool, std::path::PathBuf) {
        let dir = std::env::temp_dir().join("dc-bufferpool-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}-{}", std::process::id()));
        let file = PagedFile::create(&path, BlockConfig::new(128)).unwrap();
        (BufferPool::new(file, frames), path)
    }

    #[test]
    fn cached_reads_hit_memory() {
        let (mut p, path) = pool("hits", 4);
        let a = p.alloc().unwrap();
        p.with_page_mut(a, |d| d[0] = 42).unwrap();
        for _ in 0..5 {
            let v = p.with_page(a, |d| d[0]).unwrap();
            assert_eq!(v, 42);
        }
        let s = p.stats();
        assert_eq!(s.misses, 1, "only the initial load misses");
        assert_eq!(s.hits, 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn eviction_writes_dirty_pages_back() {
        let (mut p, path) = pool("evict", 2);
        let pages: Vec<PageId> = (0..4).map(|_| p.alloc().unwrap()).collect();
        for (i, &pg) in pages.iter().enumerate() {
            p.with_page_mut(pg, |d| d[0] = i as u8 + 1).unwrap();
        }
        // Only 2 frames: the first two were evicted and written back.
        assert!(p.stats().evictions >= 2);
        assert!(p.stats().writebacks >= 2);
        for (i, &pg) in pages.iter().enumerate() {
            let v = p.with_page(pg, |d| d[0]).unwrap();
            assert_eq!(v, i as u8 + 1, "page {i} round-trips through eviction");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lru_keeps_the_hot_page() {
        let (mut p, path) = pool("lru", 2);
        let hot = p.alloc().unwrap();
        let cold1 = p.alloc().unwrap();
        let cold2 = p.alloc().unwrap();
        p.with_page_mut(hot, |d| d[0] = 9).unwrap();
        p.with_page(cold1, |_| ()).unwrap();
        p.with_page(hot, |_| ()).unwrap(); // touch hot again
        p.with_page(cold2, |_| ()).unwrap(); // evicts cold1, not hot
        let before = p.stats().misses;
        p.with_page(hot, |_| ()).unwrap();
        assert_eq!(p.stats().misses, before, "hot page stayed resident");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flush_persists_without_eviction() {
        let dir = std::env::temp_dir().join("dc-bufferpool-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("flush-{}", std::process::id()));
        let a;
        {
            let file = PagedFile::create(&path, BlockConfig::new(128)).unwrap();
            let mut p = BufferPool::new(file, 8);
            a = p.alloc().unwrap();
            p.with_page_mut(a, |d| d[..4].copy_from_slice(b"DCDC"))
                .unwrap();
            p.flush().unwrap();
        }
        let mut reopened = PagedFile::open(&path, BlockConfig::new(128)).unwrap();
        assert_eq!(&reopened.read(a).unwrap()[..4], b"DCDC");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn freeing_cached_page_drops_the_frame() {
        let (mut p, path) = pool("freedrop", 4);
        let a = p.alloc().unwrap();
        p.with_page_mut(a, |d| d[0] = 1).unwrap();
        p.free(a).unwrap();
        // Reallocating reuses the page; its old cached content is gone.
        let b = p.alloc().unwrap();
        assert_eq!(a, b);
        let v = p.with_page(b, |d| d[0]).unwrap();
        assert_eq!(v, 0, "freed page content must not leak through the cache");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pin_guard_unpins_on_drop_and_protects_from_eviction() {
        let (mut p, path) = pool("pinguard", 1);
        let a = p.alloc().unwrap();
        let b = p.alloc().unwrap();
        {
            let mut g = p.pin(a).unwrap();
            g.data_mut()[0] = 7;
            assert_eq!(g.page(), a);
            assert_eq!(g.data()[0], 7);
        }
        // Guard dropped: the single frame is evictable again.
        p.with_page(b, |_| ()).unwrap();
        let v = p.with_page(a, |d| d[0]).unwrap();
        assert_eq!(v, 7, "dirty pinned write survived eviction");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ordered_lru_survives_interleaved_frees_and_touches() {
        let (mut p, path) = pool("lruorder", 3);
        let pages: Vec<PageId> = (0..6).map(|_| p.alloc().unwrap()).collect();
        for (i, &pg) in pages.iter().enumerate() {
            p.with_page_mut(pg, |d| d[0] = i as u8 + 1).unwrap();
        }
        // Free a cached page (exercises the swap_remove index repair), then
        // re-touch survivors in a scrambled order and verify LRU still
        // evicts the stalest one.
        p.free(pages[5]).unwrap();
        p.with_page(pages[3], |_| ()).unwrap();
        p.with_page(pages[4], |_| ()).unwrap();
        // Frames now hold {3, 4, one reloaded}; load two cold pages and
        // confirm every page still round-trips its byte.
        for (i, &pg) in pages.iter().enumerate().take(5) {
            let v = p.with_page(pg, |d| d[0]).unwrap();
            assert_eq!(v, i as u8 + 1, "page {i} intact after interleaving");
        }
        std::fs::remove_file(&path).ok();
    }
}
