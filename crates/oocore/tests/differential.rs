//! Differential test: an [`OocDcTree`] running through the concurrent pool
//! with compressed pages and a deliberately tiny frame budget must answer
//! every query exactly like the RAM-resident [`DcTree`], including after
//! deletes, a reopen, and under concurrent query load.

use std::sync::Arc;

use dc_common::{AggregateOp, DimensionId};
use dc_hierarchy::CubeSchema;
use dc_mds::{DimSet, Mds};
use dc_oocore::{OocDcTree, OocOptions};
use dc_storage::BlockConfig;
use dc_tpcd::{generate, TpcdConfig};
use dc_tree::{DcTree, DcTreeConfig};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dc_oocore_diff_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn small_opts() -> OocOptions {
    OocOptions {
        block: BlockConfig::new(512),
        // Tiny budget: the working set cannot stay resident, so every query
        // path exercises faulting and eviction.
        frames: 16,
        compress: true,
    }
}

/// Queries covering the selectivity spectrum: per-dimension prefixes of the
/// level-1 domain, plus the full cube.
fn probe_queries(schema: &CubeSchema) -> Vec<Mds> {
    let mut queries = vec![Mds::all(schema)];
    for d in 0..schema.num_dims() {
        for take in [1usize, 2, 4] {
            let dim = schema.dim(DimensionId(d as u16));
            let picked: Vec<_> = dim.values_at(1).take(take).collect();
            if picked.is_empty() {
                continue;
            }
            let mut q = Mds::all(schema);
            *q.dim_mut(d) = DimSet::new(1, picked);
            queries.push(q);
        }
    }
    queries
}

fn assert_equivalent(ram: &DcTree, ooc: &OocDcTree, queries: &[Mds]) {
    assert_eq!(ram.len(), ooc.len());
    let ram_total = ram.total_summary();
    let ooc_total = ooc.total_summary().unwrap();
    assert_eq!(ram_total.sum, ooc_total.sum);
    assert_eq!(ram_total.count, ooc_total.count);
    for (qi, q) in queries.iter().enumerate() {
        let a = ram.range_summary(q).unwrap();
        let b = ooc.range_summary(q).unwrap();
        assert_eq!(
            (a.sum, a.count, a.min, a.max),
            (b.sum, b.count, b.min, b.max),
            "query {qi}"
        );
        for op in [AggregateOp::Sum, AggregateOp::Count, AggregateOp::Avg] {
            assert_eq!(
                ram.range_query(q, op).unwrap(),
                ooc.range_query(q, op).unwrap(),
                "query {qi} op {op:?}"
            );
        }
        // Group-by along each dimension at level 1.
        for d in 0..ram.schema().num_dims() {
            let mut ga = ram.group_by(DimensionId(d as u16), 1, q).unwrap();
            let mut gb = ooc.group_by(DimensionId(d as u16), 1, q).unwrap();
            ga.sort_by_key(|(v, _)| *v);
            gb.sort_by_key(|(v, _)| *v);
            let ka: Vec<_> = ga.iter().map(|(v, s)| (*v, s.sum, s.count)).collect();
            let kb: Vec<_> = gb.iter().map(|(v, s)| (*v, s.sum, s.count)).collect();
            assert_eq!(ka, kb, "group-by dim {d} query {qi}");
        }
    }
}

#[test]
fn disk_backed_tree_matches_ram_resident_baseline() {
    let cube = generate(&TpcdConfig::scaled(600, 7));
    let path = tmp("diff_main.dct");
    let mut ram = DcTree::new(cube.schema.clone(), DcTreeConfig::default());
    let ooc = OocDcTree::create(
        &path,
        cube.schema.clone(),
        DcTreeConfig::default(),
        small_opts(),
    )
    .unwrap();

    for r in &cube.records {
        ram.insert(r.clone()).unwrap();
        ooc.insert(r.clone()).unwrap();
    }

    let queries = probe_queries(&cube.schema);
    assert_equivalent(&ram, &ooc, &queries);

    // The frame budget is far below the working set: the equivalence above
    // must have been served through real faults and evictions.
    let stats = ooc.pool_stats();
    assert!(
        stats.evictions > 0,
        "16-frame pool over a 600-record cube must evict (got {stats:?})"
    );
    assert!(stats.resident <= stats.capacity);

    // Delete a third of the records from both and re-verify.
    for r in cube.records.iter().step_by(3) {
        assert!(ram.delete(r).unwrap());
        assert!(ooc.delete(r).unwrap());
    }
    assert_equivalent(&ram, &ooc, &queries);

    // Flush, reopen from disk, verify again: the on-disk image is complete.
    ooc.flush().unwrap();
    drop(ooc);
    let reopened = OocDcTree::open(&path, DcTreeConfig::default(), small_opts()).unwrap();
    assert_equivalent(&ram, &reopened, &queries);
}

#[test]
fn uncompressed_pages_give_identical_answers() {
    let cube = generate(&TpcdConfig::scaled(300, 11));
    let mut ram = DcTree::new(cube.schema.clone(), DcTreeConfig::default());
    let ooc = OocDcTree::create(
        tmp("diff_plain.dct"),
        cube.schema.clone(),
        DcTreeConfig::default(),
        OocOptions {
            compress: false,
            ..small_opts()
        },
    )
    .unwrap();
    for r in &cube.records {
        ram.insert(r.clone()).unwrap();
        ooc.insert(r.clone()).unwrap();
    }
    assert_equivalent(&ram, &ooc, &probe_queries(&cube.schema));
}

#[test]
fn concurrent_queries_during_churn_see_consistent_states() {
    let cube = generate(&TpcdConfig::scaled(400, 23));
    let ooc = Arc::new(
        OocDcTree::create(
            tmp("diff_churn.dct"),
            cube.schema.clone(),
            DcTreeConfig::default(),
            small_opts(),
        )
        .unwrap(),
    );
    let half = cube.records.len() / 2;
    for r in &cube.records[..half] {
        ooc.insert(r.clone()).unwrap();
    }

    let all = Mds::all(&cube.schema);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut readers = Vec::new();
    for _ in 0..3 {
        let ooc = Arc::clone(&ooc);
        let all = all.clone();
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            let mut last_count = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let s = ooc.range_summary(&all).unwrap();
                // Writers only insert: the record count a reader observes
                // must be monotone, and sum/count must come from one
                // consistent version (count within the insert range).
                assert!(s.count >= last_count, "count went backwards");
                last_count = s.count;
            }
            last_count
        }));
    }
    for r in &cube.records[half..] {
        ooc.insert(r.clone()).unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for h in readers {
        let final_seen = h.join().unwrap();
        assert!(final_seen <= cube.records.len() as u64);
    }
    assert_eq!(ooc.len(), cube.records.len() as u64);
}
