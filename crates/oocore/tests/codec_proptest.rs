//! Property tests for the compressed node codec: random nodes round-trip
//! bit-exactly through both formats, and corrupt pages produce *checked*
//! [`DcError`]s — never a panic — because these bytes come from disk.

use std::panic::{catch_unwind, AssertUnwindSafe};

use dc_common::{DcError, MeasureSummary, RecordId, ValueId};
use dc_hierarchy::Record;
use dc_mds::{DimSet, Mds};
use dc_oocore::codec::{decode_node, encode_node};
use dc_storage::ByteWriter;
use dc_tree::node::{DirEntry, Node, NodeId, NodeKind, StoredRecord};
use dc_tree::persist::write_node;
use proptest::prelude::*;

const NUM_DIMS: usize = 3;

/// Canonical byte image of a node under the *plain* persist codec — the
/// equality oracle (Node has no PartialEq; DimSet ordering is canonical).
fn plain_image(node: &Node) -> Vec<u8> {
    let mut w = ByteWriter::new();
    write_node(&mut w, node);
    w.into_vec()
}

fn dimset_strategy(level: u8) -> impl Strategy<Value = DimSet> {
    prop::collection::btree_set(0u32..4_000, 1..40).prop_map(move |idx| {
        DimSet::new(
            level,
            idx.into_iter().map(|i| ValueId::new(level, i)).collect(),
        )
    })
}

fn mds_strategy() -> impl Strategy<Value = Mds> {
    (dimset_strategy(0), dimset_strategy(2), dimset_strategy(5))
        .prop_map(|(a, b, c)| Mds::new(vec![a, b, c]))
}

fn summary_strategy() -> impl Strategy<Value = MeasureSummary> {
    prop::collection::vec(-1_000_000i64..1_000_000, 0..10).prop_map(|vals| {
        let mut s = MeasureSummary::empty();
        for v in vals {
            s.add(v);
        }
        s
    })
}

fn data_node_strategy() -> impl Strategy<Value = Node> {
    (
        mds_strategy(),
        summary_strategy(),
        prop::collection::vec(
            (
                0u64..1 << 40,
                prop::collection::vec(0u32..100_000, NUM_DIMS..=NUM_DIMS),
                -1_000_000i64..1_000_000,
            ),
            0..30,
        ),
        1u32..4,
    )
        .prop_map(|(mds, summary, recs, blocks)| Node {
            mds,
            summary,
            blocks,
            kind: NodeKind::Data(
                recs.into_iter()
                    .map(|(id, dims, measure)| StoredRecord {
                        id: RecordId(id),
                        record: Record::new(
                            dims.into_iter().map(|i| ValueId::new(0, i)).collect(),
                            measure,
                        ),
                    })
                    .collect(),
            ),
        })
}

fn dir_node_strategy() -> impl Strategy<Value = Node> {
    (
        mds_strategy(),
        summary_strategy(),
        prop::collection::vec((mds_strategy(), summary_strategy(), 2u32..1 << 30), 1..12),
        1u32..4,
    )
        .prop_map(|(mds, summary, entries, blocks)| Node {
            mds,
            summary,
            blocks,
            kind: NodeKind::Dir(
                entries
                    .into_iter()
                    .map(|(mds, summary, child)| DirEntry {
                        mds,
                        summary,
                        child: NodeId::from_raw(child),
                    })
                    .collect(),
            ),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Data nodes survive compressed encode → decode bit-exactly.
    #[test]
    fn data_nodes_roundtrip_compressed(node in data_node_strategy()) {
        let encoded = encode_node(&node, true);
        let back = decode_node(&encoded, NUM_DIMS).expect("decode own encoding");
        prop_assert_eq!(plain_image(&back), plain_image(&node));
    }

    /// Directory nodes survive compressed encode → decode bit-exactly.
    #[test]
    fn dir_nodes_roundtrip_compressed(node in dir_node_strategy()) {
        let encoded = encode_node(&node, true);
        let back = decode_node(&encoded, NUM_DIMS).expect("decode own encoding");
        prop_assert_eq!(plain_image(&back), plain_image(&node));
    }

    /// The plain format round-trips too (tag + persist codec).
    #[test]
    fn nodes_roundtrip_plain(node in data_node_strategy()) {
        let encoded = encode_node(&node, false);
        let back = decode_node(&encoded, NUM_DIMS).expect("decode own encoding");
        prop_assert_eq!(plain_image(&back), plain_image(&node));
    }

    /// The compressed format earns its keep on realistic nodes.
    #[test]
    fn compressed_is_never_wildly_larger(node in data_node_strategy()) {
        let plain = encode_node(&node, false);
        let compressed = encode_node(&node, true);
        // Varints can lose on pathological values but must stay in the same
        // ballpark; real nodes compress well below 1×.
        prop_assert!(compressed.len() <= plain.len() * 2);
    }

    /// Every single-byte mutation of a valid page either decodes to *some*
    /// node or fails with a checked error. No input may panic: corrupt disk
    /// bytes must never take the server down.
    #[test]
    fn corrupt_bytes_never_panic(node in data_node_strategy(), xor in 1u8..=255) {
        let encoded = encode_node(&node, true);
        for pos in 0..encoded.len() {
            let mut bad = encoded.clone();
            bad[pos] ^= xor;
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let _ = decode_node(&bad, NUM_DIMS);
            }));
            prop_assert!(outcome.is_ok(), "decode panicked at byte {}", pos);
        }
    }

    /// Truncating a page anywhere yields a checked `DcError`.
    #[test]
    fn truncations_are_checked_errors(node in data_node_strategy()) {
        let encoded = encode_node(&node, true);
        for cut in 0..encoded.len() {
            match decode_node(&encoded[..cut], NUM_DIMS) {
                Err(DcError::Corrupt(_)) => {}
                Err(e) => prop_assert!(false, "unexpected error kind at cut {}: {e:?}", cut),
                // Counts live in the prefix, so every strict prefix must
                // leave some field unreadable.
                Ok(_) => prop_assert!(false, "truncation at {} decoded Ok", cut),
            }
        }
    }
}

/// Targeted corruptions hit the specific checked paths.
#[test]
fn targeted_corruptions_yield_dc_errors() {
    let node = Node {
        mds: Mds::new(vec![
            DimSet::new(1, (0..50).map(|i| ValueId::new(1, i)).collect()),
            DimSet::new(0, vec![ValueId::new(0, 7)]),
            DimSet::new(3, (0..2000).map(|i| ValueId::new(3, i * 3)).collect()),
        ]),
        summary: MeasureSummary::of(42),
        blocks: 1,
        kind: NodeKind::Data(vec![StoredRecord {
            id: RecordId(9),
            record: Record::new(
                vec![ValueId::new(0, 1), ValueId::new(0, 2), ValueId::new(0, 3)],
                -5,
            ),
        }]),
    };
    let encoded = encode_node(&node, true);

    // Unknown format tag.
    let mut bad = encoded.clone();
    bad[0] = 0x7f;
    assert!(matches!(
        decode_node(&bad, 3),
        Err(DcError::Corrupt(msg)) if msg.contains("format tag")
    ));

    // Level beyond MAX_LEVEL (byte 1 is the first dimension's level).
    let mut bad = encoded.clone();
    bad[1] = 0xff;
    assert!(matches!(decode_node(&bad, 3), Err(DcError::Corrupt(_))));

    // Empty input.
    assert!(matches!(decode_node(&[], 3), Err(DcError::Corrupt(_))));

    // Wrong dimensionality shears the layout apart: must error, not panic.
    let outcome = catch_unwind(AssertUnwindSafe(|| decode_node(&encoded, 2)));
    assert!(outcome.is_ok(), "wrong num_dims must not panic");
}
