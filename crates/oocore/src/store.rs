//! [`OocStore`]: the concurrent [`NodeStore`] serving DC-tree nodes from
//! disk pages through the scan-resistant [`ConcurrentPool`].
//!
//! The page layout is byte-identical to `dc_tree::store::ChainStore` —
//! every node (and the metadata blob) is a chain of pages
//! `[next: u64][len: u32][payload]`, metadata headed at page 1 — except
//! that node payloads go through the [`codec`](crate::codec), which
//! prefixes a format tag. A file written with `compress: false` therefore
//! differs from a `ChainStore` file only by that one tag byte per node;
//! either store can be pointed at pages the other wrote as long as both
//! sides agree on who owns the codec.

use std::path::Path;
use std::sync::Arc;

use dc_common::{DcError, DcResult};
use dc_storage::{BlockConfig, PageId, PagedFile};
use dc_tree::node::Node;
use dc_tree::store::{NodeStore, CHAIN_NONE, META_PAGE, PAGE_HEADER};

use crate::codec::{decode_node, encode_node};
use crate::pool::{ConcurrentPool, OocPoolStats};

// ---------------------------------------------------------------------
// Chain primitives over the concurrent pool (same layout as ChainStore).
// ---------------------------------------------------------------------

fn read_chain(pool: &ConcurrentPool, head: PageId) -> DcResult<Vec<u8>> {
    let mut out = Vec::new();
    let mut page = head.0;
    let mut guard = 0usize;
    while page != CHAIN_NONE {
        let (next, chunk) = pool.with_page(PageId(page), |d| {
            let next = u64::from_le_bytes(d[0..8].try_into().expect("8 bytes"));
            let len = u32::from_le_bytes(d[8..12].try_into().expect("4 bytes")) as usize;
            let len = len.min(d.len() - PAGE_HEADER);
            (next, d[PAGE_HEADER..PAGE_HEADER + len].to_vec())
        })?;
        out.extend_from_slice(&chunk);
        page = next;
        guard += 1;
        if guard > 1 << 22 {
            return Err(DcError::Corrupt("page chain cycle".into()));
        }
    }
    Ok(out)
}

fn chain_pages(pool: &ConcurrentPool, head: PageId) -> DcResult<Vec<PageId>> {
    let mut pages = vec![head];
    let mut page = head.0;
    loop {
        let next = pool.with_page(PageId(page), |d| {
            u64::from_le_bytes(d[0..8].try_into().expect("8 bytes"))
        })?;
        if next == CHAIN_NONE {
            return Ok(pages);
        }
        pages.push(PageId(next));
        page = next;
        if pages.len() > 1 << 22 {
            return Err(DcError::Corrupt("page chain cycle".into()));
        }
    }
}

fn write_chain(
    pool: &ConcurrentPool,
    head: PageId,
    bytes: &[u8],
    payload_per_page: usize,
) -> DcResult<()> {
    let mut existing = chain_pages(pool, head)?;
    let chunks: Vec<&[u8]> = if bytes.is_empty() {
        vec![&[][..]]
    } else {
        bytes.chunks(payload_per_page).collect()
    };
    while existing.len() < chunks.len() {
        existing.push(pool.alloc()?);
    }
    while existing.len() > chunks.len() {
        let spare = existing.pop().expect("len checked");
        pool.free(spare)?;
    }
    for (i, chunk) in chunks.iter().enumerate() {
        let next = if i + 1 < existing.len() {
            existing[i + 1].0
        } else {
            CHAIN_NONE
        };
        pool.with_page_mut(existing[i], |d| {
            d[0..8].copy_from_slice(&next.to_le_bytes());
            d[8..12].copy_from_slice(&(chunk.len() as u32).to_le_bytes());
            d[PAGE_HEADER..PAGE_HEADER + chunk.len()].copy_from_slice(chunk);
        })?;
    }
    Ok(())
}

fn free_chain(pool: &ConcurrentPool, head: PageId) -> DcResult<()> {
    for page in chain_pages(pool, head)? {
        pool.free(page)?;
    }
    Ok(())
}

fn init_chain(pool: &ConcurrentPool, head: PageId) -> DcResult<()> {
    pool.with_page_mut(head, |d| {
        d[0..8].copy_from_slice(&CHAIN_NONE.to_le_bytes());
        d[8..12].copy_from_slice(&0u32.to_le_bytes());
    })
}

/// Tuning knobs for an out-of-core store.
#[derive(Debug, Clone, Copy)]
pub struct OocOptions {
    /// On-disk block size.
    pub block: BlockConfig,
    /// Buffer-pool frame budget (resident pages).
    pub frames: usize,
    /// Encode node pages with the compressed codec. Decoding is
    /// self-describing, so this can differ between sessions over one file.
    pub compress: bool,
}

impl Default for OocOptions {
    fn default() -> Self {
        OocOptions {
            block: BlockConfig::DEFAULT,
            frames: 1024,
            compress: true,
        }
    }
}

/// Concurrent chain store over a [`ConcurrentPool`], node payloads encoded
/// with the (optionally compressed) page codec.
#[derive(Debug)]
pub struct OocStore {
    pool: Arc<ConcurrentPool>,
    payload: usize,
    compress: bool,
}

impl OocStore {
    /// Creates a fresh store at `path`, truncating any existing file.
    pub fn create(path: impl AsRef<Path>, opts: OocOptions) -> DcResult<Self> {
        let file = PagedFile::create(path, opts.block)?;
        let pool = ConcurrentPool::new(file, opts.frames);
        let meta = pool.alloc()?;
        debug_assert_eq!(meta.0, META_PAGE, "metadata occupies page 1");
        init_chain(&pool, meta)?;
        Ok(OocStore {
            pool: Arc::new(pool),
            payload: opts.block.block_size - PAGE_HEADER,
            compress: opts.compress,
        })
    }

    /// Opens an existing store.
    pub fn open(path: impl AsRef<Path>, opts: OocOptions) -> DcResult<Self> {
        let file = PagedFile::open(path, opts.block)?;
        let pool = ConcurrentPool::new(file, opts.frames);
        Ok(OocStore {
            pool: Arc::new(pool),
            payload: opts.block.block_size - PAGE_HEADER,
            compress: opts.compress,
        })
    }

    /// The shared buffer pool (for stats and checkpoint flushes).
    pub fn pool(&self) -> &Arc<ConcurrentPool> {
        &self.pool
    }

    /// Buffer-pool counters.
    pub fn pool_stats(&self) -> OocPoolStats {
        self.pool.stats()
    }
}

impl NodeStore for OocStore {
    fn load_node(&self, page: PageId, num_dims: usize) -> DcResult<Node> {
        let bytes = read_chain(&self.pool, page)?;
        decode_node(&bytes, num_dims)
    }

    fn store_node(&self, page: PageId, node: &Node) -> DcResult<()> {
        let bytes = encode_node(node, self.compress);
        write_chain(&self.pool, page, &bytes, self.payload)
    }

    fn alloc_node(&self, node: &Node) -> DcResult<PageId> {
        let head = self.pool.alloc()?;
        init_chain(&self.pool, head)?;
        self.store_node(head, node)?;
        Ok(head)
    }

    fn free_node(&self, page: PageId) -> DcResult<()> {
        free_chain(&self.pool, page)
    }

    fn read_meta(&self) -> DcResult<Vec<u8>> {
        read_chain(&self.pool, PageId(META_PAGE))
    }

    fn write_meta(&self, bytes: &[u8]) -> DcResult<()> {
        write_chain(&self.pool, PageId(META_PAGE), bytes, self.payload)
    }

    fn sync(&self) -> DcResult<()> {
        self.pool.flush()
    }
}
