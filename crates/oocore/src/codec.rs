//! Compressed node-page codec.
//!
//! Out-of-core shards are disk-bound, so bytes per node translate directly
//! into records-per-GB and fault rate. This codec shrinks the plain persist
//! encoding (fixed-width u32/u64/i64 everywhere) three ways:
//!
//! * **Varints** — counts, ids, child pointers and block counts are LEB128;
//!   measures and summaries are zigzag varints (small magnitudes, either
//!   sign, stay short).
//! * **Per-dimension value-set deltas** — an MDS dimension set is a sorted
//!   run of same-level [`ValueId`]s; it is stored as a first index plus
//!   gap varints.
//! * **WAH bitmap sets** — a dense dimension set compresses better as a
//!   word-aligned-hybrid bitmap ([`CompressedBitmap`]) over the index
//!   domain; the encoder builds both forms and keeps the smaller, tagging
//!   each set with the encoding chosen.
//!
//! Every page starts with a format tag, so plain and compressed nodes can
//! coexist in one file and decoding is self-describing. Decoding is fully
//! checked: any truncation, overflow, out-of-domain level/index, or
//! inconsistent bitmap yields [`DcError::Corrupt`] — never a panic — because
//! these bytes come from disk.

use dc_bitmap::CompressedBitmap;
use dc_common::id::{MAX_INDEX, MAX_LEVEL};
use dc_common::{DcError, DcResult, RecordId, ValueId};
use dc_hierarchy::Record;
use dc_mds::{DimSet, Mds};
use dc_storage::{ByteReader, ByteWriter};
use dc_tree::node::{DirEntry, Node, NodeKind, StoredRecord};
use dc_tree::persist::{read_node, write_node};

/// Format tag: the plain `dc_tree::persist` encoding follows.
pub const FORMAT_PLAIN: u8 = 0;
/// Format tag: the compressed encoding of this module follows.
pub const FORMAT_COMPRESSED: u8 = 1;

const KIND_DIR: u8 = 0;
const KIND_DATA: u8 = 1;
const SET_DELTA: u8 = 0;
const SET_WAH: u8 = 1;

// ---------------------------------------------------------------------
// Varint primitives
// ---------------------------------------------------------------------

pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

pub(crate) fn get_varint(r: &mut ByteReader) -> DcResult<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = r.get_u8()?;
        if shift == 63 && b > 1 {
            return Err(DcError::Corrupt("varint overflows u64".into()));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(DcError::Corrupt("varint longer than 10 bytes".into()));
        }
    }
}

pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_zigzag(out: &mut Vec<u8>, v: i64) {
    put_varint(out, zigzag(v));
}

fn get_zigzag(r: &mut ByteReader) -> DcResult<i64> {
    Ok(unzigzag(get_varint(r)?))
}

/// Bounds a count read from disk: each counted element consumes at least
/// `min_elem` bytes, so a count the remaining buffer cannot hold is corrupt
/// (and must not drive `Vec::with_capacity`).
fn get_bounded_count(r: &mut ByteReader, min_elem: usize) -> DcResult<usize> {
    let n = get_varint(r)?;
    let n = usize::try_from(n).map_err(|_| DcError::Corrupt("count overflow".into()))?;
    if n.saturating_mul(min_elem.max(1)) > r.remaining() {
        return Err(DcError::Corrupt(format!(
            "count {n} exceeds remaining {} bytes",
            r.remaining()
        )));
    }
    Ok(n)
}

// ---------------------------------------------------------------------
// Dimension sets
// ---------------------------------------------------------------------

fn encode_dimset(out: &mut Vec<u8>, set: &DimSet) {
    out.push(set.level());
    put_varint(out, set.len() as u64);
    if set.is_empty() {
        return;
    }
    // Candidate 1: first index + gap varints (values are sorted, deduped).
    let mut delta = Vec::new();
    let mut prev = 0u64;
    for (i, &v) in set.values().iter().enumerate() {
        let idx = u64::from(v.index());
        if i == 0 {
            put_varint(&mut delta, idx);
        } else {
            put_varint(&mut delta, idx - prev - 1);
        }
        prev = idx;
    }
    // Candidate 2: WAH bitmap over the index domain.
    let mut bm = CompressedBitmap::new();
    for &v in set.values() {
        bm.set(u64::from(v.index()));
    }
    let (words, tail, len) = bm.to_parts();
    let wah_size = 1 + words.len() * 8 + 8 + 10;
    if wah_size < delta.len() {
        out.push(SET_WAH);
        put_varint(out, words.len() as u64);
        for &w in words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&tail.to_le_bytes());
        put_varint(out, len);
    } else {
        out.push(SET_DELTA);
        out.extend_from_slice(&delta);
    }
}

fn decode_dimset(r: &mut ByteReader) -> DcResult<DimSet> {
    let level = r.get_u8()?;
    if level > MAX_LEVEL {
        return Err(DcError::Corrupt(format!(
            "dimension-set level {level} exceeds MAX_LEVEL {MAX_LEVEL}"
        )));
    }
    let count = get_varint(r)?;
    if count > u64::from(MAX_INDEX) + 1 {
        return Err(DcError::Corrupt(format!(
            "dimension-set cardinality {count} exceeds the index domain"
        )));
    }
    let count = count as usize;
    if count == 0 {
        return Ok(DimSet::new(level, Vec::new()));
    }
    let mut values;
    match r.get_u8()? {
        SET_DELTA => {
            // Each gap varint is at least one byte, so the remaining buffer
            // bounds the count (and the allocation).
            if count > r.remaining() {
                return Err(DcError::Corrupt(format!(
                    "count {count} exceeds remaining {} bytes",
                    r.remaining()
                )));
            }
            values = Vec::with_capacity(count);
            let mut idx = 0u64;
            for i in 0..count {
                let gap = get_varint(r)?;
                idx = if i == 0 {
                    gap
                } else {
                    idx.checked_add(gap)
                        .and_then(|v| v.checked_add(1))
                        .ok_or_else(|| DcError::Corrupt("index delta overflow".into()))?
                };
                if idx > u64::from(MAX_INDEX) {
                    return Err(DcError::Corrupt(format!(
                        "value index {idx} exceeds MAX_INDEX {MAX_INDEX}"
                    )));
                }
                values.push(ValueId::new(level, idx as u32));
            }
        }
        SET_WAH => {
            let n_words = get_bounded_count(r, 8)?;
            let mut words = Vec::with_capacity(n_words);
            for _ in 0..n_words {
                words.push(r.get_u64()?);
            }
            let tail = r.get_u64()?;
            let len = get_varint(r)?;
            let bm = CompressedBitmap::from_parts(words, tail, len, u64::from(MAX_INDEX) + 1)
                .ok_or_else(|| DcError::Corrupt("inconsistent WAH dimension set".into()))?;
            // Checked before materializing: count_ones is O(words), so a
            // corrupt count cannot drive a huge allocation.
            if bm.count_ones() != count as u64 {
                return Err(DcError::Corrupt(format!(
                    "WAH set has {} bits, header says {count}",
                    bm.count_ones()
                )));
            }
            values = Vec::with_capacity(count);
            for idx in bm.iter_ones() {
                // from_parts bounded len, so idx ≤ MAX_INDEX holds.
                values.push(ValueId::new(level, idx as u32));
            }
        }
        tag => {
            return Err(DcError::Corrupt(format!(
                "bad dimension-set encoding tag {tag}"
            )))
        }
    }
    Ok(DimSet::new(level, values))
}

fn encode_mds(out: &mut Vec<u8>, mds: &Mds) {
    for set in mds.dims() {
        encode_dimset(out, set);
    }
}

fn decode_mds(r: &mut ByteReader, num_dims: usize) -> DcResult<Mds> {
    let mut dims = Vec::with_capacity(num_dims);
    for _ in 0..num_dims {
        dims.push(decode_dimset(r)?);
    }
    Ok(Mds::new(dims))
}

fn encode_summary(out: &mut Vec<u8>, s: &dc_common::MeasureSummary) {
    put_zigzag(out, s.sum);
    put_varint(out, s.count);
    put_zigzag(out, s.min);
    put_zigzag(out, s.max);
}

fn decode_summary(r: &mut ByteReader) -> DcResult<dc_common::MeasureSummary> {
    Ok(dc_common::MeasureSummary {
        sum: get_zigzag(r)?,
        count: get_varint(r)?,
        min: get_zigzag(r)?,
        max: get_zigzag(r)?,
    })
}

// ---------------------------------------------------------------------
// Nodes
// ---------------------------------------------------------------------

/// Encodes `node` for storage; `compress` selects the format (both decode
/// through [`decode_node`]).
pub fn encode_node(node: &Node, compress: bool) -> Vec<u8> {
    if !compress {
        let mut w = ByteWriter::new();
        write_node(&mut w, node);
        let mut out = vec![FORMAT_PLAIN];
        out.extend_from_slice(&w.into_vec());
        return out;
    }
    let mut out = vec![FORMAT_COMPRESSED];
    encode_mds(&mut out, &node.mds);
    encode_summary(&mut out, &node.summary);
    put_varint(&mut out, u64::from(node.blocks));
    match &node.kind {
        NodeKind::Dir(entries) => {
            out.push(KIND_DIR);
            put_varint(&mut out, entries.len() as u64);
            for e in entries {
                encode_mds(&mut out, &e.mds);
                encode_summary(&mut out, &e.summary);
                put_varint(&mut out, u64::from(e.child.raw()));
            }
        }
        NodeKind::Data(records) => {
            out.push(KIND_DATA);
            put_varint(&mut out, records.len() as u64);
            let mut prev_id = 0i64;
            for rec in records {
                // Ids are near-sequential but not sorted after splits move
                // records around; zigzag deltas handle both directions.
                let id = rec.id.0 as i64;
                put_zigzag(&mut out, id.wrapping_sub(prev_id));
                prev_id = id;
                for &d in &rec.record.dims {
                    put_varint(&mut out, u64::from(d.raw()));
                }
                put_zigzag(&mut out, rec.record.measure);
            }
        }
    }
    out
}

/// Decodes a node produced by [`encode_node`]. All failures are checked
/// [`DcError::Corrupt`]s — disk bytes must never panic the server.
pub fn decode_node(bytes: &[u8], num_dims: usize) -> DcResult<Node> {
    let mut r = ByteReader::new(bytes);
    match r.get_u8()? {
        FORMAT_PLAIN => {
            let node = read_node(&mut r, num_dims)?;
            r.expect_end()?;
            Ok(node)
        }
        FORMAT_COMPRESSED => {
            let node = decode_compressed(&mut r, num_dims)?;
            r.expect_end()?;
            Ok(node)
        }
        tag => Err(DcError::Corrupt(format!("bad node format tag {tag}"))),
    }
}

fn decode_compressed(r: &mut ByteReader, num_dims: usize) -> DcResult<Node> {
    let mds = decode_mds(r, num_dims)?;
    let summary = decode_summary(r)?;
    let blocks = get_varint(r)?;
    let blocks = u32::try_from(blocks)
        .map_err(|_| DcError::Corrupt(format!("block count {blocks} overflows u32")))?;
    if blocks == 0 {
        return Err(DcError::Corrupt("node with zero blocks".into()));
    }
    let kind = match r.get_u8()? {
        KIND_DIR => {
            let n = get_bounded_count(r, 2 * num_dims.max(1) + 5)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let mds = decode_mds(r, num_dims)?;
                let summary = decode_summary(r)?;
                let child = get_varint(r)?;
                let child = u32::try_from(child)
                    .map_err(|_| DcError::Corrupt(format!("child handle {child} overflows")))?;
                entries.push(DirEntry {
                    mds,
                    summary,
                    child: dc_tree::node::NodeId::from_raw(child),
                });
            }
            NodeKind::Dir(entries)
        }
        KIND_DATA => {
            let n = get_bounded_count(r, num_dims.max(1) + 2)?;
            let mut records = Vec::with_capacity(n);
            let mut prev_id = 0i64;
            for _ in 0..n {
                let id = prev_id.wrapping_add(get_zigzag(r)?);
                prev_id = id;
                let mut dims = Vec::with_capacity(num_dims);
                for _ in 0..num_dims {
                    let raw = get_varint(r)?;
                    let raw = u32::try_from(raw)
                        .map_err(|_| DcError::Corrupt(format!("value id {raw} overflows")))?;
                    dims.push(ValueId::from_raw(raw));
                }
                let measure = get_zigzag(r)?;
                records.push(StoredRecord {
                    id: RecordId(id as u64),
                    record: Record::new(dims, measure),
                });
            }
            NodeKind::Data(records)
        }
        tag => return Err(DcError::Corrupt(format!("bad node kind tag {tag}"))),
    };
    Ok(Node {
        mds,
        summary,
        blocks,
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_and_overflow() {
        let cases = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for v in cases {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert!(buf.len() <= 10);
            let mut r = ByteReader::new(&buf);
            assert_eq!(get_varint(&mut r).unwrap(), v);
        }
        // 10 bytes of continuation with a fat final byte: overflow.
        let bad = [0xffu8, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        let mut r = ByteReader::new(&bad);
        assert!(matches!(get_varint(&mut r), Err(DcError::Corrupt(_))));
        // 11-byte varint: too long.
        let long = [0x80u8; 11];
        let mut r = ByteReader::new(&long);
        assert!(matches!(get_varint(&mut r), Err(DcError::Corrupt(_))));
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn dense_sets_pick_the_wah_encoding() {
        // 2000 consecutive indices: gaps of 0 → delta ≈ 2 KB; WAH collapses
        // the run into a couple of fill words.
        let values: Vec<ValueId> = (0..2000).map(|i| ValueId::new(3, i)).collect();
        let set = DimSet::new(3, values);
        let mut out = Vec::new();
        encode_dimset(&mut out, &set);
        // level + count varint + tag + a handful of words.
        assert!(out.len() < 64, "dense set must compress, got {}", out.len());
        let mut r = ByteReader::new(&out);
        let back = decode_dimset(&mut r).unwrap();
        assert_eq!(back.values(), set.values());
        assert_eq!(back.level(), set.level());
    }

    #[test]
    fn sparse_sets_pick_the_delta_encoding() {
        let values: Vec<ValueId> = (0..8).map(|i| ValueId::new(2, i * 1_000_000)).collect();
        let set = DimSet::new(2, values);
        let mut out = Vec::new();
        encode_dimset(&mut out, &set);
        assert_eq!(out[2], SET_DELTA);
        let mut r = ByteReader::new(&out);
        let back = decode_dimset(&mut r).unwrap();
        assert_eq!(back.values(), set.values());
    }
}
