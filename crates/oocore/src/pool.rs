//! A concurrent, scan-resistant buffer pool over a [`PagedFile`].
//!
//! The single-threaded `dc_storage::BufferPool` serializes every page touch
//! through one owner; a sharded serving engine needs many readers resolving
//! (possibly cold) pages at once. This pool provides that:
//!
//! * **Latch striping** — the page table is split into stripes, each behind
//!   its own mutex, hashed by page id. Touches on different stripes never
//!   contend; the backing file is behind a separate mutex acquired only for
//!   real I/O (cold reads, write-backs).
//! * **RAII pins** — [`ConcurrentPool::pin`] returns a [`PinnedPage`]
//!   holding an `Arc` of the frame and a pin count. Pinned frames are never
//!   evicted; the pin drops with the guard. Page bytes are read through a
//!   per-frame `RwLock`, so readers of the *same* hot page also proceed in
//!   parallel.
//! * **Scan resistance** — eviction is segmented LRU: a page faults into the
//!   *probationary* segment and is promoted to the *protected* segment only
//!   on a second touch. Victims come from probation first, so a one-touch
//!   sweep (a 25 %-selectivity range scan walking every leaf once) churns
//!   probation and leaves the multi-touch hot set (root, upper directory
//!   levels) resident.
//! * **Checkpoint coordination** — dirty frames are written back lazily on
//!   eviction, and [`ConcurrentPool::flush`] force-writes every dirty frame
//!   and fsyncs, giving the checkpointer a consistent on-disk image.
//!
//! Lock order is `stripe → file`; `flush` takes each frame's data lock
//! *exclusively* before reading it so the dirty flag (set under the same
//! lock by writers) can be cleared without losing a concurrent update.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use dc_common::{DcError, DcResult};
use dc_storage::{PageId, PagedFile};
use parking_lot::{Mutex, RwLock, RwLockWriteGuard};

/// One resident page: bytes plus eviction/write-back state.
#[derive(Debug)]
struct Frame {
    page: u64,
    data: RwLock<Vec<u8>>,
    /// Set (under the data write lock) when the bytes diverge from disk.
    dirty: AtomicBool,
    /// Outstanding [`PinnedPage`] guards; a pinned frame is never evicted.
    pins: AtomicU32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Probation,
    Protected,
}

#[derive(Debug)]
struct Resident {
    frame: Arc<Frame>,
    seg: Segment,
    /// Current key in the segment's recency map.
    stamp: u64,
}

/// One latch stripe: a page table plus the two recency queues of the
/// segmented LRU, keyed by a per-stripe logical clock.
#[derive(Debug, Default)]
struct Stripe {
    map: HashMap<u64, Resident>,
    probation: BTreeMap<u64, u64>,
    protected: BTreeMap<u64, u64>,
    clock: u64,
}

impl Stripe {
    fn next_stamp(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn insert_probation(&mut self, page: u64, frame: Arc<Frame>) {
        let stamp = self.next_stamp();
        self.probation.insert(stamp, page);
        self.map.insert(
            page,
            Resident {
                frame,
                seg: Segment::Probation,
                stamp,
            },
        );
    }

    /// Records a hit: probationary pages are promoted to protected (the
    /// second touch proves re-use); protected pages are refreshed in place.
    /// Protected overflow is demoted back to probation rather than evicted,
    /// so it gets one more chance before leaving the pool.
    fn touch(&mut self, page: u64, protected_cap: usize) {
        let Some(res) = self.map.get(&page) else {
            return;
        };
        let (seg, old) = (res.seg, res.stamp);
        let stamp = self.next_stamp();
        match seg {
            Segment::Probation => {
                self.probation.remove(&old);
                self.protected.insert(stamp, page);
                let r = self.map.get_mut(&page).expect("checked resident");
                r.seg = Segment::Protected;
                r.stamp = stamp;
                while self.protected.len() > protected_cap.max(1) {
                    let (&s, &p) = self.protected.iter().next().expect("len checked");
                    self.protected.remove(&s);
                    let demoted = self.next_stamp();
                    self.probation.insert(demoted, p);
                    let r = self.map.get_mut(&p).expect("queued page resident");
                    r.seg = Segment::Probation;
                    r.stamp = demoted;
                }
            }
            Segment::Protected => {
                self.protected.remove(&old);
                self.protected.insert(stamp, page);
                self.map.get_mut(&page).expect("checked resident").stamp = stamp;
            }
        }
    }

    /// Oldest unpinned page, probation before protected.
    fn pick_victim(&self) -> Option<u64> {
        self.probation
            .values()
            .chain(self.protected.values())
            .copied()
            .find(|p| self.map[p].frame.pins.load(Ordering::Acquire) == 0)
    }

    fn remove(&mut self, page: u64) -> Option<Resident> {
        let res = self.map.remove(&page)?;
        match res.seg {
            Segment::Probation => self.probation.remove(&res.stamp),
            Segment::Protected => self.protected.remove(&res.stamp),
        };
        Some(res)
    }
}

/// Monotonic pool counters, exported as `pool_*` gauges by the server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OocPoolStats {
    /// Page touches served from a resident frame.
    pub hits: u64,
    /// Page touches that went to disk.
    pub misses: u64,
    /// Frames dropped to make room.
    pub evictions: u64,
    /// Dirty frames written back (on eviction or flush).
    pub writebacks: u64,
    /// Frames currently resident.
    pub resident: u64,
    /// Total frame budget.
    pub capacity: u64,
}

/// The concurrent, scan-resistant buffer pool. See the module docs.
#[derive(Debug)]
pub struct ConcurrentPool {
    file: Mutex<PagedFile>,
    stripes: Vec<Mutex<Stripe>>,
    /// Frame budget per stripe.
    stripe_cap: usize,
    /// Protected-segment budget per stripe (≈ ⅔ of the stripe).
    protected_cap: usize,
    page_size: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
}

impl ConcurrentPool {
    /// Wraps `file` with a budget of `frames` resident pages (min 4).
    pub fn new(file: PagedFile, frames: usize) -> Self {
        let frames = frames.max(4);
        let n_stripes = match frames {
            0..=15 => 1,
            16..=63 => 4,
            _ => 16,
        };
        let stripe_cap = frames.div_ceil(n_stripes);
        ConcurrentPool {
            page_size: file.page_size(),
            file: Mutex::new(file),
            stripes: (0..n_stripes)
                .map(|_| Mutex::new(Stripe::default()))
                .collect(),
            stripe_cap,
            protected_cap: (stripe_cap * 2 / 3).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            writebacks: AtomicU64::new(0),
        }
    }

    fn stripe_of(&self, page: u64) -> usize {
        // Fibonacci hashing spreads the sequential page ids a chain
        // allocator hands out; `len` is 1, 4, or 16 so the mask is exact.
        (page.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48) as usize & (self.stripes.len() - 1)
    }

    /// Pins `page` into the pool, faulting it from disk if cold. The frame
    /// stays resident until the returned guard drops.
    pub fn pin(&self, page: PageId) -> DcResult<PinnedPage> {
        let mut stripe = self.stripes[self.stripe_of(page.0)].lock();
        if let Some(res) = stripe.map.get(&page.0) {
            let frame = Arc::clone(&res.frame);
            frame.pins.fetch_add(1, Ordering::AcqRel);
            stripe.touch(page.0, self.protected_cap);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(PinnedPage { frame });
        }
        // Miss: read under the stripe lock so a racing pin of the same page
        // waits for this load instead of reading the file twice.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let bytes = self.file.lock().read(page)?;
        let frame = Arc::new(Frame {
            page: page.0,
            data: RwLock::new(bytes),
            dirty: AtomicBool::new(false),
            pins: AtomicU32::new(1),
        });
        stripe.insert_probation(page.0, Arc::clone(&frame));
        self.evict_overflow(&mut stripe)?;
        Ok(PinnedPage { frame })
    }

    /// Evicts oldest-first until the stripe is within budget. Pinned frames
    /// are skipped; if everything is pinned the stripe runs over budget
    /// rather than failing the caller.
    fn evict_overflow(&self, stripe: &mut Stripe) -> DcResult<()> {
        while stripe.map.len() > self.stripe_cap {
            let Some(victim) = stripe.pick_victim() else {
                break;
            };
            let res = stripe.remove(victim).expect("victim resident");
            if res.frame.dirty.swap(false, Ordering::AcqRel) {
                // pins == 0 and the stripe lock bars new pins, so nobody
                // holds the data lock.
                let data = res.frame.data.read();
                self.file.lock().write(PageId(victim), &data)?;
                self.writebacks.fetch_add(1, Ordering::Relaxed);
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Runs `f` over the page's bytes.
    pub fn with_page<R>(&self, page: PageId, f: impl FnOnce(&[u8]) -> R) -> DcResult<R> {
        let pinned = self.pin(page)?;
        let data = pinned.data();
        Ok(f(&data))
    }

    /// Runs `f` over the page's bytes mutably and marks the frame dirty.
    pub fn with_page_mut<R>(&self, page: PageId, f: impl FnOnce(&mut [u8]) -> R) -> DcResult<R> {
        let pinned = self.pin(page)?;
        let mut data = pinned.data_mut();
        Ok(f(&mut data))
    }

    /// Allocates a fresh (zeroed) page in the backing file.
    pub fn alloc(&self) -> DcResult<PageId> {
        self.file.lock().alloc()
    }

    /// Drops the page from the pool (discarding dirty bytes — the caller is
    /// deleting it) and returns it to the file's free list.
    pub fn free(&self, page: PageId) -> DcResult<()> {
        {
            let mut stripe = self.stripes[self.stripe_of(page.0)].lock();
            if let Some(res) = stripe.map.get(&page.0) {
                if res.frame.pins.load(Ordering::Acquire) > 0 {
                    return Err(DcError::Corrupt(format!("freeing pinned page {}", page.0)));
                }
                stripe.remove(page.0);
            }
        }
        self.file.lock().free(page)
    }

    /// Writes every dirty frame back and fsyncs the file: the write-back
    /// barrier the checkpointer runs before copying the shard file.
    pub fn flush(&self) -> DcResult<()> {
        for stripe in &self.stripes {
            let stripe = stripe.lock();
            for res in stripe.map.values() {
                // Exclusive data lock: a writer sets `dirty` under the same
                // lock, so swap-then-copy here cannot lose its update.
                let data = res.frame.data.write();
                if res.frame.dirty.swap(false, Ordering::AcqRel) {
                    self.file.lock().write(PageId(res.frame.page), &data)?;
                    self.writebacks.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.file.lock().sync()
    }

    /// Snapshot of the pool counters.
    pub fn stats(&self) -> OocPoolStats {
        OocPoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
            resident: self.stripes.iter().map(|s| s.lock().map.len() as u64).sum(),
            capacity: (self.stripe_cap * self.stripes.len()) as u64,
        }
    }

    /// Page size of the backing file.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Pages allocated in the backing file (header included) — the on-disk
    /// footprint used by the records-per-GB benchmark.
    pub fn num_pages(&self) -> u64 {
        self.file.lock().num_pages()
    }
}

/// RAII pin over one resident page. Holding it guarantees the frame stays
/// in the pool; `data`/`data_mut` lock the bytes for the access.
#[derive(Debug)]
pub struct PinnedPage {
    frame: Arc<Frame>,
}

impl PinnedPage {
    /// The pinned page's id.
    pub fn page(&self) -> PageId {
        PageId(self.frame.page)
    }

    /// Shared access to the page bytes.
    pub fn data(&self) -> parking_lot::RwLockReadGuard<'_, Vec<u8>> {
        self.frame.data.read()
    }

    /// Exclusive access to the page bytes; marks the frame dirty (under the
    /// data lock, so `flush` cannot miss the update).
    pub fn data_mut(&self) -> RwLockWriteGuard<'_, Vec<u8>> {
        let guard = self.frame.data.write();
        self.frame.dirty.store(true, Ordering::Release);
        guard
    }
}

impl Drop for PinnedPage {
    fn drop(&mut self) {
        self.frame.pins.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_storage::BlockConfig;

    fn pool_with(frames: usize, pages: usize) -> (ConcurrentPool, Vec<PageId>) {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("dc_oocore_pool_{}_{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pool.dat");
        let file = PagedFile::create(&path, BlockConfig::new(512)).unwrap();
        let pool = ConcurrentPool::new(file, frames);
        let ids = (0..pages).map(|_| pool.alloc().unwrap()).collect();
        (pool, ids)
    }

    #[test]
    fn hit_miss_and_writeback_counters() {
        let (pool, ids) = pool_with(8, 4);
        pool.with_page_mut(ids[0], |d| d[0] = 7).unwrap();
        pool.with_page(ids[0], |d| assert_eq!(d[0], 7)).unwrap();
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        pool.flush().unwrap();
        assert_eq!(pool.stats().writebacks, 1);
        // Flushing again writes nothing: the dirty bit was cleared.
        pool.flush().unwrap();
        assert_eq!(pool.stats().writebacks, 1);
    }

    #[test]
    fn eviction_writes_back_and_rereads_from_disk() {
        let (pool, ids) = pool_with(4, 32);
        for (i, &id) in ids.iter().enumerate() {
            pool.with_page_mut(id, |d| d[0] = i as u8).unwrap();
        }
        let s = pool.stats();
        assert!(s.evictions > 0, "32 pages through 4 frames must evict");
        assert!(s.writebacks > 0, "dirty victims must be written back");
        assert!(s.resident <= s.capacity);
        for (i, &id) in ids.iter().enumerate() {
            pool.with_page(id, |d| assert_eq!(d[0], i as u8)).unwrap();
        }
    }

    #[test]
    fn scan_does_not_flush_the_hot_set() {
        let (pool, ids) = pool_with(16, 128);
        // Establish a hot set with two touches each: promoted to protected.
        let hot = &ids[0..4];
        for _ in 0..2 {
            for &id in hot {
                pool.with_page(id, |_| ()).unwrap();
            }
        }
        // One-touch sweep over everything else — 8× the frame budget.
        for &id in &ids[4..] {
            pool.with_page(id, |_| ()).unwrap();
        }
        let before = pool.stats();
        for &id in hot {
            pool.with_page(id, |_| ()).unwrap();
        }
        let after = pool.stats();
        assert_eq!(
            after.misses, before.misses,
            "hot set must survive the scan (segmented LRU)"
        );
        assert_eq!(after.hits, before.hits + hot.len() as u64);
    }

    #[test]
    fn pinned_frames_survive_eviction_pressure() {
        let (pool, ids) = pool_with(4, 32);
        let pinned = pool.pin(ids[0]).unwrap();
        pinned.data_mut()[0] = 42;
        for &id in &ids[1..] {
            pool.with_page(id, |_| ()).unwrap();
        }
        // Still resident: reading through the guard sees our byte, and a
        // fresh pin is a hit.
        assert_eq!(pinned.data()[0], 42);
        let before = pool.stats().misses;
        pool.with_page(ids[0], |d| assert_eq!(d[0], 42)).unwrap();
        assert_eq!(pool.stats().misses, before);
        drop(pinned);
        assert!(pool.free(ids[0]).is_ok());
    }

    #[test]
    fn free_of_pinned_page_is_refused() {
        let (pool, ids) = pool_with(8, 2);
        let guard = pool.pin(ids[0]).unwrap();
        assert!(matches!(pool.free(ids[0]), Err(DcError::Corrupt(_))));
        drop(guard);
        pool.free(ids[0]).unwrap();
    }

    #[test]
    fn concurrent_readers_and_writers_converge() {
        let (pool, ids) = pool_with(8, 16);
        let pool = std::sync::Arc::new(pool);
        let mut handles = Vec::new();
        for t in 0..4 {
            let pool = std::sync::Arc::clone(&pool);
            let ids = ids.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..50 {
                    for &id in &ids {
                        if (round + t) % 2 == 0 {
                            pool.with_page(id, |d| d[0]).unwrap();
                        } else {
                            pool.with_page_mut(id, |d| d[t] = d[t].wrapping_add(1))
                                .unwrap();
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        pool.flush().unwrap();
        // Each thread incremented its own byte 25 times (odd rounds).
        for &id in &ids {
            pool.with_page(id, |d| {
                for (t, &b) in d.iter().take(4).enumerate() {
                    assert_eq!(b, 25, "page {} byte {t}", id.0);
                }
            })
            .unwrap();
        }
    }
}
