//! [`OocDcTree`]: a disk-backed DC-tree shard servable by many threads.
//!
//! The tree logic is `dc_tree::PagedDcTree` over an [`OocStore`]; this
//! wrapper adds the `RwLock` discipline the serving engine needs — queries
//! take the read lock (the store underneath is fully concurrent, so any
//! number of readers fault and evict pages in parallel), mutations take the
//! write lock. The pool `Arc` is kept alongside so checkpointing and stats
//! never have to take the tree lock just to reach the buffer pool.

use std::path::Path;
use std::sync::Arc;

use dc_common::{AggregateOp, DcResult, DimensionId, Level, MeasureSummary, RecordId, ValueId};
use dc_hierarchy::{CubeSchema, Record};
use dc_mds::Mds;
use dc_tree::{DcTreeConfig, PagedDcTree};
use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::pool::{ConcurrentPool, OocPoolStats};
use crate::store::{OocOptions, OocStore};

/// A DC-tree shard served out-of-core: `RwLock<PagedDcTree<OocStore>>`
/// plus a handle to the shared buffer pool.
#[derive(Debug)]
pub struct OocDcTree {
    inner: RwLock<PagedDcTree<OocStore>>,
    pool: Arc<ConcurrentPool>,
}

impl OocDcTree {
    /// Creates a fresh shard file at `path`.
    pub fn create(
        path: impl AsRef<Path>,
        schema: CubeSchema,
        config: DcTreeConfig,
        opts: OocOptions,
    ) -> DcResult<Self> {
        let store = OocStore::create(path, opts)?;
        let pool = Arc::clone(store.pool());
        let tree = PagedDcTree::create_in(store, schema, config)?;
        Ok(OocDcTree {
            inner: RwLock::new(tree),
            pool,
        })
    }

    /// Opens an existing shard file.
    pub fn open(path: impl AsRef<Path>, config: DcTreeConfig, opts: OocOptions) -> DcResult<Self> {
        let store = OocStore::open(path, opts)?;
        let pool = Arc::clone(store.pool());
        let tree = PagedDcTree::open_in(store, config)?;
        Ok(OocDcTree {
            inner: RwLock::new(tree),
            pool,
        })
    }

    /// Read access to the tree. Hold this across a batch of queries that
    /// must see one consistent version.
    pub fn read(&self) -> RwLockReadGuard<'_, PagedDcTree<OocStore>> {
        self.inner.read()
    }

    /// Write access to the tree. The shard writer holds this across a whole
    /// update batch *and* the cache publish that follows, so readers never
    /// see a half-applied batch.
    pub fn write(&self) -> RwLockWriteGuard<'_, PagedDcTree<OocStore>> {
        self.inner.write()
    }

    /// The shared buffer pool (reachable without the tree lock).
    pub fn pool(&self) -> &Arc<ConcurrentPool> {
        &self.pool
    }

    /// Buffer-pool counters for the `pool_*` gauges.
    pub fn pool_stats(&self) -> OocPoolStats {
        self.pool.stats()
    }

    /// Flushes tree metadata, writes back every dirty frame, and fsyncs:
    /// after this returns, the shard file on disk is a complete image of
    /// the tree — the barrier the checkpointer copies behind.
    pub fn flush(&self) -> DcResult<()> {
        self.inner.write().flush()
    }

    /// On-disk footprint in bytes (pages × page size).
    pub fn file_bytes(&self) -> u64 {
        self.pool.num_pages() * self.pool.page_size() as u64
    }

    // -- convenience passthroughs (single read/write lock scope each) --

    /// Records stored.
    pub fn len(&self) -> u64 {
        self.inner.read().len()
    }

    /// `true` iff no records are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clone of the cube schema.
    pub fn schema(&self) -> CubeSchema {
        self.inner.read().schema().clone()
    }

    /// Interns raw paths and inserts the record.
    pub fn insert_raw<T: AsRef<str>>(
        &self,
        paths: &[Vec<T>],
        measure: dc_common::Measure,
    ) -> DcResult<RecordId> {
        self.inner.write().insert_raw(paths, measure)
    }

    /// Inserts an already-interned record.
    pub fn insert(&self, record: Record) -> DcResult<RecordId> {
        self.inner.write().insert(record)
    }

    /// Deletes one record matching `record`; `true` if one was found.
    pub fn delete(&self, record: &Record) -> DcResult<bool> {
        self.inner.write().delete(record)
    }

    /// Aggregate over `range` under `op`.
    pub fn range_query(&self, range: &Mds, op: AggregateOp) -> DcResult<Option<f64>> {
        self.inner.read().range_query(range, op)
    }

    /// Full measure summary over `range`.
    pub fn range_summary(&self, range: &Mds) -> DcResult<MeasureSummary> {
        self.inner.read().range_summary(range)
    }

    /// Per-group summaries of `group_dim` at `group_level` under `filter`.
    pub fn group_by(
        &self,
        group_dim: DimensionId,
        group_level: Level,
        filter: &Mds,
    ) -> DcResult<Vec<(ValueId, MeasureSummary)>> {
        self.inner.read().group_by(group_dim, group_level, filter)
    }

    /// Summary over every record.
    pub fn total_summary(&self) -> DcResult<MeasureSummary> {
        self.inner.read().total_summary()
    }

    /// Tree height (root to leaf).
    pub fn height(&self) -> DcResult<usize> {
        self.inner.read().height()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_sync_bounds_hold() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OocDcTree>();
        assert_send_sync::<ConcurrentPool>();
    }
}
