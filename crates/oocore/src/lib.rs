//! # dc-oocore
//!
//! Out-of-core DC-tree serving: shards answered directly from disk pages
//! through a **concurrent, scan-resistant buffer pool**, with node pages
//! stored in a **compressed codec**.
//!
//! The paper's deployment target is a data warehouse that no longer fits
//! the batch-rebuild mold — always online, updated record at a time. The
//! rest of this workspace keeps every shard RAM-resident; this crate is the
//! configuration for cubes bigger than memory:
//!
//! * [`ConcurrentPool`] — a striped buffer pool with RAII pins, segmented
//!   LRU eviction (a one-touch range scan cannot flush the hot directory
//!   levels), lazy dirty write-back, and a [`flush`](ConcurrentPool::flush)
//!   barrier for the checkpointer.
//! * [`codec`] — varint/delta/WAH-compressed node pages behind a format
//!   tag, with fully checked decoding (disk bytes never panic).
//! * [`OocStore`] — the [`NodeStore`](dc_tree::store::NodeStore) gluing the
//!   two under `dc_tree::PagedDcTree`, page-chain layout shared with the
//!   single-threaded `ChainStore`.
//! * [`OocDcTree`] — the servable shard: concurrent readers, exclusive
//!   writers, pool stats and checkpoint flush without the tree lock.

pub mod codec;
pub mod pool;
pub mod shard;
pub mod store;

pub use pool::{ConcurrentPool, OocPoolStats, PinnedPage};
pub use shard::OocDcTree;
pub use store::{OocOptions, OocStore};
