//! Where a follower fetches the primary's log from.
//!
//! [`LogSource`] abstracts the fetch side of segment shipping so the same
//! [`Follower`](crate::Follower) machinery works in-process (tests, the
//! fault matrix), over a shared directory (log shipping via NFS/rsync),
//! or across the wire against a live `dc-serve` TCP server.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

use dc_common::{DcError, DcResult};
use dc_durable::{ship, CheckpointBundle, FetchOutcome, Manifest, SegmentShipment, WalFs};
use dc_serve::protocol::hex_decode;
use dc_serve::ShardedDcTree;

/// A primary's replication feed: the latest checkpoint bundle for
/// bootstrap, and LSN-continuous segment runs for tailing.
pub trait LogSource: Send + Sync {
    /// The latest committed checkpoint (manifest + images).
    fn fetch_checkpoint(&self) -> DcResult<CheckpointBundle>;
    /// Every live segment holding entries past `from_lsn`, or a
    /// `NeedCheckpoint` redirect when the primary has GC'd that history.
    fn fetch_segments(&self, from_lsn: u64) -> DcResult<FetchOutcome>;
}

/// Fetches from a primary engine in the same process (updates its
/// replication counters, exactly like a remote fetch would).
pub struct EngineSource(pub Arc<ShardedDcTree>);

impl LogSource for EngineSource {
    fn fetch_checkpoint(&self) -> DcResult<CheckpointBundle> {
        self.0.fetch_checkpoint()
    }

    fn fetch_segments(&self, from_lsn: u64) -> DcResult<FetchOutcome> {
        self.0.fetch_segments(from_lsn)
    }
}

/// Fetches straight from a WAL directory (the primary's own, or a copy
/// maintained by external log shipping). This is also what the crash
/// harness uses: a dead primary cannot answer fetches, but its directory
/// still can.
pub struct DirSource {
    /// The filesystem the directory lives on.
    pub fs: Arc<dyn WalFs>,
    /// The WAL directory.
    pub dir: PathBuf,
}

impl LogSource for DirSource {
    fn fetch_checkpoint(&self) -> DcResult<CheckpointBundle> {
        ship::fetch_checkpoint(&*self.fs, &self.dir)
    }

    fn fetch_segments(&self, from_lsn: u64) -> DcResult<FetchOutcome> {
        ship::fetch_segments(&*self.fs, &self.dir, from_lsn)
    }
}

/// Fetches over the dc-serve wire protocol (`FETCH_CHECKPOINT` /
/// `FETCH_SEGMENTS`), one connection per request.
pub struct TcpSource {
    /// `host:port` of the primary's TCP server.
    pub addr: String,
}

impl TcpSource {
    fn request(&self, line: &str) -> DcResult<String> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()?;
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        reader.read_line(&mut response)?;
        let response = response.trim_end().to_string();
        match response.strip_prefix("ERR ") {
            Some(msg) => Err(DcError::Config(format!("primary refused {line}: {msg}"))),
            None => Ok(response),
        }
    }
}

fn bad_reply(verb: &str, reply: &str) -> DcError {
    DcError::Corrupt(format!("malformed {verb} reply: {reply:.120}"))
}

impl LogSource for TcpSource {
    fn fetch_checkpoint(&self) -> DcResult<CheckpointBundle> {
        let reply = self.request("FETCH_CHECKPOINT")?;
        // OK CHECKPOINT <lsn> <start_seq> <shards> <hex>…
        let mut parts = reply.split_whitespace();
        if (parts.next(), parts.next()) != (Some("OK"), Some("CHECKPOINT")) {
            return Err(bad_reply("FETCH_CHECKPOINT", &reply));
        }
        let next_u64 = |parts: &mut std::str::SplitWhitespace<'_>| -> DcResult<u64> {
            parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad_reply("FETCH_CHECKPOINT", &reply))
        };
        let checkpoint_lsn = next_u64(&mut parts)?;
        let start_seq = next_u64(&mut parts)?;
        let shards = next_u64(&mut parts)? as u32;
        let manifest = Manifest {
            checkpoint_lsn,
            start_seq,
            shards,
        };
        let mut images = Vec::new();
        for (i, tok) in parts.enumerate() {
            let bytes = hex_decode(tok).ok_or_else(|| bad_reply("FETCH_CHECKPOINT", &reply))?;
            // Image ids are positional on the wire: the single unsharded
            // image when `shards == 0`, else shard 0..shards in order.
            let id = (shards > 0).then_some(i as u32);
            images.push((id, bytes));
        }
        Ok(CheckpointBundle { manifest, images })
    }

    fn fetch_segments(&self, from_lsn: u64) -> DcResult<FetchOutcome> {
        let reply = self.request(&format!("FETCH_SEGMENTS {from_lsn}"))?;
        let mut parts = reply.split_whitespace();
        match (parts.next(), parts.next()) {
            (Some("OK"), Some("NEED_CHECKPOINT")) => {
                let lsn = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad_reply("FETCH_SEGMENTS", &reply))?;
                Ok(FetchOutcome::NeedCheckpoint {
                    checkpoint_lsn: lsn,
                })
            }
            (Some("OK"), Some("SEGMENTS")) => {
                let count: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad_reply("FETCH_SEGMENTS", &reply))?;
                let mut segments = Vec::with_capacity(count);
                for tok in parts {
                    let mut fields = tok.splitn(3, ':');
                    let seq = fields.next().and_then(|t| t.parse().ok());
                    let first_lsn = fields.next().and_then(|t| t.parse().ok());
                    let bytes = fields.next().and_then(hex_decode);
                    match (seq, first_lsn, bytes) {
                        (Some(seq), Some(first_lsn), Some(bytes)) => {
                            segments.push(SegmentShipment {
                                seq,
                                first_lsn,
                                bytes,
                            });
                        }
                        _ => return Err(bad_reply("FETCH_SEGMENTS", &reply)),
                    }
                }
                if segments.len() != count {
                    return Err(bad_reply("FETCH_SEGMENTS", &reply));
                }
                Ok(FetchOutcome::Segments(segments))
            }
            _ => Err(bad_reply("FETCH_SEGMENTS", &reply)),
        }
    }
}
