//! The follower: bootstraps a local replica of the primary's WAL
//! directory, tails new segments into it, applies the entries to a
//! read-only engine, and — on failover — promotes that directory into a
//! writable primary.
//!
//! The follower's local directory is a byte-for-byte (clean-prefix)
//! mirror of the primary's: shipped checkpoint images and segment deltas
//! are appended and fsynced before their entries are applied, so at every
//! instant the directory recovers — through the ordinary `dc-durable`
//! recovery path — to exactly the applied prefix. Promotion is therefore
//! just "reopen the directory with [`EngineRole::Primary`]": recovery
//! seals any torn tail and the engine opens a WAL writer at the next LSN.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use dc_common::DcResult;
use dc_durable::{
    checkpoint_file_name, parse_segment_file_name, segment_file_name, CheckpointBundle,
    FetchOutcome, StdFs, WalFs,
};
use dc_hierarchy::CubeSchema;
use dc_serve::{EngineConfig, EngineRole, ShardedDcTree, WalOptions};
use parking_lot::{Mutex, RwLock};

use crate::source::LogSource;

/// How a [`Follower`] is built and paced.
pub struct FollowerConfig {
    /// The follower's local replica directory (its mirror of the
    /// primary's WAL directory, and the directory promotion reopens).
    pub dir: PathBuf,
    /// The filesystem the replica directory lives on; `None` = the real
    /// one. The fault matrix passes `FaultFs` here to crash the follower
    /// mid-install.
    pub fs: Option<Arc<dyn WalFs>>,
    /// How often the tailing thread polls the source.
    pub poll_interval: Duration,
    /// The follower engine's knobs (shard count must match the primary's
    /// checkpoints). `role` and `wal` are overridden — the follower always
    /// runs as [`EngineRole::Follower`] over [`FollowerConfig::dir`].
    pub engine: EngineConfig,
}

impl FollowerConfig {
    /// A follower over `dir` with default engine knobs and a 20 ms poll.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        FollowerConfig {
            dir: dir.into(),
            fs: None,
            poll_interval: Duration::from_millis(20),
            engine: EngineConfig::default(),
        }
    }

    fn wal_options(&self, fs: &Arc<dyn WalFs>) -> WalOptions {
        let mut opts = WalOptions::new(&self.dir);
        opts.fs = Some(Arc::clone(fs));
        opts
    }
}

/// What one [`Follower::poll_once`] did.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Progress {
    /// The source had nothing past the applied frontier.
    Idle,
    /// This many new entries were persisted and applied.
    Applied(u64),
    /// The primary GC'd the follower's position; the follower wiped its
    /// directory and re-bootstrapped from the checkpoint at this LSN.
    Resynced(u64),
}

/// A read-only replica: a local mirror of the primary's WAL directory
/// plus a [`ShardedDcTree`] follower engine serving snapshot reads from
/// it. See the module docs for the durability contract.
pub struct Follower {
    source: Box<dyn LogSource>,
    fs: Arc<dyn WalFs>,
    dir: PathBuf,
    schema: CubeSchema,
    engine_config: EngineConfig,
    poll_interval: Duration,
    engine: RwLock<Arc<ShardedDcTree>>,
    /// Local byte length of each mirrored segment — how much of a shipped
    /// segment is already on disk (only the delta past it is appended).
    seg_lens: Mutex<HashMap<u64, u64>>,
    /// Serializes poll/resync against each other (tailing thread vs.
    /// manual [`Follower::poll_once`] calls).
    poll_lock: Mutex<()>,
    stop: AtomicBool,
    tail_thread: Mutex<Option<JoinHandle<()>>>,
}

impl Follower {
    /// Bootstraps a follower: if the local directory has no manifest yet,
    /// the source's latest checkpoint bundle is installed (images first,
    /// manifest last — the manifest write is the atomic commit); then the
    /// follower engine recovers from the directory. `schema` must be the
    /// primary's base schema — a recovered checkpoint image overrides it
    /// (images carry the full interned schema), it only seeds a follower
    /// of a never-checkpointed primary, whose WAL replay re-interns every
    /// value anyway. Call [`catch_up`](Self::catch_up) or
    /// [`start_tailing`](Self::start_tailing) afterwards to replay the
    /// log tail.
    pub fn bootstrap(
        source: impl LogSource + 'static,
        schema: CubeSchema,
        config: FollowerConfig,
    ) -> DcResult<Self> {
        let fs: Arc<dyn WalFs> = config.fs.clone().unwrap_or_else(|| Arc::new(StdFs));
        fs.create_dir_all(&config.dir)?;
        if dc_durable::Manifest::load(&*fs, &config.dir)?.is_none() {
            let bundle = source.fetch_checkpoint()?;
            install_bundle(&*fs, &config.dir, &bundle)?;
        }
        let mut engine_config = config.engine.clone();
        engine_config.role = EngineRole::Follower;
        engine_config.wal = Some(config.wal_options(&fs));
        // A checkpoint image fixes the shard count; adopt the primary's
        // instead of making callers mirror its config by hand. (A manifest
        // with `shards == 0` is a never-checkpointed log — any count
        // works, so the configured one stands.)
        if let Some(manifest) = dc_durable::Manifest::load(&*fs, &config.dir)? {
            if manifest.shards > 0 {
                engine_config.num_shards = manifest.shards as usize;
            }
        }
        let engine = Arc::new(ShardedDcTree::new(schema, engine_config.clone())?);
        let schema = engine.schema();
        // Seed the mirror lengths AFTER engine recovery: recovery repairs
        // (truncates) any torn local tail first, so these lengths describe
        // clean frames only and delta-appends stay aligned.
        let seg_lens = scan_segment_lens(&*fs, &config.dir)?;
        Ok(Follower {
            source: Box::new(source),
            fs,
            dir: config.dir,
            schema,
            engine_config,
            poll_interval: config.poll_interval,
            engine: RwLock::new(engine),
            seg_lens: Mutex::new(seg_lens),
            poll_lock: Mutex::new(()),
            stop: AtomicBool::new(false),
            tail_thread: Mutex::new(None),
        })
    }

    /// The follower engine (serve reads from it; it rejects writes).
    /// Re-fetch after a [`Progress::Resynced`] poll — resync swaps in a
    /// fresh engine.
    pub fn engine(&self) -> Arc<ShardedDcTree> {
        Arc::clone(&self.engine.read())
    }

    /// The highest LSN applied and visible on the follower.
    pub fn applied_lsn(&self) -> u64 {
        self.engine.read().applied_lsn()
    }

    /// One replication round trip: fetch segments past the applied
    /// frontier, persist the deltas (fsynced) into the local mirror, apply
    /// the new entries, and flush them visible. A `NeedCheckpoint`
    /// redirect triggers a full resync instead.
    pub fn poll_once(&self) -> DcResult<Progress> {
        let _serialize = self.poll_lock.lock();
        let engine = self.engine();
        let from = engine.applied_lsn() + 1;
        match self.source.fetch_segments(from)? {
            FetchOutcome::NeedCheckpoint { .. } => {
                drop(engine);
                self.resync().map(Progress::Resynced)
            }
            FetchOutcome::Segments(segments) => {
                let mut applied = from - 1;
                let mut count = 0u64;
                for seg in &segments {
                    self.mirror_segment(seg.seq, &seg.bytes)?;
                    for (lsn, entry) in seg.entries() {
                        if lsn > applied {
                            engine.apply_replicated(&entry)?;
                            applied = lsn;
                            count += 1;
                        }
                    }
                }
                if count == 0 {
                    return Ok(Progress::Idle);
                }
                // Visibility before frontier: a `WAIT_LSN` that returns
                // must read its write.
                engine.flush();
                engine.publish_applied(applied);
                Ok(Progress::Applied(count))
            }
        }
    }

    /// Appends the unseen suffix of a shipped segment to the local mirror
    /// and fsyncs it — before any of its entries are applied, so the
    /// mirror always recovers to at least the applied prefix.
    fn mirror_segment(&self, seq: u64, bytes: &[u8]) -> DcResult<()> {
        let mut lens = self.seg_lens.lock();
        let have = *lens.get(&seq).unwrap_or(&0);
        let want = bytes.len() as u64;
        if want <= have {
            return Ok(());
        }
        let path = self.dir.join(segment_file_name(seq));
        let mut file = self.fs.create_append(&path)?;
        file.write_all(&bytes[have as usize..])?;
        file.sync()?;
        lens.insert(seq, want);
        Ok(())
    }

    /// Polls until the source has nothing new (two consecutive idle
    /// rounds bound races with a live writer). Returns the applied LSN.
    pub fn catch_up(&self) -> DcResult<u64> {
        let mut idle = 0;
        while idle < 2 {
            match self.poll_once()? {
                Progress::Idle => idle += 1,
                _ => idle = 0,
            }
        }
        Ok(self.applied_lsn())
    }

    /// The primary discarded the log the follower needs (checkpoint +
    /// segment GC passed our position): wipe the mirror, reinstall the
    /// latest checkpoint bundle, and swap in a freshly recovered engine.
    fn resync(&self) -> DcResult<u64> {
        let bundle = self.source.fetch_checkpoint()?;
        let old = {
            let engine = self.engine.read();
            Arc::clone(&engine)
        };
        old.shutdown();
        for name in self.fs.list(&self.dir)? {
            self.fs.remove(&self.dir.join(&name))?;
        }
        install_bundle(&*self.fs, &self.dir, &bundle)?;
        let engine = Arc::new(ShardedDcTree::new(
            self.schema.clone(),
            self.engine_config.clone(),
        )?);
        let lsn = engine.applied_lsn();
        *self.seg_lens.lock() = scan_segment_lens(&*self.fs, &self.dir)?;
        *self.engine.write() = engine;
        Ok(lsn)
    }

    /// Spawns the tailing thread: poll, sleep `poll_interval`, repeat
    /// until [`stop_tailing`](Self::stop_tailing). Fetch errors are
    /// retried on the next tick (a restarting primary looks like a
    /// transient error).
    pub fn start_tailing(self: &Arc<Self>) {
        let mut slot = self.tail_thread.lock();
        if slot.is_some() {
            return;
        }
        self.stop.store(false, Ordering::SeqCst);
        let me = Arc::clone(self);
        *slot = Some(std::thread::spawn(move || {
            while !me.stop.load(Ordering::SeqCst) {
                let _ = me.poll_once();
                std::thread::sleep(me.poll_interval);
            }
        }));
    }

    /// Stops and joins the tailing thread (idempotent).
    pub fn stop_tailing(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.tail_thread.lock().take() {
            let _ = handle.join();
        }
    }

    /// Failover: stop tailing, shut the read-only engine down, and reopen
    /// the mirrored directory as a writable primary. The follower is
    /// consumed — the returned engine owns the directory now.
    pub fn promote(self) -> DcResult<ShardedDcTree> {
        self.stop_tailing();
        self.engine.read().shutdown();
        promote_dir(
            Arc::clone(&self.fs),
            &self.dir,
            self.schema.clone(),
            self.engine_config.clone(),
        )
    }
}

/// Opens a replica directory as a writable primary — ordinary recovery
/// (checkpoint images + tail replay, torn tail sealed) with
/// [`EngineRole::Primary`], so the engine comes up LSN-continuous and
/// accepting writes. Usable without a [`Follower`] value: after a crash,
/// failover only needs the directory.
pub fn promote_dir(
    fs: Arc<dyn WalFs>,
    dir: &Path,
    schema: CubeSchema,
    mut config: EngineConfig,
) -> DcResult<ShardedDcTree> {
    config.role = EngineRole::Primary;
    let mut wal = WalOptions::new(dir);
    if let Some(prior) = config.wal.take() {
        wal.sync = prior.sync;
        wal.segment_bytes = prior.segment_bytes;
        wal.checkpoint_every = prior.checkpoint_every;
    }
    wal.fs = Some(fs);
    config.wal = Some(wal);
    ShardedDcTree::new(schema, config)
}

/// Installs a checkpoint bundle into an empty (or wiped) directory:
/// images first (appended + fsynced), manifest last as the atomic commit.
fn install_bundle(fs: &dyn WalFs, dir: &Path, bundle: &CheckpointBundle) -> DcResult<()> {
    let lsn = bundle.manifest.checkpoint_lsn;
    if lsn > 0 {
        for (shard, bytes) in &bundle.images {
            let path = dir.join(checkpoint_file_name(lsn, *shard));
            if fs.read(&path)?.is_some() {
                fs.remove(&path)?;
            }
            // Appended (not write_atomic) so the fault matrix can tear
            // and fsync-fail the install like any other replica write.
            let mut file = fs.create_append(&path)?;
            file.write_all(bytes)?;
            file.sync()?;
        }
    }
    bundle.manifest.store(fs, dir)
}

/// Byte lengths of the segment files in `dir` (the local mirror state).
fn scan_segment_lens(fs: &dyn WalFs, dir: &Path) -> DcResult<HashMap<u64, u64>> {
    let mut lens = HashMap::new();
    for name in fs.list(dir)? {
        if let Some(seq) = parse_segment_file_name(&name) {
            if let Some(bytes) = fs.read(&dir.join(&name))? {
                lens.insert(seq, bytes.len() as u64);
            }
        }
    }
    Ok(lens)
}
