//! # dc-replica
//!
//! WAL segment-shipping replication for the DC-tree serving engine.
//!
//! The paper's index promises a warehouse without maintenance windows; a
//! real deployment also wants one without *read downtime* — reporting
//! replicas that absorb query load and a failover path when the primary
//! dies. This crate adds both on top of `dc-durable`'s segmented WAL and
//! `dc-serve`'s sharded engine, without touching the write path: the WAL
//! the primary already writes for durability *is* the replication stream.
//!
//! * A primary ([`dc_serve::EngineRole::Primary`] with a WAL) serves its
//!   log through [`dc_durable::ship`]: checkpoint bundles for bootstrap,
//!   LSN-continuous segment runs for tailing — over three transports
//!   ([`EngineSource`] in-process, [`DirSource`] shared directory,
//!   [`TcpSource`] via the dc-serve wire verbs `FETCH_CHECKPOINT` /
//!   `FETCH_SEGMENTS`).
//! * A [`Follower`] mirrors those bytes into a local directory (fsynced
//!   before apply, so the mirror always recovers to the applied prefix),
//!   applies the entries to a read-only [`dc_serve::ShardedDcTree`], and
//!   serves snapshot reads with **read-your-LSN** freshness: a client
//!   that wrote through the primary at LSN `n` issues `WAIT_LSN n` (or
//!   prefixes a query with `MIN_LSN n`) on the follower and then reads
//!   its own write.
//! * Failover is [`Follower::promote`] (or [`promote_dir`] for a
//!   crashed follower's directory): ordinary crash recovery seals any
//!   torn tail, and the directory reopens as a writable primary at the
//!   next LSN — the same code path every crash test in the workspace
//!   already exercises.
//!
//! If the primary checkpoints and GC's segments past a lagging
//! follower's position, the fetch redirects (`NeedCheckpoint`) and the
//! follower resyncs from the latest bundle — never a silent gap
//! (property-tested in `tests/gc_continuity.rs`, fault-tested in
//! `tests/fault_points.rs`).

pub mod follower;
pub mod source;

pub use follower::{promote_dir, Follower, FollowerConfig, Progress};
pub use source::{DirSource, EngineSource, LogSource, TcpSource};
