//! The replication fault matrix: deterministic crashes at each stage of
//! the segment-shipping pipeline, always ending in a **promotion** that
//! must come up writable and LSN-continuous.
//!
//! Four crash points (ISSUE: the replication boundary, both sides):
//!
//! 1. the **primary** dies mid-segment-write — the follower tails the
//!    surviving directory and is promoted in its place;
//! 2. the **follower** dies mid-mirror-append — its directory reopens to
//!    a clean prefix of what it had replicated;
//! 3. a **bit flip** lands in the follower's mirror at the replication
//!    boundary — promotion-time recovery seals the log at the damage;
//! 4. the **first fsync fails during checkpoint-image install** at
//!    bootstrap — the manifest is never committed, so a clean retry
//!    re-bootstraps from nothing.
//!
//! Every scenario asserts the replication ordering invariant
//! `synced ≤ recovered ≤ attempted` and differentially checks the
//! promoted engine against a never-crashed monolith fed the same prefix.
//! The sync policy is `DC_SYNC_POLICY`-selected (`always` | `every4` |
//! `group`), matching the CI fault matrix.

use std::path::PathBuf;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;

use dc_durable::{apply, FaultFs, FaultPlan, SyncPolicy, WalEntry};
use dc_replica::{promote_dir, DirSource, Follower, FollowerConfig};
use dc_serve::{EngineConfig, ShardedDcTree, StdFs, WalOptions};
use dc_tpcd::{generate, TpcdConfig, TpcdData};
use dc_tree::{DcTree, DcTreeConfig};

const OPS: usize = 100;
const SHARDS: usize = 2;

fn tpcd() -> TpcdData {
    generate(&TpcdConfig::scaled(500, 7))
}

fn sync_policy() -> SyncPolicy {
    match std::env::var("DC_SYNC_POLICY").as_deref() {
        Ok("every4") => SyncPolicy::EveryN(4),
        Ok("group") => SyncPolicy::GroupCommitMs(3_600_000),
        _ => SyncPolicy::Always,
    }
}

/// Deterministic insert/delete mix, expressed as WAL entries so the
/// oracle replays the exact recovery code path.
fn workload(data: &TpcdData) -> Vec<WalEntry> {
    let mut ops = Vec::with_capacity(OPS);
    let mut live: Vec<usize> = Vec::new();
    let mut state = 0x5EED_F00Du64;
    let mut next = |m: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % m
    };
    for i in 0..OPS {
        let delete = !live.is_empty() && next(100) < 15;
        if delete {
            let idx = live.swap_remove(next(live.len() as u64) as usize);
            let r = &data.records[idx];
            ops.push(WalEntry::Delete {
                paths: data.paths_for(r),
                measure: r.measure,
            });
        } else {
            let idx = i % data.records.len();
            live.push(idx);
            let r = &data.records[idx];
            ops.push(WalEntry::Insert {
                paths: data.paths_for(r),
                measure: r.measure,
            });
        }
    }
    ops
}

fn oracle(data: &TpcdData, ops: &[WalEntry], prefix: usize) -> DcTree {
    let mut tree = DcTree::new(data.schema.clone(), DcTreeConfig::default());
    for op in &ops[..prefix] {
        apply(&mut tree, op).unwrap();
    }
    tree
}

fn config(
    dir: &PathBuf,
    fs: Option<Arc<dyn dc_serve::WalFs>>,
    checkpoint_every: u64,
) -> EngineConfig {
    EngineConfig {
        num_shards: SHARDS,
        wal: Some(WalOptions {
            sync: sync_policy(),
            segment_bytes: 1024, // small budget: faults cross rotations
            checkpoint_every,
            fs,
            ..WalOptions::new(dir)
        }),
        ..EngineConfig::default()
    }
}

fn apply_to_engine(engine: &ShardedDcTree, op: &WalEntry) -> dc_common::DcResult<()> {
    match op {
        WalEntry::Insert { paths, measure } => engine.insert_raw(paths, *measure),
        WalEntry::Delete { paths, measure } => engine.delete_raw(paths, *measure),
    }
}

/// Runs the workload on a primary over `fs` until a fault surfaces.
/// Returns `(attempted, synced)` — the recoverable upper bound (one op of
/// slack when it died mid-op) and the durable lower bound.
fn run_primary(
    dir: &PathBuf,
    data: &TpcdData,
    ops: &[WalEntry],
    fs: Option<Arc<dyn dc_serve::WalFs>>,
    checkpoint_every: u64,
) -> (u64, u64) {
    let engine = match ShardedDcTree::new(data.schema.clone(), config(dir, fs, checkpoint_every)) {
        Ok(engine) => engine,
        Err(_) => return (0, 0),
    };
    let mut ok = 0u64;
    let mut died = false;
    for op in ops {
        match apply_to_engine(&engine, op) {
            Ok(()) => ok += 1,
            Err(_) => {
                died = true;
                break;
            }
        }
    }
    if !died {
        engine.flush(); // durability barrier: everything acked is synced
    }
    let synced = engine.metrics().durability.wal_synced_lsn.load(Relaxed);
    (ok + u64::from(died), synced)
}

/// Asserts the promoted engine is exactly the oracle prefix `P`, is
/// writable, and continues the log at `P + 1`. Returns `P`.
fn check_promoted(
    promoted: &ShardedDcTree,
    data: &TpcdData,
    ops: &[WalEntry],
    synced: u64,
    attempted: u64,
) -> u64 {
    let d = &promoted.metrics().durability;
    let p = d.recovery_checkpoint_lsn.load(Relaxed) + d.recovery_replayed_entries.load(Relaxed);
    assert!(
        synced <= p,
        "promotion lost a synced write: synced={synced} recovered={p}"
    );
    assert!(
        p <= attempted,
        "promotion invented writes: recovered={p} attempted={attempted}"
    );
    let mono = oracle(data, ops, p as usize);
    assert_eq!(promoted.len(), mono.len(), "len mismatch at prefix {p}");
    assert_eq!(promoted.total_summary(), mono.total_summary());
    // Writable and LSN-continuous: the first post-promotion write must
    // land at exactly P + 1 — no gap, no reuse.
    let r = &data.records[0];
    promoted
        .insert_raw(&data.paths_for(r), r.measure)
        .expect("promoted engine must accept writes");
    promoted.flush();
    assert_eq!(
        promoted.metrics().durability.wal_last_lsn.load(Relaxed),
        p + 1,
        "promoted log is not LSN-continuous"
    );
    p
}

fn temp_dir(tag: &str, n: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dc-repl-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Segment-file traffic of a fault-free run, used to place the crashes.
fn total_wal_bytes(data: &TpcdData, ops: &[WalEntry]) -> u64 {
    let dir = temp_dir("dry", 0);
    let fs = FaultFs::new(FaultPlan::default());
    let (attempted, _) = run_primary(&dir, data, ops, Some(Arc::new(fs.clone())), 0);
    assert_eq!(attempted, ops.len() as u64);
    let bytes = fs.written();
    let _ = std::fs::remove_dir_all(&dir);
    assert!(bytes > 2048, "workload too small to cross segments");
    bytes
}

/// Crash point 1: the primary dies mid-segment-write. A follower tails
/// the surviving directory (the bytes outlive the process) and is
/// promoted in the dead primary's place.
#[test]
fn primary_crash_mid_send_promotes_follower() {
    let data = tpcd();
    let ops = workload(&data);
    let total = total_wal_bytes(&data, &ops);
    for i in [2u64, 4, 6, 8] {
        let offset = total * i / 9;
        let primary_dir = temp_dir("p1-primary", offset);
        let follower_dir = temp_dir("p1-follower", offset);
        let fault = FaultFs::new(FaultPlan {
            crash_after_bytes: Some(offset),
            ..FaultPlan::default()
        });
        let (attempted, synced) =
            run_primary(&primary_dir, &data, &ops, Some(Arc::new(fault.clone())), 0);
        assert!(fault.crashed(), "crash at byte {offset} never fired");
        // The primary is gone; its directory survives. Reads through the
        // fault filesystem still serve (only writes are dead).
        let follower = Follower::bootstrap(
            DirSource {
                fs: Arc::new(fault.clone()),
                dir: primary_dir.clone(),
            },
            data.schema.clone(),
            FollowerConfig {
                engine: EngineConfig {
                    num_shards: SHARDS,
                    ..EngineConfig::default()
                },
                ..FollowerConfig::new(&follower_dir)
            },
        )
        .expect("bootstrap from the dead primary's directory");
        follower.catch_up().expect("tail the surviving segments");
        let promoted = follower.promote().expect("promotion must succeed");
        check_promoted(&promoted, &data, &ops, synced, attempted);
        drop(promoted);
        let _ = std::fs::remove_dir_all(&primary_dir);
        let _ = std::fs::remove_dir_all(&follower_dir);
    }
}

/// Crash point 2: the follower dies mid-mirror-append. Its directory
/// reopens (promotion after primary loss) to a clean prefix of what it
/// had replicated — never more than the primary attempted.
#[test]
fn follower_crash_mid_apply_recovers_clean_prefix() {
    let data = tpcd();
    let ops = workload(&data);
    let total = total_wal_bytes(&data, &ops);
    for i in [1u64, 3, 5, 7] {
        let offset = total * i / 9;
        let primary_dir = temp_dir("p2-primary", offset);
        let follower_dir = temp_dir("p2-follower", offset);
        let (attempted, _) = run_primary(&primary_dir, &data, &ops, None, 0);
        assert_eq!(attempted, ops.len() as u64);
        let fault = FaultFs::new(FaultPlan {
            crash_after_bytes: Some(offset),
            ..FaultPlan::default()
        });
        let follower = Follower::bootstrap(
            DirSource {
                fs: Arc::new(StdFs),
                dir: primary_dir.clone(),
            },
            data.schema.clone(),
            FollowerConfig {
                fs: Some(Arc::new(fault.clone())),
                engine: EngineConfig {
                    num_shards: SHARDS,
                    ..EngineConfig::default()
                },
                ..FollowerConfig::new(&follower_dir)
            },
        )
        .expect("bootstrap precedes the crash offset");
        // Tail until the injected crash kills a mirror append.
        let death = follower.catch_up();
        assert!(death.is_err(), "crash at byte {offset} never fired");
        // Everything the follower *applied* was mirror-fsynced first, so
        // reopening its directory must recover at least that much.
        let follower_synced = follower.applied_lsn();
        drop(follower);
        let promoted = promote_dir(
            Arc::new(StdFs),
            &follower_dir,
            data.schema.clone(),
            EngineConfig {
                num_shards: SHARDS,
                ..EngineConfig::default()
            },
        )
        .expect("follower directory must reopen after its crash");
        check_promoted(&promoted, &data, &ops, follower_synced, attempted);
        drop(promoted);
        let _ = std::fs::remove_dir_all(&primary_dir);
        let _ = std::fs::remove_dir_all(&follower_dir);
    }
}

/// Crash point 3: a silent bit flip lands in the follower's mirror at the
/// replication boundary. Replication itself cannot see it (the follower
/// applied the in-memory entries); promotion-time recovery's CRC sweep
/// must seal the log at the damage and keep a strict prefix.
#[test]
fn torn_frame_in_mirror_seals_on_promotion() {
    let data = tpcd();
    let ops = workload(&data);
    let total = total_wal_bytes(&data, &ops);
    for i in [2u64, 5, 7] {
        let offset = total * i / 9;
        let primary_dir = temp_dir("p3-primary", offset);
        let follower_dir = temp_dir("p3-follower", offset);
        let (attempted, _) = run_primary(&primary_dir, &data, &ops, None, 0);
        let fault = FaultFs::new(FaultPlan {
            flip_bit: Some((offset, 0x10)),
            ..FaultPlan::default()
        });
        let follower = Follower::bootstrap(
            DirSource {
                fs: Arc::new(StdFs),
                dir: primary_dir.clone(),
            },
            data.schema.clone(),
            FollowerConfig {
                fs: Some(Arc::new(fault.clone())),
                engine: EngineConfig {
                    num_shards: SHARDS,
                    ..EngineConfig::default()
                },
                ..FollowerConfig::new(&follower_dir)
            },
        )
        .expect("bit flips are silent at bootstrap");
        follower
            .catch_up()
            .expect("bit flips are silent while tailing");
        assert!(!fault.crashed());
        assert_eq!(follower.applied_lsn(), attempted, "follower saw every op");
        drop(follower);
        let promoted = promote_dir(
            Arc::new(StdFs),
            &follower_dir,
            data.schema.clone(),
            EngineConfig {
                num_shards: SHARDS,
                ..EngineConfig::default()
            },
        )
        .expect("promotion seals the damage instead of failing");
        // The flipped frame cannot be promised back: the durable lower
        // bound at the damage point is unknowable, so only the prefix
        // bound and the differential have teeth — plus the demand that
        // the flip was actually *detected*.
        let p = check_promoted(&promoted, &data, &ops, 0, attempted);
        assert!(
            p < attempted,
            "flip at byte {offset} went undetected: promoted all {attempted} ops"
        );
        drop(promoted);
        let _ = std::fs::remove_dir_all(&primary_dir);
        let _ = std::fs::remove_dir_all(&follower_dir);
    }
}

/// Crash point 4: the first fsync during checkpoint-image install fails
/// at bootstrap. The manifest commits *after* the images, so the wrecked
/// install leaves no manifest and a clean retry starts from nothing.
#[test]
fn fsync_failure_during_checkpoint_install_is_retryable() {
    let data = tpcd();
    let ops = workload(&data);
    let primary_dir = temp_dir("p4-primary", 0);
    let follower_dir = temp_dir("p4-follower", 0);
    // Half the workload, a real checkpoint (so the bundle has images),
    // then the rest — the bundle alone is a strict prefix.
    let engine = ShardedDcTree::new(data.schema.clone(), config(&primary_dir, None, 0)).unwrap();
    for op in &ops[..OPS / 2] {
        apply_to_engine(&engine, op).unwrap();
    }
    let ckpt_lsn = engine.checkpoint().expect("explicit checkpoint");
    assert_eq!(ckpt_lsn, (OPS / 2) as u64);
    for op in &ops[OPS / 2..] {
        apply_to_engine(&engine, op).unwrap();
    }
    engine.flush();
    let attempted = ops.len() as u64;
    let source = || DirSource {
        fs: Arc::new(StdFs),
        dir: primary_dir.clone(),
    };
    let fault = FaultFs::new(FaultPlan {
        fail_sync: Some(1),
        ..FaultPlan::default()
    });
    let wrecked = Follower::bootstrap(
        source(),
        data.schema.clone(),
        FollowerConfig {
            fs: Some(Arc::new(fault.clone())),
            engine: EngineConfig {
                num_shards: SHARDS,
                ..EngineConfig::default()
            },
            ..FollowerConfig::new(&follower_dir)
        },
    );
    assert!(wrecked.is_err(), "image-install fsync #1 must surface");
    assert!(fault.crashed());
    // The atomic-commit ordering held: no manifest means no half-adopted
    // checkpoint — the retry below re-installs from scratch.
    assert!(
        dc_durable::Manifest::load(&StdFs, &follower_dir)
            .unwrap()
            .is_none(),
        "failed install must not commit a manifest"
    );
    let follower = Follower::bootstrap(
        source(),
        data.schema.clone(),
        FollowerConfig {
            engine: EngineConfig {
                num_shards: SHARDS,
                ..EngineConfig::default()
            },
            ..FollowerConfig::new(&follower_dir)
        },
    )
    .expect("clean retry after the wrecked install");
    assert_eq!(
        follower
            .engine()
            .metrics()
            .durability
            .recovery_checkpoint_lsn
            .load(Relaxed),
        ckpt_lsn,
        "retry bootstraps from the shipped checkpoint"
    );
    follower.catch_up().unwrap();
    assert_eq!(follower.applied_lsn(), attempted);
    let promoted = follower.promote().unwrap();
    let p = check_promoted(&promoted, &data, &ops, attempted, attempted);
    assert_eq!(p, attempted, "nothing to lose on a fault-free tail");
    drop(promoted);
    drop(engine);
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&follower_dir);
}
