//! Property: a follower's segment fetch NEVER sees a silent LSN gap, no
//! matter how appends, rotations, checkpoints (with their segment GC),
//! crash-torn tails, and fetches from arbitrary positions interleave.
//!
//! For every `fetch_segments(from)` against a live WAL directory:
//!
//! * `from ≤ checkpoint_lsn` ⇒ `NeedCheckpoint` (the history is GC'd —
//!   redirect, don't fabricate);
//! * otherwise ⇒ a run of shipments where the first covers `from` (or
//!   starts at the log's true beginning past the checkpoint), every
//!   consecutive pair is LSN-contiguous (`next.first_lsn == prev.first_lsn
//!   + prev.entries`), and the run reaches the writer's synced tip.

use std::path::Path;
use std::sync::Arc;

use dc_durable::{
    fetch_segments, FetchOutcome, StdFs, SyncPolicy, WalConfig, WalEntry, WalReader, WalWriter,
};
use proptest::prelude::*;

/// A tiny entry whose frame size still forces frequent rotations under
/// the small segment budget below.
fn entry(i: u64) -> WalEntry {
    WalEntry::Insert {
        paths: vec![vec![format!("a{}", i % 7), format!("b{i}")]],
        measure: i as i64,
    }
}

fn open_writer(dir: &Path) -> WalWriter {
    let scan = WalReader::recover(&StdFs, dir).unwrap();
    WalWriter::open(
        Arc::new(StdFs),
        dir,
        WalConfig {
            segment_bytes: 256, // rotate every few frames
            sync: SyncPolicy::Always,
        },
        &scan,
        0,
    )
    .unwrap()
}

/// Checks the fetch contract at `from` against a directory whose durable
/// log currently spans `(checkpoint_lsn, tip]`.
fn check_fetch(dir: &Path, from: u64, checkpoint_lsn: u64, tip: u64) {
    let from = from.max(1);
    match fetch_segments(&StdFs, dir, from).unwrap() {
        FetchOutcome::NeedCheckpoint {
            checkpoint_lsn: redirect,
        } => {
            assert!(
                from <= redirect,
                "redirected at from={from} although the log still holds it \
                 (redirect checkpoint={redirect})"
            );
            assert_eq!(redirect, checkpoint_lsn);
        }
        FetchOutcome::Segments(segs) => {
            assert!(
                from > checkpoint_lsn,
                "fetch from={from} below checkpoint {checkpoint_lsn} must redirect"
            );
            let mut next_lsn = None;
            for seg in &segs {
                if let Some(expected) = next_lsn {
                    assert_eq!(
                        seg.first_lsn, expected,
                        "silent gap between shipped segments"
                    );
                }
                next_lsn = Some(seg.first_lsn + seg.entries().len() as u64);
            }
            if let Some(first) = segs.first() {
                assert!(
                    first.first_lsn <= from,
                    "first shipment starts at {} — past the requested {from}",
                    first.first_lsn
                );
            }
            // A fetch with anything to say must reach the synced tip: a
            // run that silently stops early is a gap the follower can
            // never detect. (`from` past the tip legitimately ships
            // nothing.)
            if from <= tip {
                let reached = next_lsn.map_or(checkpoint_lsn, |n| n - 1);
                assert!(
                    reached >= tip,
                    "fetch from={from} reached only {reached}, tip is {tip}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Interleaves appends, checkpoints (which GC segments), torn-tail
    /// crashes, and fetches from arbitrary LSNs.
    #[test]
    fn fetch_never_skips_lsns(script in prop::collection::vec(any::<u16>(), 1..48)) {
        let dir = std::env::temp_dir().join(format!(
            "dc-gc-prop-{}-{}-{}",
            std::process::id(),
            script.len(),
            script.first().copied().unwrap_or(0)
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let mut writer = open_writer(&dir);
        let mut tip = 0u64; // highest durable lsn
        let mut checkpoint_lsn = 0u64;
        for word in script {
            match word % 10 {
                // Append a burst (the common case).
                0..=5 => {
                    let burst = 1 + (word / 10) % 5;
                    for _ in 0..burst {
                        tip = writer.append(&entry(tip)).unwrap();
                    }
                    writer.sync().unwrap();
                }
                // Checkpoint: segments before it are GC'd on commit.
                6 => {
                    let (lsn, start_seq) = writer.prepare_checkpoint().unwrap();
                    writer.commit_checkpoint(lsn, start_seq, 0).unwrap();
                    checkpoint_lsn = lsn;
                }
                // Crash with a torn tail, then reopen (repairs the tail).
                7 => {
                    drop(writer);
                    let seg_name = {
                        // Tear the newest segment by a few bytes, if any.
                        let mut segs: Vec<_> = std::fs::read_dir(&dir)
                            .unwrap()
                            .filter_map(|e| {
                                let name = e.unwrap().file_name().into_string().ok()?;
                                dc_durable::parse_segment_file_name(&name).map(|seq| (seq, name))
                            })
                            .collect();
                        segs.sort();
                        segs.last().map(|(_, name)| name.clone())
                    };
                    if let Some(name) = seg_name {
                        let path = dir.join(name);
                        let len = std::fs::metadata(&path).unwrap().len();
                        let torn = len.saturating_sub(u64::from(word % 7) + 1);
                        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
                        f.set_len(torn).unwrap();
                    }
                    writer = open_writer(&dir);
                    // The torn suffix (≤ a frame or two) is gone for good.
                    tip = writer.lsn();
                    checkpoint_lsn = checkpoint_lsn.min(tip);
                }
                // Fetch from an arbitrary lsn around the live range.
                _ => {
                    let span = tip + 4;
                    let from = u64::from(word) % span.max(1) + 1;
                    check_fetch(&dir, from, checkpoint_lsn, tip);
                }
            }
        }
        // Final sweep: every position from below the checkpoint to past
        // the tip honours the contract.
        for from in 1..=tip + 2 {
            check_fetch(&dir, from, checkpoint_lsn, tip);
        }
        drop(writer);
        std::fs::remove_dir_all(&dir).ok();
    }
}
