//! Property-based tests of the concept-hierarchy invariants (Definition 1).

use dc_common::{DimensionId, Level, ValueId};
use dc_hierarchy::{ConceptHierarchy, HierarchySchema};
use proptest::prelude::*;

/// Strategy: a batch of (region, nation, customer) index paths.
fn paths() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    prop::collection::vec((0u8..5, 0u8..6, 0u8..8), 1..120)
}

fn build(paths: &[(u8, u8, u8)]) -> (ConceptHierarchy, Vec<ValueId>) {
    let mut h = ConceptHierarchy::new(
        DimensionId(0),
        HierarchySchema::new("D", vec!["A".into(), "B".into(), "C".into()]),
    );
    let leaves = paths
        .iter()
        .map(|&(a, b, c)| {
            h.intern_path(&[
                format!("a{a}"),
                format!("a{a}b{b}"),
                format!("a{a}b{b}c{c}"),
            ])
            .unwrap()
        })
        .collect();
    (h, leaves)
}

proptest! {
    /// Interning is idempotent: same path → same ID, and re-interning never
    /// grows the hierarchy.
    #[test]
    fn intern_idempotent(ps in paths()) {
        let (mut h, leaves) = build(&ps);
        let size = h.num_values();
        for (p, expected) in ps.iter().zip(&leaves) {
            let again = h
                .intern_path(&[
                    format!("a{}", p.0),
                    format!("a{}b{}", p.0, p.1),
                    format!("a{}b{}c{}", p.0, p.1, p.2),
                ])
                .unwrap();
            prop_assert_eq!(again, *expected);
        }
        prop_assert_eq!(h.num_values(), size);
    }

    /// The partial order ⊑ is reflexive, antisymmetric in levels, and every
    /// value sits below ALL.
    #[test]
    fn partial_order_laws(ps in paths()) {
        let (h, leaves) = build(&ps);
        for &leaf in &leaves {
            prop_assert!(h.le(leaf, leaf).unwrap());
            prop_assert!(h.le(leaf, h.all()).unwrap());
            // Walking ancestors: leaf ⊑ every ancestor; ancestors not ⊑ leaf
            // unless equal.
            let mut cur = leaf;
            while let Some(parent) = h.parent(cur).unwrap() {
                prop_assert!(h.le(leaf, parent).unwrap());
                prop_assert!(!h.le(parent, leaf).unwrap());
                cur = parent;
            }
        }
    }

    /// `ancestor_at` agrees with iterated `parent`, level by level.
    #[test]
    fn ancestor_at_is_iterated_parent(ps in paths()) {
        let (h, leaves) = build(&ps);
        for &leaf in &leaves {
            let mut cur = leaf;
            for level in 0..=h.top_level() {
                prop_assert_eq!(h.ancestor_at(leaf, level).unwrap(), cur);
                if level < h.top_level() {
                    cur = h.parent(cur).unwrap().unwrap();
                }
            }
        }
    }

    /// Children partition each level: every non-root value appears in
    /// exactly its parent's child list, and per-level counts match.
    #[test]
    fn children_partition_levels(ps in paths()) {
        let (h, _) = build(&ps);
        for level in 0..h.top_level() {
            let mut from_parents = 0usize;
            for parent in h.values_at(level + 1) {
                for &child in h.children(parent).unwrap() {
                    prop_assert_eq!(h.parent(child).unwrap(), Some(parent));
                    prop_assert_eq!(child.level(), level);
                    from_parents += 1;
                }
            }
            prop_assert_eq!(from_parents, h.num_values_at(level));
        }
    }

    /// The flat ancestor tables agree with the parent-pointer walk for
    /// *every* interned value and *every* requested level — including the
    /// error cases — after an arbitrary interleaving of interns. This pins
    /// the O(1) `ancestor_at` fast path to its original-walk oracle.
    #[test]
    fn ancestor_tables_match_walk(ps in paths(), extra in paths()) {
        // Interleave two batches so table rows are appended in a
        // non-monotone order across levels.
        let mut h = ConceptHierarchy::new(
            DimensionId(0),
            HierarchySchema::new("D", vec!["A".into(), "B".into(), "C".into()]),
        );
        let mut it1 = ps.iter();
        let mut it2 = extra.iter();
        loop {
            let a = it1.next();
            let b = it2.next();
            if a.is_none() && b.is_none() {
                break;
            }
            for &(a, b, c) in a.into_iter().chain(b) {
                h.intern_path(&[
                    format!("a{a}"),
                    format!("a{a}b{b}"),
                    format!("a{a}b{b}c{c}"),
                ])
                .unwrap();
            }
        }
        for level in 0..=h.top_level() {
            for v in h.values_at(level) {
                for target in 0..=(h.top_level() + 1) {
                    let fast = h.ancestor_at(v, target);
                    let walk = h.ancestor_at_walk(v, target);
                    match (fast, walk) {
                        (Ok(f), Ok(w)) => prop_assert_eq!(f, w),
                        (Err(_), Err(_)) => {}
                        (f, w) => prop_assert!(false, "fast={f:?} walk={w:?}"),
                    }
                }
            }
        }
    }

    /// `leaves_under(ALL)` enumerates every leaf exactly once, and
    /// `leaves_under(v)` are exactly the leaves whose ancestor is `v`.
    #[test]
    fn leaves_under_is_consistent(ps in paths(), probe_level in 0u8..3) {
        let (h, _) = build(&ps);
        let all_leaves = h.leaves_under(h.all()).unwrap();
        prop_assert_eq!(all_leaves.len(), h.num_values_at(0));
        let level: Level = probe_level;
        for v in h.values_at(level + 1).take(4) {
            let subtree = h.leaves_under(v).unwrap();
            for leaf in &all_leaves {
                let is_under = h.ancestor_at(*leaf, level + 1).unwrap() == v;
                prop_assert_eq!(subtree.contains(leaf), is_under);
            }
        }
    }
}
