//! A single dimension's concept hierarchy with its dynamic dictionary.

use std::collections::HashMap;
use std::fmt;

use dc_common::{DcError, DcResult, DimensionId, Level, ValueId};

/// The *hierarchy schema* of one dimension: the ordered list of functional
/// attribute names, from the broadest one directly below `ALL` down to the
/// leaf attribute (Fig. 1: Region, Nation, Customer ID).
#[derive(Clone, Debug)]
pub struct HierarchySchema {
    name: String,
    /// Attribute names ordered top → leaf (index 0 is directly below ALL).
    attributes: Vec<String>,
}

impl HierarchySchema {
    /// Creates a schema. `attributes` are ordered from the level directly
    /// below `ALL` down to the leaves.
    ///
    /// # Panics
    /// Panics if `attributes` is empty or has 15 or more entries (the 4-bit
    /// level encoding supports `ALL` + at most 15 functional levels).
    pub fn new(name: impl Into<String>, attributes: Vec<String>) -> Self {
        assert!(
            !attributes.is_empty(),
            "a dimension needs at least one attribute"
        );
        assert!(
            attributes.len() < 15,
            "at most 14 functional levels fit the 4-bit encoding"
        );
        HierarchySchema {
            name: name.into(),
            attributes,
        }
    }

    /// Dimension name (e.g. "Customer").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of functional attribute levels (excluding `ALL`).
    pub fn num_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Name of the attribute at `level` (0 = leaf).
    ///
    /// Returns `None` for the `ALL` level or beyond.
    pub fn attribute_name(&self, level: Level) -> Option<&str> {
        let depth = self.attributes.len().checked_sub(1 + level as usize)?;
        self.attributes.get(depth).map(String::as_str)
    }
}

#[derive(Clone, Debug)]
struct ValueInfo {
    name: String,
    /// Parent ID; for the root `ALL` this is the root itself.
    parent: ValueId,
    /// Children in insertion order.
    children: Vec<ValueId>,
}

/// A concept hierarchy: the dynamic tree of attribute values of one
/// dimension, with `ALL` as root (Definition 1), plus the dictionary that
/// interns attribute-value strings to [`ValueId`]s.
///
/// Levels follow the paper: leaves are level 0, `ALL` is the top level
/// (`num_attributes`, i.e. the distance from the leaves).
#[derive(Clone)]
pub struct ConceptHierarchy {
    dim: DimensionId,
    schema: HierarchySchema,
    /// `tables[level][index]` holds the value with `ValueId::new(level, index)`.
    tables: Vec<Vec<ValueInfo>>,
    /// Dictionary: (parent, name) → child ID. The paper stores "the ID of the
    /// father for each ID in one concept hierarchy"; we additionally keep the
    /// reverse map so that insertions of already-known values are O(1).
    dict: HashMap<(ValueId, String), ValueId>,
    /// Flat ancestor tables: `anc[l]` is row-major with one row per value at
    /// level `l`, holding the value's ancestor *indices* at levels
    /// `l+1 ..= top_level` (row width `top_level - l`). Maintained
    /// incrementally on intern — a child's row is its parent's index followed
    /// by the parent's row — so [`Self::ancestor_at`] is a single array load
    /// instead of a parent-pointer walk. This sits in the innermost loops of
    /// every range query (each entry/record test lifts values to the query
    /// level), where the walk used to dominate.
    anc: Vec<Vec<u32>>,
}

impl ConceptHierarchy {
    /// Creates an empty hierarchy for dimension `dim`: only `ALL` exists.
    pub fn new(dim: DimensionId, schema: HierarchySchema) -> Self {
        let top = schema.num_attributes(); // level of ALL
        let mut tables: Vec<Vec<ValueInfo>> = (0..=top).map(|_| Vec::new()).collect();
        let all = ValueId::new(top as Level, 0);
        tables[top].push(ValueInfo {
            name: "ALL".to_string(),
            parent: all,
            children: Vec::new(),
        });
        ConceptHierarchy {
            dim,
            schema,
            tables,
            dict: HashMap::new(),
            anc: (0..=top).map(|_| Vec::new()).collect(),
        }
    }

    /// The dimension this hierarchy describes.
    pub fn dimension(&self) -> DimensionId {
        self.dim
    }

    /// The hierarchy schema.
    pub fn schema(&self) -> &HierarchySchema {
        &self.schema
    }

    /// The level of the `ALL` root (= number of functional attributes).
    pub fn top_level(&self) -> Level {
        self.schema.num_attributes() as Level
    }

    /// The root value `ALL`.
    pub fn all(&self) -> ValueId {
        ValueId::new(self.top_level(), 0)
    }

    /// Number of values currently known at `level`.
    pub fn num_values_at(&self, level: Level) -> usize {
        self.tables.get(level as usize).map_or(0, Vec::len)
    }

    /// Total number of values across all levels (including `ALL`).
    pub fn num_values(&self) -> usize {
        self.tables.iter().map(Vec::len).sum()
    }

    /// Iterates over all values at `level` in insertion (ID) order.
    pub fn values_at(&self, level: Level) -> impl Iterator<Item = ValueId> + '_ {
        (0..self.num_values_at(level) as u32).map(move |i| ValueId::new(level, i))
    }

    fn info(&self, id: ValueId) -> DcResult<&ValueInfo> {
        self.tables
            .get(id.level() as usize)
            .and_then(|t| t.get(id.index() as usize))
            .ok_or(DcError::UnknownValue { dim: self.dim, id })
    }

    /// `true` iff `id` was issued by this hierarchy.
    pub fn contains(&self, id: ValueId) -> bool {
        self.info(id).is_ok()
    }

    /// Human-readable name of a value.
    pub fn name(&self, id: ValueId) -> DcResult<&str> {
        Ok(&self.info(id)?.name)
    }

    /// Parent of `id`; `None` for `ALL`.
    pub fn parent(&self, id: ValueId) -> DcResult<Option<ValueId>> {
        let info = self.info(id)?;
        Ok((id != self.all()).then_some(info.parent))
    }

    /// Children of `id` in insertion order.
    pub fn children(&self, id: ValueId) -> DcResult<&[ValueId]> {
        Ok(&self.info(id)?.children)
    }

    /// The ancestor of `id` at `level` — one bounds check plus one array
    /// load against the incrementally maintained ancestor tables.
    ///
    /// `level` must satisfy `id.level() <= level <= top_level()`; the
    /// ancestor at `id.level()` is `id` itself.
    pub fn ancestor_at(&self, id: ValueId, level: Level) -> DcResult<ValueId> {
        let from = id.level();
        if level < from || level > self.top_level() {
            return Err(DcError::BadLevel {
                dim: self.dim,
                id,
                requested: level,
            });
        }
        if level == from {
            // Still validate the id — callers rely on the error contract.
            self.info(id)?;
            return Ok(id);
        }
        let width = (self.top_level() - from) as usize;
        let base = id.index() as usize * width;
        let offset = (level - from) as usize - 1;
        match self
            .anc
            .get(from as usize)
            .and_then(|t| t.get(base + offset))
        {
            Some(&idx) => Ok(ValueId::new(level, idx)),
            None => Err(DcError::UnknownValue { dim: self.dim, id }),
        }
    }

    /// The ancestor of `id` at `level`, computed by the original
    /// parent-pointer walk. Semantically identical to
    /// [`Self::ancestor_at`]; kept as the independent oracle the
    /// property tests compare the O(1) tables against.
    pub fn ancestor_at_walk(&self, id: ValueId, level: Level) -> DcResult<ValueId> {
        if level < id.level() || level > self.top_level() {
            return Err(DcError::BadLevel {
                dim: self.dim,
                id,
                requested: level,
            });
        }
        let mut cur = id;
        while cur.level() < level {
            cur = self.info(cur)?.parent;
        }
        // Validate `cur == id` lookups too (the walk only touches `info`
        // when it moves).
        self.info(cur)?;
        Ok(cur)
    }

    /// The partial ordering of Definition 1: `a ⊑ b` iff `a == b` or `a` is
    /// a (direct or indirect) descendant of `b`.
    pub fn le(&self, a: ValueId, b: ValueId) -> DcResult<bool> {
        if b.level() < a.level() {
            return Ok(false);
        }
        Ok(self.ancestor_at(a, b.level())? == b)
    }

    /// Interns the attribute-value chain of one record for this dimension.
    ///
    /// `path` is ordered top → leaf (e.g. `["EUROPE", "GERMANY", "cust#17"]`)
    /// and must contain exactly one value per functional attribute. Unknown
    /// values are appended dynamically — "the DC-tree manages its concept
    /// hierarchies dynamically" (§3.1). Returns the leaf [`ValueId`].
    pub fn intern_path<S: AsRef<str>>(&mut self, path: &[S]) -> DcResult<ValueId> {
        if path.len() != self.schema.num_attributes() {
            return Err(DcError::BadPathLength {
                dim: self.dim,
                expected: self.schema.num_attributes(),
                got: path.len(),
            });
        }
        let mut parent = self.all();
        for (depth, name) in path.iter().enumerate() {
            let level = self.top_level() - 1 - depth as Level;
            parent = self.intern_child(parent, level, name.as_ref())?;
        }
        Ok(parent)
    }

    /// Looks up (without creating) the value with this top→leaf prefix path.
    pub fn lookup_path<S: AsRef<str>>(&self, path: &[S]) -> Option<ValueId> {
        let mut parent = self.all();
        for name in path {
            parent = *self.dict.get(&(parent, name.as_ref().to_string()))?;
        }
        Some(parent)
    }

    /// Inserts (or finds) a direct child of `parent` named `name`.
    ///
    /// The child's level is `parent.level() - 1`; inserting below a leaf is
    /// an error. Because IDs are assigned in per-level insertion order,
    /// replaying insertions in ID order reproduces identical IDs — the
    /// property the tree-persistence codec relies on.
    pub fn insert_child(&mut self, parent: ValueId, name: &str) -> DcResult<ValueId> {
        let info_level = self.info(parent)?; // validates parent
        let _ = info_level;
        if parent.level() == 0 {
            return Err(DcError::BadLevel {
                dim: self.dim,
                id: parent,
                requested: 0,
            });
        }
        self.intern_child(parent, parent.level() - 1, name)
    }

    fn intern_child(&mut self, parent: ValueId, level: Level, name: &str) -> DcResult<ValueId> {
        if let Some(&id) = self.dict.get(&(parent, name.to_string())) {
            return Ok(id);
        }
        let table = &mut self.tables[level as usize];
        if table.len() > dc_common::id::MAX_INDEX as usize {
            return Err(DcError::IdSpaceExhausted {
                dim: self.dim,
                level,
            });
        }
        let id = ValueId::new(level, table.len() as u32);
        table.push(ValueInfo {
            name: name.to_string(),
            parent,
            children: Vec::new(),
        });
        self.tables[parent.level() as usize][parent.index() as usize]
            .children
            .push(id);
        self.dict.insert((parent, name.to_string()), id);
        // Extend the ancestor table: the child's row is its parent's index
        // followed by the parent's own row (ancestors at parent.level()+1
        // and up). O(levels) per *new* value, O(1) per lookup forever after.
        let parent_width = (self.top_level() - parent.level()) as usize;
        let parent_row_base = parent.index() as usize * parent_width;
        let (row, parent_rows) = {
            let (lo, hi) = self.anc.split_at_mut(parent.level() as usize);
            (&mut lo[level as usize], &hi[0])
        };
        row.push(parent.index());
        row.extend_from_slice(&parent_rows[parent_row_base..parent_row_base + parent_width]);
        Ok(id)
    }

    /// All descendants of `id` on `level` (in ID order); `id` itself when
    /// `level == id.level()`. The downward mate of [`ancestor_at`]
    /// (Self::ancestor_at): `d ∈ descendants_at(v, l)` iff
    /// `ancestor_at(d, v.level()) == v`. Used by the aggregate cache to
    /// expand a coarse query down to a cached entry's relevant level.
    ///
    /// Errors when `level > id.level()` (that direction is `ancestor_at`).
    pub fn descendants_at(&self, id: ValueId, level: Level) -> DcResult<Vec<ValueId>> {
        if level > id.level() {
            return Err(DcError::BadLevel {
                dim: self.dim,
                id,
                requested: level,
            });
        }
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(v) = stack.pop() {
            if v.level() == level {
                out.push(v);
            } else {
                stack.extend(self.children(v)?.iter().copied());
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// All leaf-level descendants of `id` (in ID order). `id` itself if it is
    /// a leaf. Used by the sequential-scan baseline and for tests.
    pub fn leaves_under(&self, id: ValueId) -> DcResult<Vec<ValueId>> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(v) = stack.pop() {
            if v.level() == 0 {
                out.push(v);
            } else {
                stack.extend(self.children(v)?.iter().copied());
            }
        }
        out.sort_unstable();
        Ok(out)
    }
}

impl fmt::Debug for ConceptHierarchy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConceptHierarchy")
            .field("dim", &self.dim)
            .field("name", &self.schema.name())
            .field(
                "values_per_level",
                &(0..=self.top_level())
                    .map(|l| self.num_values_at(l))
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn customer_hierarchy() -> ConceptHierarchy {
        let schema = HierarchySchema::new(
            "Customer",
            vec!["Region".into(), "Nation".into(), "CustomerId".into()],
        );
        ConceptHierarchy::new(DimensionId(0), schema)
    }

    #[test]
    fn fresh_hierarchy_has_only_all() {
        let h = customer_hierarchy();
        assert_eq!(h.top_level(), 3);
        assert_eq!(h.num_values(), 1);
        assert_eq!(h.name(h.all()).unwrap(), "ALL");
        assert_eq!(h.parent(h.all()).unwrap(), None);
    }

    #[test]
    fn intern_builds_paper_example() {
        // Figure 1: ALL → Europe → Germany → customers.
        let mut h = customer_hierarchy();
        let c1 = h.intern_path(&["Europe", "Germany", "c1"]).unwrap();
        let c2 = h.intern_path(&["Europe", "Germany", "c2"]).unwrap();
        let c3 = h.intern_path(&["Europe", "France", "c3"]).unwrap();
        assert_eq!(c1.level(), 0);
        assert_ne!(c1, c2);
        let germany = h.parent(c1).unwrap().unwrap();
        assert_eq!(h.name(germany).unwrap(), "Germany");
        assert_eq!(h.parent(c2).unwrap().unwrap(), germany);
        let france = h.parent(c3).unwrap().unwrap();
        let europe = h.parent(germany).unwrap().unwrap();
        assert_eq!(h.parent(france).unwrap().unwrap(), europe);
        assert_eq!(h.parent(europe).unwrap().unwrap(), h.all());
        assert_eq!(h.num_values_at(2), 1); // Europe
        assert_eq!(h.num_values_at(1), 2); // Germany, France
        assert_eq!(h.num_values_at(0), 3);
    }

    #[test]
    fn intern_is_idempotent() {
        let mut h = customer_hierarchy();
        let a = h.intern_path(&["Europe", "Germany", "c1"]).unwrap();
        let b = h.intern_path(&["Europe", "Germany", "c1"]).unwrap();
        assert_eq!(a, b);
        assert_eq!(h.num_values(), 4);
    }

    #[test]
    fn same_name_under_different_parents_gets_distinct_ids() {
        // Month "01" exists under every year; they must be distinct nodes.
        let schema = HierarchySchema::new("Time", vec!["Year".into(), "Month".into()]);
        let mut h = ConceptHierarchy::new(DimensionId(3), schema);
        let a = h.intern_path(&["1996", "01"]).unwrap();
        let b = h.intern_path(&["1997", "01"]).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn partial_order_of_definition_1() {
        let mut h = customer_hierarchy();
        let c1 = h.intern_path(&["Europe", "Germany", "c1"]).unwrap();
        let germany = h.parent(c1).unwrap().unwrap();
        let europe = h.parent(germany).unwrap().unwrap();
        // "Germany ⊑ Europe and a ⊑ ALL holds for each value a."
        assert!(h.le(germany, europe).unwrap());
        assert!(h.le(c1, h.all()).unwrap());
        assert!(h.le(germany, h.all()).unwrap());
        assert!(h.le(germany, germany).unwrap());
        assert!(!h.le(europe, germany).unwrap());
        let c9 = h.intern_path(&["Asia", "Japan", "c9"]).unwrap();
        assert!(!h.le(c9, europe).unwrap());
    }

    #[test]
    fn ancestor_at_walks_exactly_to_level() {
        let mut h = customer_hierarchy();
        let c1 = h.intern_path(&["Europe", "Germany", "c1"]).unwrap();
        assert_eq!(h.name(h.ancestor_at(c1, 1).unwrap()).unwrap(), "Germany");
        assert_eq!(h.name(h.ancestor_at(c1, 2).unwrap()).unwrap(), "Europe");
        assert_eq!(h.ancestor_at(c1, 3).unwrap(), h.all());
        assert_eq!(h.ancestor_at(c1, 0).unwrap(), c1);
        assert!(h.ancestor_at(h.all(), 0).is_err());
    }

    #[test]
    fn bad_path_length_is_rejected() {
        let mut h = customer_hierarchy();
        assert!(matches!(
            h.intern_path(&["Europe", "Germany"]),
            Err(DcError::BadPathLength { .. })
        ));
    }

    #[test]
    fn unknown_id_is_rejected() {
        let h = customer_hierarchy();
        let bogus = ValueId::new(1, 7);
        assert!(matches!(h.name(bogus), Err(DcError::UnknownValue { .. })));
    }

    #[test]
    fn leaves_under_collects_subtree() {
        let mut h = customer_hierarchy();
        let c1 = h.intern_path(&["Europe", "Germany", "c1"]).unwrap();
        let c2 = h.intern_path(&["Europe", "Germany", "c2"]).unwrap();
        let c3 = h.intern_path(&["Europe", "France", "c3"]).unwrap();
        let c4 = h.intern_path(&["Asia", "Japan", "c4"]).unwrap();
        let europe = h.ancestor_at(c1, 2).unwrap();
        assert_eq!(h.leaves_under(europe).unwrap(), vec![c1, c2, c3]);
        assert_eq!(h.leaves_under(h.all()).unwrap(), vec![c1, c2, c3, c4]);
        assert_eq!(h.leaves_under(c4).unwrap(), vec![c4]);
    }

    #[test]
    fn attribute_names_map_to_levels() {
        let h = customer_hierarchy();
        assert_eq!(h.schema().attribute_name(0), Some("CustomerId"));
        assert_eq!(h.schema().attribute_name(1), Some("Nation"));
        assert_eq!(h.schema().attribute_name(2), Some("Region"));
        assert_eq!(h.schema().attribute_name(3), None); // ALL
    }

    #[test]
    fn insert_child_builds_and_rejects_below_leaves() {
        let mut h = customer_hierarchy();
        let europe = h.insert_child(h.all(), "Europe").unwrap();
        assert_eq!(europe.level(), 2);
        let germany = h.insert_child(europe, "Germany").unwrap();
        let c1 = h.insert_child(germany, "c1").unwrap();
        assert_eq!(c1.level(), 0);
        // Idempotent.
        assert_eq!(h.insert_child(europe, "Germany").unwrap(), germany);
        // Below a leaf is an error.
        assert!(matches!(
            h.insert_child(c1, "x"),
            Err(DcError::BadLevel { .. })
        ));
        // Unknown parent is an error.
        assert!(h.insert_child(ValueId::new(2, 99), "y").is_err());
    }

    #[test]
    fn lookup_path_finds_prefixes() {
        let mut h = customer_hierarchy();
        let c1 = h.intern_path(&["Europe", "Germany", "c1"]).unwrap();
        assert_eq!(h.lookup_path(&["Europe", "Germany", "c1"]), Some(c1));
        let germany = h.lookup_path(&["Europe", "Germany"]).unwrap();
        assert_eq!(h.name(germany).unwrap(), "Germany");
        assert_eq!(h.lookup_path(&["Europe", "Spain"]), None);
    }
}
