//! The cube schema: one concept hierarchy per dimension plus the measure.

use dc_common::{DcError, DcResult, DimensionId, Level, Measure, ValueId};

use crate::hierarchy::{ConceptHierarchy, HierarchySchema};

/// A data record of the cube (Definition 2): one leaf-level attribute value
/// per dimension plus the measure value.
///
/// Ancestor values on higher hierarchy levels are *derived* through the
/// [`CubeSchema`], never stored — mirroring the paper, where each record
/// carries one value per functional attribute and the DC-tree keeps the
/// is-a relationships in its dictionaries.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Record {
    /// Leaf-level value per dimension (`dims[i].level() == 0`).
    pub dims: Vec<ValueId>,
    /// The measure (fixed-point, e.g. extended price in cents).
    pub measure: Measure,
}

impl Record {
    /// Convenience constructor.
    pub fn new(dims: Vec<ValueId>, measure: Measure) -> Self {
        Record { dims, measure }
    }
}

/// The schema of a data cube: `d` concept hierarchies and a measure name.
///
/// This is the shared, dynamically growing context that the DC-tree, the
/// X-tree conversion and the sequential scan all consult.
#[derive(Clone, Debug)]
pub struct CubeSchema {
    dimensions: Vec<ConceptHierarchy>,
    measure_name: String,
}

impl CubeSchema {
    /// Builds a cube schema from per-dimension hierarchy schemata.
    pub fn new(dimension_schemas: Vec<HierarchySchema>, measure_name: impl Into<String>) -> Self {
        let dimensions = dimension_schemas
            .into_iter()
            .enumerate()
            .map(|(i, s)| ConceptHierarchy::new(DimensionId(i as u16), s))
            .collect();
        CubeSchema {
            dimensions,
            measure_name: measure_name.into(),
        }
    }

    /// Number of dimensions `d`.
    pub fn num_dims(&self) -> usize {
        self.dimensions.len()
    }

    /// The measure attribute's name.
    pub fn measure_name(&self) -> &str {
        &self.measure_name
    }

    /// The concept hierarchy of one dimension.
    pub fn dim(&self, dim: DimensionId) -> &ConceptHierarchy {
        &self.dimensions[dim.as_usize()]
    }

    /// Mutable access to one dimension's hierarchy (for interning).
    pub fn dim_mut(&mut self, dim: DimensionId) -> &mut ConceptHierarchy {
        &mut self.dimensions[dim.as_usize()]
    }

    /// Iterates over all dimensions.
    pub fn dims(&self) -> impl Iterator<Item = &ConceptHierarchy> {
        self.dimensions.iter()
    }

    /// Interns a raw record: one top→leaf attribute path per dimension plus
    /// the measure. This is the "assignment of IDs" step the DC-tree performs
    /// on every insertion (§3.1).
    pub fn intern_record<S: AsRef<str>>(
        &mut self,
        paths: &[Vec<S>],
        measure: Measure,
    ) -> DcResult<Record> {
        if paths.len() != self.num_dims() {
            return Err(DcError::DimensionMismatch {
                expected: self.num_dims(),
                got: paths.len(),
            });
        }
        let mut dims = Vec::with_capacity(paths.len());
        for (h, path) in self.dimensions.iter_mut().zip(paths) {
            dims.push(h.intern_path(path)?);
        }
        Ok(Record { dims, measure })
    }

    /// Structurally validates one raw record — one path per dimension,
    /// each exactly as deep as its hierarchy — **without interning
    /// anything**. Durable layers call this before logging a mutation:
    /// interning accepts any *names* dynamically, so this is the complete
    /// set of checks that could later reject the record, and a record that
    /// would be rejected must never reach the WAL (recovery replays the
    /// log and would fail on it).
    pub fn validate_paths<S: AsRef<str>>(&self, paths: &[Vec<S>]) -> DcResult<()> {
        if paths.len() != self.num_dims() {
            return Err(DcError::DimensionMismatch {
                expected: self.num_dims(),
                got: paths.len(),
            });
        }
        for (h, path) in self.dimensions.iter().zip(paths) {
            if path.len() != h.schema().num_attributes() {
                return Err(DcError::BadPathLength {
                    dim: h.dimension(),
                    expected: h.schema().num_attributes(),
                    got: path.len(),
                });
            }
        }
        Ok(())
    }

    /// Validates that a record's leaf IDs all belong to this schema.
    pub fn validate_record(&self, record: &Record) -> DcResult<()> {
        if record.dims.len() != self.num_dims() {
            return Err(DcError::DimensionMismatch {
                expected: self.num_dims(),
                got: record.dims.len(),
            });
        }
        for (h, &id) in self.dimensions.iter().zip(&record.dims) {
            if id.level() != 0 || !h.contains(id) {
                return Err(DcError::UnknownValue {
                    dim: h.dimension(),
                    id,
                });
            }
        }
        Ok(())
    }

    /// Total number of functional attributes over all dimensions — the
    /// dimensionality of the X-tree in the paper's evaluation (Fig. 10 maps
    /// every hierarchy level of every dimension to one X-tree axis; the
    /// TPC-D cube yields 13).
    pub fn num_flat_axes(&self) -> usize {
        self.dimensions.iter().map(|h| h.top_level() as usize).sum()
    }

    /// The flat-axis index of `(dim, level)` in [`flatten_record`].
    ///
    /// Axes are laid out dimension-major; within a dimension from the
    /// broadest attribute (level `top-1`) down to the leaf (level 0),
    /// matching the column order of the paper's Fig. 10.
    ///
    /// [`flatten_record`]: Self::flatten_record
    pub fn flat_axis(&self, dim: DimensionId, level: Level) -> usize {
        let mut base = 0usize;
        for h in &self.dimensions[..dim.as_usize()] {
            base += h.top_level() as usize;
        }
        let top = self.dimensions[dim.as_usize()].top_level();
        assert!(level < top, "ALL has no flat axis");
        base + (top - 1 - level) as usize
    }

    /// Expands a record to its full attribute-ID vector: for every dimension,
    /// the raw IDs of the leaf value and all its ancestors below `ALL`.
    /// This is the point the X-tree indexes (Fig. 10).
    pub fn flatten_record(&self, record: &Record) -> DcResult<Vec<u32>> {
        let mut out = Vec::with_capacity(self.num_flat_axes());
        for (h, &leaf) in self.dimensions.iter().zip(&record.dims) {
            for level in (0..h.top_level()).rev() {
                out.push(h.ancestor_at(leaf, level)?.raw());
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> CubeSchema {
        CubeSchema::new(
            vec![
                HierarchySchema::new(
                    "Customer",
                    vec!["Region".into(), "Nation".into(), "CustomerId".into()],
                ),
                HierarchySchema::new("Time", vec!["Year".into(), "Month".into()]),
            ],
            "ExtendedPrice",
        )
    }

    #[test]
    fn intern_record_assigns_leaf_ids() {
        let mut s = schema();
        let r = s
            .intern_record(&[vec!["Europe", "Germany", "c1"], vec!["1996", "03"]], 1500)
            .unwrap();
        assert_eq!(r.dims.len(), 2);
        assert!(r.dims.iter().all(|d| d.level() == 0));
        assert_eq!(r.measure, 1500);
        s.validate_record(&r).unwrap();
    }

    #[test]
    fn dimension_count_is_checked() {
        let mut s = schema();
        let paths: [Vec<&str>; 1] = [vec!["Europe", "Germany", "c1"]];
        assert!(matches!(
            s.intern_record(&paths, 0),
            Err(DcError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn flat_axes_cover_all_functional_attributes() {
        let s = schema();
        // Customer has 3 functional levels, Time has 2 → 5 axes.
        assert_eq!(s.num_flat_axes(), 5);
        assert_eq!(s.flat_axis(DimensionId(0), 2), 0); // Region
        assert_eq!(s.flat_axis(DimensionId(0), 1), 1); // Nation
        assert_eq!(s.flat_axis(DimensionId(0), 0), 2); // CustomerId
        assert_eq!(s.flat_axis(DimensionId(1), 1), 3); // Year
        assert_eq!(s.flat_axis(DimensionId(1), 0), 4); // Month
    }

    #[test]
    fn flatten_record_emits_ancestor_chain() {
        let mut s = schema();
        let r = s
            .intern_record(&[vec!["Europe", "Germany", "c1"], vec!["1996", "03"]], 7)
            .unwrap();
        let flat = s.flatten_record(&r).unwrap();
        assert_eq!(flat.len(), 5);
        let cust = s.dim(DimensionId(0));
        let europe = cust.lookup_path(&["Europe"]).unwrap();
        let germany = cust.lookup_path(&["Europe", "Germany"]).unwrap();
        assert_eq!(flat[0], europe.raw());
        assert_eq!(flat[1], germany.raw());
        assert_eq!(flat[2], r.dims[0].raw());
    }

    #[test]
    fn validate_rejects_foreign_ids() {
        let mut s = schema();
        let r = s
            .intern_record(&[vec!["Europe", "Germany", "c1"], vec!["1996", "03"]], 7)
            .unwrap();
        let mut bad = r.clone();
        bad.dims[0] = ValueId::new(0, 999); // never interned
        assert!(s.validate_record(&bad).is_err());
        let mut bad2 = r;
        bad2.dims[1] = s.dim(DimensionId(1)).all(); // not leaf level
        assert!(s.validate_record(&bad2).is_err());
    }
}
