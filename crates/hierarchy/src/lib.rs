//! # dc-hierarchy
//!
//! Concept hierarchies for the dimensions of a data cube (§3.1 of the
//! DC-tree paper).
//!
//! A dimension with multiple functional attributes (e.g. Customer with
//! Region, Nation, MktSegment, CustomerId) organizes them in a *hierarchy
//! schema*; a *concept hierarchy* is an instance of that schema: a tree whose
//! nodes are attribute values, whose root is the special value `ALL`, and
//! whose edges are the is-a relationship. The hierarchy induces the partial
//! ordering `a ⊑ b` ("a is equal to b or a descendant of b") on which the
//! whole MDS algebra is built.
//!
//! The DC-tree manages its concept hierarchies **dynamically**: every data
//! record insertion interns the record's attribute-value chain, assigning
//! fresh 32-bit [`ValueId`](dc_common::ValueId)s (4 level bits + 28 index bits) to values never
//! seen before. The per-level insertion order of those IDs is the artificial
//! total order used to drive the X-tree baseline (§5.2).

pub mod cube;
pub mod hierarchy;

pub use cube::{CubeSchema, Record};
pub use hierarchy::{ConceptHierarchy, HierarchySchema};
