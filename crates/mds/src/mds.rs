//! The MDS proper: a sequence of per-dimension sets, plus Definition 4's
//! algebra and the adaptation rules shared by the split and query paths.

use dc_common::{DcResult, Level};
use dc_hierarchy::{CubeSchema, Record};

use crate::dimset::DimSet;

/// A minimum describing sequence `(M_1, …, M_d)` (Definition 3).
///
/// Invariants (enforced by constructors, checked by the DC-tree's invariant
/// checker):
/// * one [`DimSet`] per cube dimension, in dimension order;
/// * within a dimension all values are on the set's relevant level;
/// * sets are sorted and deduplicated.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Mds {
    dims: Vec<DimSet>,
}

impl Mds {
    /// Builds an MDS from per-dimension sets (one per cube dimension).
    pub fn new(dims: Vec<DimSet>) -> Self {
        Mds { dims }
    }

    /// The initial MDS of a fresh DC-tree: `(ALL, …, ALL)` — "the relevant
    /// level is initialized to the top level for each dimension" (§3.2).
    pub fn all(schema: &CubeSchema) -> Self {
        Mds {
            dims: schema.dims().map(|h| DimSet::singleton(h.all())).collect(),
        }
    }

    /// The point MDS of a single data record: singleton leaf-level sets.
    pub fn from_record(record: &Record) -> Self {
        Mds {
            dims: record.dims.iter().map(|&v| DimSet::singleton(v)).collect(),
        }
    }

    /// Number of dimensions `d`.
    #[inline]
    pub fn num_dims(&self) -> usize {
        self.dims.len()
    }

    /// One dimension's component.
    #[inline]
    pub fn dim(&self, i: usize) -> &DimSet {
        &self.dims[i]
    }

    /// Mutable access used by the insert path when widening coverage.
    #[inline]
    pub fn dim_mut(&mut self, i: usize) -> &mut DimSet {
        &mut self.dims[i]
    }

    /// Iterates the per-dimension components.
    pub fn dims(&self) -> impl Iterator<Item = &DimSet> {
        self.dims.iter()
    }

    /// The relevant levels `(l_1, …, l_d)`.
    pub fn levels(&self) -> Vec<Level> {
        self.dims.iter().map(DimSet::level).collect()
    }

    /// `size(M) = Σ_i |M_i|` (Definition 4) — proportional to the MDS's
    /// storage footprint.
    pub fn size(&self) -> usize {
        self.dims.iter().map(DimSet::len).sum()
    }

    /// `volume(M) = Π_i |M_i|` (Definition 4). Saturating `u128`.
    pub fn volume(&self) -> u128 {
        self.dims
            .iter()
            .fold(1u128, |acc, d| acc.saturating_mul(d.len() as u128))
    }

    /// `overlap(M, N) = Π_i |M_i ∩ N_i|` (Definition 4).
    ///
    /// Both operands must be *comparable*: equal relevant levels in every
    /// dimension. The split path guarantees this by adapting entries to the
    /// node MDS first; use [`Mds::adapted_pair`] otherwise.
    pub fn overlap(&self, other: &Mds) -> u128 {
        self.dims
            .iter()
            .zip(&other.dims)
            .fold(1u128, |acc, (a, b)| {
                acc.saturating_mul(a.intersection_len(b) as u128)
            })
    }

    /// `extension(M, N) = Π_i |M_i ∪ N_i|` (Definition 4). Same
    /// comparability requirement as [`Mds::overlap`].
    pub fn extension(&self, other: &Mds) -> u128 {
        self.dims
            .iter()
            .zip(&other.dims)
            .fold(1u128, |acc, (a, b)| {
                acc.saturating_mul(a.union_len(b) as u128)
            })
    }

    /// Adapts this MDS to the given target levels (all ≥ current levels).
    pub fn adapt_to_levels(&self, schema: &CubeSchema, levels: &[Level]) -> DcResult<Mds> {
        debug_assert_eq!(levels.len(), self.dims.len());
        let mut dims = Vec::with_capacity(self.dims.len());
        for ((d, h), &lvl) in self.dims.iter().zip(schema.dims()).zip(levels) {
            dims.push(d.adapt_to(h, lvl)?);
        }
        Ok(Mds { dims })
    }

    /// Makes two MDSs comparable by adapting, per dimension, the lower-level
    /// side up to the higher level — the for-loop at the top of the
    /// range-query algorithm (Fig. 7), where "we do not know which of the two
    /// MDSs contains the higher level attribute values".
    pub fn adapted_pair(&self, other: &Mds, schema: &CubeSchema) -> DcResult<(Mds, Mds)> {
        let levels: Vec<Level> = self
            .dims
            .iter()
            .zip(&other.dims)
            .map(|(a, b)| a.level().max(b.level()))
            .collect();
        Ok((
            self.adapt_to_levels(schema, &levels)?,
            other.adapt_to_levels(schema, &levels)?,
        ))
    }

    /// Containment in the sense of Definition 4: `other` contains `self`
    /// iff for each dimension, every value of `self` has an ancestor-or-equal
    /// among `other`'s values.
    ///
    /// This is the *sound* direction used by the range query's materialized
    /// shortcut: when it returns `true`, every leaf cell reachable under
    /// `self` is selected by `other`.
    pub fn contained_in(&self, other: &Mds, schema: &CubeSchema) -> DcResult<bool> {
        for ((a, b), h) in self.dims.iter().zip(&other.dims).zip(schema.dims()) {
            if !a.dominated_by(b, h)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// `true` iff the two MDSs overlap in every dimension after adaptation.
    /// Used to prune irrelevant directory entries (Fig. 7).
    pub fn overlaps(&self, other: &Mds, schema: &CubeSchema) -> DcResult<bool> {
        for ((a, b), h) in self.dims.iter().zip(&other.dims).zip(schema.dims()) {
            if !a.overlaps(b, h)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// The union of two *comparable* MDSs (equal relevant levels in every
    /// dimension): per-dimension set union. This is the covering MDS in the
    /// common case where both operands were already adapted — the hierarchy
    /// split works exclusively on such aligned operands.
    pub fn union_aligned(&self, other: &Mds) -> Mds {
        debug_assert_eq!(
            self.levels(),
            other.levels(),
            "union_aligned requires equal levels"
        );
        let mut out = self.clone();
        for (da, db) in out.dims.iter_mut().zip(&other.dims) {
            da.union_with(db);
        }
        out
    }

    /// The covering MDS of two operands: per dimension, both sides adapted
    /// to the higher of the two levels, then united. Used for seed selection
    /// in the hierarchy split (Fig. 6: "Compute the covering MDS for each
    /// pair of MDSs") and to recompute node MDSs.
    pub fn cover(&self, other: &Mds, schema: &CubeSchema) -> DcResult<Mds> {
        let (mut a, b) = self.adapted_pair(other, schema)?;
        for (da, db) in a.dims.iter_mut().zip(&b.dims) {
            da.union_with(db);
        }
        Ok(a)
    }

    /// `true` iff the record's leaf values are covered: each leaf's ancestor
    /// on the relevant level is in the dimension set.
    pub fn contains_record(&self, schema: &CubeSchema, record: &Record) -> DcResult<bool> {
        for ((d, h), &leaf) in self.dims.iter().zip(schema.dims()).zip(&record.dims) {
            let anc = h.ancestor_at(leaf, d.level())?;
            if !d.contains_value(anc) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Widens this MDS (in place) to cover `record`, keeping the relevant
    /// levels. Returns the number of dimensions in which a value was added —
    /// 0 means the record was already covered.
    pub fn extend_to_cover_record(
        &mut self,
        schema: &CubeSchema,
        record: &Record,
    ) -> DcResult<usize> {
        let mut added = 0;
        for ((d, h), &leaf) in self.dims.iter_mut().zip(schema.dims()).zip(&record.dims) {
            let anc = h.ancestor_at(leaf, d.level())?;
            if d.insert(anc) {
                added += 1;
            }
        }
        Ok(added)
    }

    /// The volume enlargement caused by covering `record`: the volume of
    /// this MDS after extension minus before. Drives choose-subtree.
    pub fn enlargement_for_record(&self, schema: &CubeSchema, record: &Record) -> DcResult<u128> {
        let before = self.volume();
        let mut after = 1u128;
        for ((d, h), &leaf) in self.dims.iter().zip(schema.dims()).zip(&record.dims) {
            let anc = h.ancestor_at(leaf, d.level())?;
            let len = d.len() as u128 + u128::from(!d.contains_value(anc));
            after = after.saturating_mul(len);
        }
        Ok(after - before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_common::{DimensionId, ValueId};
    use dc_hierarchy::HierarchySchema;

    /// The paper's running example (§3.2): dimensions Customer, Supplier,
    /// Time with one measure.
    fn schema() -> CubeSchema {
        let mut s = CubeSchema::new(
            vec![
                HierarchySchema::new("Customer", vec!["Region".into(), "Nation".into()]),
                HierarchySchema::new("Supplier", vec!["Region".into(), "Nation".into()]),
                HierarchySchema::new("Time", vec!["Year".into(), "Month".into()]),
            ],
            "Price",
        );
        // Interning happens through records.
        for (c, sup, t) in [
            (
                ("Europe", "Germany"),
                ("North America", "USA"),
                ("1996", "01"),
            ),
            (
                ("Europe", "France"),
                ("North America", "USA"),
                ("1997", "02"),
            ),
            (
                ("Europe", "Netherlands"),
                ("North America", "Canada"),
                ("1996", "05"),
            ),
            (("Europe", "Switzerland"), ("Asia", "Japan"), ("1998", "07")),
        ] {
            s.intern_record(&[vec![c.0, c.1], vec![sup.0, sup.1], vec![t.0, t.1]], 100)
                .unwrap();
        }
        s
    }

    // In this schema Nation/Month are the leaves (level 0) and
    // Region/Year sit on level 1; ALL is level 2.
    fn nation(s: &CubeSchema, dim: u16, name: &str) -> ValueId {
        let h = s.dim(DimensionId(dim));
        h.values_at(0)
            .find(|&v| h.name(v).unwrap() == name)
            .unwrap()
    }

    fn region(s: &CubeSchema, dim: u16, name: &str) -> ValueId {
        let h = s.dim(DimensionId(dim));
        h.values_at(1)
            .find(|&v| h.name(v).unwrap() == name)
            .unwrap()
    }

    /// The paper's §3.2 example: records (Germany, North America, 1996) and
    /// (France, North America, 1997) yield the MDS
    /// ({Germany, France}, {North America}, {1996, 1997}) — and
    /// ({Europe}, {North America}, {1996, 1997}) when the first dimension's
    /// relevant level is raised by one.
    #[test]
    fn paper_example_mds_and_adaptation() {
        let s = schema();
        let m = Mds::new(vec![
            DimSet::new(0, vec![nation(&s, 0, "Germany"), nation(&s, 0, "France")]),
            DimSet::new(1, vec![region(&s, 1, "North America")]),
            DimSet::new(
                1,
                vec![
                    s.dim(DimensionId(2)).lookup_path(&["1996"]).unwrap(),
                    s.dim(DimensionId(2)).lookup_path(&["1997"]).unwrap(),
                ],
            ),
        ]);
        assert_eq!(m.size(), 5);
        assert_eq!(m.volume(), 4); // 2 × 1 × 2
        let raised = m.adapt_to_levels(&s, &[1, 1, 1]).unwrap();
        assert_eq!(raised.dim(0).len(), 1); // {Europe}
        assert_eq!(raised.dim(0).values()[0], region(&s, 0, "Europe"));
    }

    #[test]
    fn all_mds_has_volume_one_and_contains_everything() {
        let s = schema();
        let all = Mds::all(&s);
        assert_eq!(all.volume(), 1);
        assert_eq!(all.size(), 3);
        let m = Mds::new(vec![
            DimSet::new(0, vec![nation(&s, 0, "Germany")]),
            DimSet::new(0, vec![nation(&s, 1, "USA")]),
            DimSet::new(
                1,
                vec![s.dim(DimensionId(2)).lookup_path(&["1996"]).unwrap()],
            ),
        ]);
        assert!(m.contained_in(&all, &s).unwrap());
        assert!(!all.contained_in(&m, &s).unwrap());
        assert!(all.overlaps(&m, &s).unwrap());
    }

    #[test]
    fn overlap_and_extension_match_definition_4() {
        let s = schema();
        let (g, f, n) = (
            nation(&s, 0, "Germany"),
            nation(&s, 0, "France"),
            nation(&s, 0, "Netherlands"),
        );
        let usa = nation(&s, 1, "USA");
        let y96 = s.dim(DimensionId(2)).lookup_path(&["1996"]).unwrap();
        let y97 = s.dim(DimensionId(2)).lookup_path(&["1997"]).unwrap();
        let m = Mds::new(vec![
            DimSet::new(0, vec![g, f]),
            DimSet::new(0, vec![usa]),
            DimSet::new(1, vec![y96, y97]),
        ]);
        let nn = Mds::new(vec![
            DimSet::new(0, vec![f, n]),
            DimSet::new(0, vec![usa]),
            DimSet::new(1, vec![y96]),
        ]);
        assert_eq!(m.overlap(&nn), 1); // {F} × {USA} × {96}
        assert_eq!(m.extension(&nn), 3 * 2); // {G,F,N} × {USA} × {96,97}
        assert_eq!(m.volume(), 4);
        assert_eq!(nn.volume(), 2);
    }

    #[test]
    fn cover_contains_both_operands() {
        let s = schema();
        let m = Mds::new(vec![
            DimSet::new(0, vec![nation(&s, 0, "Germany")]),
            DimSet::new(1, vec![region(&s, 1, "North America")]),
            DimSet::new(
                1,
                vec![s.dim(DimensionId(2)).lookup_path(&["1996"]).unwrap()],
            ),
        ]);
        let n = Mds::new(vec![
            DimSet::new(1, vec![region(&s, 0, "Europe")]),
            DimSet::new(0, vec![nation(&s, 1, "Japan")]),
            DimSet::new(
                1,
                vec![s.dim(DimensionId(2)).lookup_path(&["1998"]).unwrap()],
            ),
        ]);
        let c = m.cover(&n, &s).unwrap();
        assert!(m.contained_in(&c, &s).unwrap());
        assert!(n.contained_in(&c, &s).unwrap());
        // Cover adapts to the coarser level per dimension.
        assert_eq!(c.dim(0).level(), 1);
        assert_eq!(c.dim(1).level(), 1);
        assert_eq!(c.dim(2).level(), 1);
    }

    #[test]
    fn record_containment_and_extension() {
        let mut s = schema();
        let r = s
            .intern_record(
                &[
                    vec!["Europe", "Germany"],
                    vec!["North America", "USA"],
                    vec!["1996", "01"],
                ],
                10,
            )
            .unwrap();
        let mut m = Mds::new(vec![
            DimSet::new(0, vec![nation(&s, 0, "France")]),
            DimSet::new(1, vec![region(&s, 1, "North America")]),
            DimSet::new(
                1,
                vec![s.dim(DimensionId(2)).lookup_path(&["1996"]).unwrap()],
            ),
        ]);
        assert!(!m.contains_record(&s, &r).unwrap());
        assert_eq!(m.enlargement_for_record(&s, &r).unwrap(), 1); // 2×1×1 − 1×1×1
        let added = m.extend_to_cover_record(&s, &r).unwrap();
        assert_eq!(added, 1);
        assert!(m.contains_record(&s, &r).unwrap());
        assert_eq!(m.extend_to_cover_record(&s, &r).unwrap(), 0);
    }

    #[test]
    fn adapted_pair_aligns_mixed_levels() {
        let s = schema();
        let fine = Mds::new(vec![
            DimSet::new(0, vec![nation(&s, 0, "Germany"), nation(&s, 0, "France")]),
            DimSet::new(0, vec![nation(&s, 1, "USA")]),
            DimSet::new(
                1,
                vec![s.dim(DimensionId(2)).lookup_path(&["1996"]).unwrap()],
            ),
        ]);
        let coarse = Mds::new(vec![
            DimSet::new(1, vec![region(&s, 0, "Europe")]),
            DimSet::new(0, vec![nation(&s, 1, "Canada")]),
            DimSet::new(2, vec![s.dim(DimensionId(2)).all()]),
        ]);
        let (a, b) = fine.adapted_pair(&coarse, &s).unwrap();
        assert_eq!(a.levels(), b.levels());
        assert_eq!(a.levels(), vec![1, 0, 2]);
        assert_eq!(a.overlap(&b), 0); // USA vs Canada disjoint in dim 1
    }

    #[test]
    fn point_mds_of_record() {
        let mut s = schema();
        let r = s
            .intern_record(
                &[
                    vec!["Europe", "Germany"],
                    vec!["North America", "USA"],
                    vec!["1996", "01"],
                ],
                10,
            )
            .unwrap();
        let p = Mds::from_record(&r);
        assert_eq!(p.volume(), 1);
        assert_eq!(p.levels(), vec![0, 0, 0]);
        assert!(p.contains_record(&s, &r).unwrap());
    }
}
