//! # dc-mds
//!
//! Minimum Describing Sequences — the region descriptor of the DC-tree
//! (§3.2, Definitions 3 and 4).
//!
//! Where an R-/X-tree approximates a set of records by a minimum bounding
//! rectangle over totally ordered axes, the DC-tree describes it by an MDS:
//! per dimension, an explicit *set* of attribute values, all located on one
//! "relevant level" of that dimension's concept hierarchy. Only values that
//! actually occur below the node are listed, so an MDS covers far less dead
//! space than an MBR (the paper's Fig. 3) at the price of variable size.
//!
//! This crate provides the MDS type and its complete algebra:
//!
//! * **size / volume** of a single MDS,
//! * **overlap / extension** of two MDSs (which require both operands to sit
//!   on the same hierarchy level per dimension — the *adaptation* rule),
//! * **containment** in the partial-order sense of Definition 4,
//! * **level adaptation** (promoting values to their ancestors on a higher
//!   level) and the **covering MDS** of two operands,
//! * record containment and coverage extension used by the insert path.

pub mod dimset;
pub mod mds;

pub use dimset::DimSet;
pub use mds::Mds;
