//! One dimension's component of an MDS: a level and a sorted value set.

use dc_common::{DcResult, Level, ValueId};
use dc_hierarchy::ConceptHierarchy;

/// The entry `M_i = (d_i, l_i)` of an MDS (Definition 3): a set of attribute
/// values `d_i ⊆ D_i` that all belong to the relevant level `l_i` of the
/// dimension's concept hierarchy.
///
/// Values are kept sorted and deduplicated, so set operations run in linear
/// time and the on-disk encoding is canonical.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct DimSet {
    level: Level,
    values: Vec<ValueId>,
}

impl DimSet {
    /// Builds a dimension set from arbitrary values.
    ///
    /// # Panics
    /// Panics (debug and release) if any value is not on `level` — mixing
    /// levels inside one dimension set breaks every operation of
    /// Definition 4 ("the union of American customers and North America
    /// makes no sense").
    pub fn new(level: Level, mut values: Vec<ValueId>) -> Self {
        assert!(
            values.iter().all(|v| v.level() == level),
            "all values of a DimSet must sit on the relevant level {level}"
        );
        values.sort_unstable();
        values.dedup();
        DimSet { level, values }
    }

    /// A singleton set.
    pub fn singleton(value: ValueId) -> Self {
        DimSet {
            level: value.level(),
            values: vec![value],
        }
    }

    /// The relevant level `l_i`.
    #[inline]
    pub fn level(&self) -> Level {
        self.level
    }

    /// The sorted attribute values `d_i`.
    #[inline]
    pub fn values(&self) -> &[ValueId] {
        &self.values
    }

    /// `|d_i|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` iff the set is empty (only transiently possible, e.g. the
    /// intersection of disjoint sets).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Membership test (binary search).
    #[inline]
    pub fn contains_value(&self, v: ValueId) -> bool {
        self.values.binary_search(&v).is_ok()
    }

    /// Inserts a value already on this set's level. Returns `true` if it was
    /// new.
    pub fn insert(&mut self, v: ValueId) -> bool {
        assert_eq!(
            v.level(),
            self.level,
            "inserted value must be on the relevant level"
        );
        match self.values.binary_search(&v) {
            Ok(_) => false,
            Err(pos) => {
                self.values.insert(pos, v);
                true
            }
        }
    }

    /// Adapts this set to a higher `level` of the hierarchy by replacing
    /// every value with its ancestor on `level` (the adaptation step of the
    /// split and range-query algorithms, Figs. 5 and 7).
    ///
    /// `level` must be ≥ the current level; adapting to the current level is
    /// a clone.
    pub fn adapt_to(&self, h: &ConceptHierarchy, level: Level) -> DcResult<DimSet> {
        if level == self.level {
            return Ok(self.clone());
        }
        let mut values = Vec::with_capacity(self.values.len());
        for &v in &self.values {
            values.push(h.ancestor_at(v, level)?);
        }
        values.sort_unstable();
        values.dedup();
        Ok(DimSet { level, values })
    }

    /// `|d_i ∩ e_i|` for two sets on the same level.
    pub fn intersection_len(&self, other: &DimSet) -> usize {
        debug_assert_eq!(
            self.level, other.level,
            "intersection requires equal levels"
        );
        sorted_intersection_len(&self.values, &other.values)
    }

    /// `|d_i ∪ e_i|` for two sets on the same level.
    pub fn union_len(&self, other: &DimSet) -> usize {
        debug_assert_eq!(self.level, other.level, "union requires equal levels");
        self.values.len() + other.values.len() - self.intersection_len(other)
    }

    /// Merges `other` (same level) into `self`.
    pub fn union_with(&mut self, other: &DimSet) {
        debug_assert_eq!(self.level, other.level, "union requires equal levels");
        let mut merged = Vec::with_capacity(self.values.len() + other.values.len());
        let (mut i, mut j) = (0, 0);
        while i < self.values.len() && j < other.values.len() {
            use std::cmp::Ordering::*;
            match self.values[i].cmp(&other.values[j]) {
                Less => {
                    merged.push(self.values[i]);
                    i += 1;
                }
                Greater => {
                    merged.push(other.values[j]);
                    j += 1;
                }
                Equal => {
                    merged.push(self.values[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&self.values[i..]);
        merged.extend_from_slice(&other.values[j..]);
        self.values = merged;
    }

    /// `d_i \ e_i` for two sets on the same level: the values of `self`
    /// absent from `other`. Linear merge over the sorted value vectors.
    pub fn difference(&self, other: &DimSet) -> DimSet {
        debug_assert_eq!(self.level, other.level, "difference requires equal levels");
        let mut values = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.values.len() {
            if j >= other.values.len() {
                values.extend_from_slice(&self.values[i..]);
                break;
            }
            use std::cmp::Ordering::*;
            match self.values[i].cmp(&other.values[j]) {
                Less => {
                    values.push(self.values[i]);
                    i += 1;
                }
                Greater => j += 1,
                Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        DimSet {
            level: self.level,
            values,
        }
    }

    /// Subset test for two sets on the same level.
    pub fn is_subset_of(&self, other: &DimSet) -> bool {
        debug_assert_eq!(self.level, other.level, "subset requires equal levels");
        self.intersection_len(other) == self.values.len()
    }

    /// `true` iff every value of `self` has an ancestor-or-equal in `other`
    /// (the per-dimension containment of Definition 4: *other* contains
    /// *self* in this dimension). Handles differing levels: if `other` sits
    /// below `self`, no value of `self` can be dominated and the result is
    /// `false`.
    pub fn dominated_by(&self, other: &DimSet, h: &ConceptHierarchy) -> DcResult<bool> {
        if other.level < self.level {
            return Ok(false);
        }
        for &v in &self.values {
            let anc = h.ancestor_at(v, other.level)?;
            if !other.contains_value(anc) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// `true` iff the two sets share at least one region of the hierarchy:
    /// the lower-level set is adapted up to the higher level, then the
    /// intersection is tested for non-emptiness (Fig. 7's comparability
    /// loop).
    pub fn overlaps(&self, other: &DimSet, h: &ConceptHierarchy) -> DcResult<bool> {
        let target = self.level.max(other.level);
        let a = self.adapt_to(h, target)?;
        let b = other.adapt_to(h, target)?;
        Ok(a.intersection_len(&b) > 0)
    }
}

fn sorted_intersection_len(a: &[ValueId], b: &[ValueId]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        use std::cmp::Ordering::*;
        match a[i].cmp(&b[j]) {
            Less => i += 1,
            Greater => j += 1,
            Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_common::DimensionId;
    use dc_hierarchy::HierarchySchema;

    fn hierarchy() -> ConceptHierarchy {
        let mut h = ConceptHierarchy::new(
            DimensionId(0),
            HierarchySchema::new(
                "Customer",
                vec!["Region".into(), "Nation".into(), "CustomerId".into()],
            ),
        );
        for (r, n, c) in [
            ("Europe", "Germany", "c0"),
            ("Europe", "Germany", "c1"),
            ("Europe", "France", "c2"),
            ("Asia", "Japan", "c3"),
            ("Asia", "Japan", "c4"),
            ("Asia", "China", "c5"),
        ] {
            h.intern_path(&[r, n, c]).unwrap();
        }
        h
    }

    fn leaf(h: &ConceptHierarchy, c: &str) -> ValueId {
        h.values_at(0).find(|&v| h.name(v).unwrap() == c).unwrap()
    }

    fn nation(h: &ConceptHierarchy, n: &str) -> ValueId {
        h.values_at(1).find(|&v| h.name(v).unwrap() == n).unwrap()
    }

    #[test]
    fn new_sorts_and_dedups() {
        let h = hierarchy();
        let c1 = leaf(&h, "c1");
        let c0 = leaf(&h, "c0");
        let s = DimSet::new(0, vec![c1, c0, c1]);
        assert_eq!(s.values(), &[c0, c1]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "relevant level")]
    fn mixed_levels_panic() {
        let h = hierarchy();
        let _ = DimSet::new(0, vec![leaf(&h, "c0"), nation(&h, "Germany")]);
    }

    #[test]
    fn adapt_to_promotes_and_dedups() {
        let h = hierarchy();
        let s = DimSet::new(0, vec![leaf(&h, "c0"), leaf(&h, "c1"), leaf(&h, "c2")]);
        let nations = s.adapt_to(&h, 1).unwrap();
        assert_eq!(nations.len(), 2); // Germany, France
        let regions = s.adapt_to(&h, 2).unwrap();
        assert_eq!(regions.len(), 1); // Europe
        let all = s.adapt_to(&h, 3).unwrap();
        assert_eq!(all.values(), &[h.all()]);
    }

    #[test]
    fn set_operations_on_same_level() {
        let h = hierarchy();
        let (c0, c1, c2) = (leaf(&h, "c0"), leaf(&h, "c1"), leaf(&h, "c2"));
        let a = DimSet::new(0, vec![c0, c1]);
        let b = DimSet::new(0, vec![c1, c2]);
        assert_eq!(a.intersection_len(&b), 1);
        assert_eq!(a.union_len(&b), 3);
        assert!(!a.is_subset_of(&b));
        assert!(DimSet::new(0, vec![c1]).is_subset_of(&a));
        let mut u = a;
        u.union_with(&b);
        assert_eq!(u.values(), &[c0, c1, c2]);
    }

    #[test]
    fn dominated_by_follows_partial_order() {
        let h = hierarchy();
        let leaves = DimSet::new(0, vec![leaf(&h, "c0"), leaf(&h, "c2")]);
        let nations = DimSet::new(1, vec![nation(&h, "Germany"), nation(&h, "France")]);
        // Every leaf is under one of the nations.
        assert!(leaves.dominated_by(&nations, &h).unwrap());
        // Nations are not dominated by leaf-level sets (coarser side).
        assert!(!nations.dominated_by(&leaves, &h).unwrap());
        // A leaf outside the nations is not dominated.
        let outsider = DimSet::new(0, vec![leaf(&h, "c3")]);
        assert!(!outsider.dominated_by(&nations, &h).unwrap());
        // Same-level domination degenerates to subset.
        let g = DimSet::new(1, vec![nation(&h, "Germany")]);
        assert!(g.dominated_by(&nations, &h).unwrap());
    }

    #[test]
    fn overlaps_adapts_lower_to_higher() {
        let h = hierarchy();
        let leaves = DimSet::new(0, vec![leaf(&h, "c3")]); // Japan
        let germany = DimSet::new(1, vec![nation(&h, "Germany")]);
        let japan = DimSet::new(1, vec![nation(&h, "Japan")]);
        assert!(!leaves.overlaps(&germany, &h).unwrap());
        assert!(leaves.overlaps(&japan, &h).unwrap());
        // Symmetric.
        assert!(japan.overlaps(&leaves, &h).unwrap());
    }

    #[test]
    fn difference_is_sorted_complement() {
        let h = hierarchy();
        let (c0, c1, c2) = (leaf(&h, "c0"), leaf(&h, "c1"), leaf(&h, "c2"));
        let a = DimSet::new(0, vec![c0, c1, c2]);
        let b = DimSet::new(0, vec![c1]);
        assert_eq!(a.difference(&b).values(), &[c0, c2]);
        assert!(b.difference(&a).is_empty());
        assert_eq!(a.difference(&a).len(), 0);
        let empty = a.difference(&a);
        assert_eq!(a.difference(&empty).values(), a.values());
    }

    #[test]
    fn insert_keeps_order() {
        let h = hierarchy();
        let mut s = DimSet::new(0, vec![leaf(&h, "c2")]);
        assert!(s.insert(leaf(&h, "c0")));
        assert!(!s.insert(leaf(&h, "c0")));
        assert_eq!(s.values(), &[leaf(&h, "c0"), leaf(&h, "c2")]);
    }
}
