//! Property-based tests of the MDS algebra (Definitions 3–4): the laws the
//! split and query algorithms silently rely on.

use dc_common::{Level, ValueId};
use dc_hierarchy::{CubeSchema, HierarchySchema, Record};
use dc_mds::{DimSet, Mds};
use proptest::prelude::*;

/// A fixed schema with two 3-level dimensions, populated deterministically
/// so strategies can index into it.
fn schema() -> CubeSchema {
    let mut s = CubeSchema::new(
        vec![
            HierarchySchema::new("X", vec!["A".into(), "B".into(), "C".into()]),
            HierarchySchema::new("Y", vec!["P".into(), "Q".into()]),
        ],
        "m",
    );
    for a in 0..4 {
        for b in 0..3 {
            for c in 0..3 {
                s.intern_record(
                    &[
                        vec![
                            format!("a{a}"),
                            format!("a{a}b{b}"),
                            format!("a{a}b{b}c{c}"),
                        ],
                        vec![
                            format!("p{}", (a + b) % 3),
                            format!("p{}q{}", (a + b) % 3, c),
                        ],
                    ],
                    0,
                )
                .unwrap();
            }
        }
    }
    s
}

/// Strategy: a random MDS over the fixed schema — random level and a random
/// non-empty subset of that level's values, per dimension.
fn mds(schema: &CubeSchema) -> impl Strategy<Value = Mds> {
    let per_dim: Vec<_> = schema
        .dims()
        .map(|h| {
            let top = h.top_level();
            (0..=top as usize).prop_flat_map(move |level| {
                let level = level as Level;
                (Just(level), prop::collection::btree_set(0u32..64, 1..6))
            })
        })
        .collect();
    let counts: Vec<Vec<usize>> = schema
        .dims()
        .map(|h| (0..=h.top_level()).map(|l| h.num_values_at(l)).collect())
        .collect();
    per_dim.prop_map(move |dims| {
        Mds::new(
            dims.into_iter()
                .enumerate()
                .map(|(d, (level, picks))| {
                    let count = counts[d][level as usize] as u32;
                    let values: Vec<ValueId> = picks
                        .into_iter()
                        .map(|p| ValueId::new(level, p % count))
                        .collect();
                    DimSet::new(level, values)
                })
                .collect(),
        )
    })
}

/// Strategy: a random record of the fixed schema.
fn record(schema: &CubeSchema) -> impl Strategy<Value = Record> {
    let leaf_counts: Vec<u32> = schema.dims().map(|h| h.num_values_at(0) as u32).collect();
    (0u32..1024, 0u32..1024).prop_map(move |(x, y)| {
        Record::new(
            vec![
                ValueId::new(0, x % leaf_counts[0]),
                ValueId::new(0, y % leaf_counts[1]),
            ],
            1,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The covering MDS contains both operands.
    #[test]
    fn cover_contains_operands(a in mds(&schema()), b in mds(&schema())) {
        let s = schema();
        let c = a.cover(&b, &s).unwrap();
        prop_assert!(a.contained_in(&c, &s).unwrap());
        prop_assert!(b.contained_in(&c, &s).unwrap());
    }

    /// overlap(M, N) ≤ min(volume(M'), volume(N')) after adaptation, and
    /// overlap ≤ extension.
    #[test]
    fn overlap_bounds(a in mds(&schema()), b in mds(&schema())) {
        let s = schema();
        let (x, y) = a.adapted_pair(&b, &s).unwrap();
        let o = x.overlap(&y);
        prop_assert!(o <= x.volume());
        prop_assert!(o <= y.volume());
        prop_assert!(o <= x.extension(&y));
    }

    /// Definition 4 symmetry: overlap and extension are commutative.
    #[test]
    fn overlap_extension_commute(a in mds(&schema()), b in mds(&schema())) {
        let s = schema();
        let (x, y) = a.adapted_pair(&b, &s).unwrap();
        prop_assert_eq!(x.overlap(&y), y.overlap(&x));
        prop_assert_eq!(x.extension(&y), y.extension(&x));
    }

    /// Containment is a partial order: reflexive; antisymmetric up to
    /// adaptation; transitive.
    #[test]
    fn containment_partial_order(
        a in mds(&schema()),
        b in mds(&schema()),
        c in mds(&schema()),
    ) {
        let s = schema();
        prop_assert!(a.contained_in(&a, &s).unwrap());
        if a.contained_in(&b, &s).unwrap() && b.contained_in(&c, &s).unwrap() {
            prop_assert!(a.contained_in(&c, &s).unwrap());
        }
    }

    /// Containment implies overlap (a contained MDS shares every cell).
    #[test]
    fn containment_implies_overlap(a in mds(&schema()), b in mds(&schema())) {
        let s = schema();
        if a.contained_in(&b, &s).unwrap() {
            prop_assert!(a.overlaps(&b, &s).unwrap());
        }
    }

    /// Adaptation to a higher level preserves containment and never grows
    /// the per-dimension set.
    #[test]
    fn adaptation_monotone(a in mds(&schema())) {
        let s = schema();
        let tops: Vec<u8> = s.dims().map(|h| h.top_level()).collect();
        let raised = a.adapt_to_levels(&s, &tops).unwrap();
        prop_assert!(a.contained_in(&raised, &s).unwrap());
        for (orig, up) in a.dims().zip(raised.dims()) {
            prop_assert!(up.len() <= orig.len());
        }
    }

    /// Record containment agrees between an MDS and its cover with anything.
    #[test]
    fn record_containment_respects_cover(
        a in mds(&schema()),
        b in mds(&schema()),
        r in record(&schema()),
    ) {
        let s = schema();
        if a.contains_record(&s, &r).unwrap() {
            let c = a.cover(&b, &s).unwrap();
            prop_assert!(c.contains_record(&s, &r).unwrap());
        }
    }

    /// `extend_to_cover_record` establishes `contains_record` and its
    /// reported enlargement matches `enlargement_for_record`.
    #[test]
    fn extension_establishes_containment(a in mds(&schema()), r in record(&schema())) {
        let s = schema();
        let predicted = a.enlargement_for_record(&s, &r).unwrap();
        let before = a.volume();
        let mut grown = a.clone();
        grown.extend_to_cover_record(&s, &r).unwrap();
        prop_assert!(grown.contains_record(&s, &r).unwrap());
        prop_assert_eq!(grown.volume() - before, predicted);
        // Growing is monotone: the original is contained in the grown MDS.
        prop_assert!(a.contained_in(&grown, &s).unwrap());
    }

    /// union_aligned is idempotent, commutative and associative on aligned
    /// operands (after adaptation).
    #[test]
    fn union_lattice_laws(a in mds(&schema()), b in mds(&schema()), c in mds(&schema())) {
        let s = schema();
        let (x, y) = a.adapted_pair(&b, &s).unwrap();
        prop_assert_eq!(x.union_aligned(&x), x.clone());
        prop_assert_eq!(x.union_aligned(&y), y.union_aligned(&x));
        let levels = x.levels();
        let z = c.adapt_to_levels(&s, &levels);
        if let Ok(z) = z {
            prop_assert_eq!(
                x.union_aligned(&y).union_aligned(&z),
                x.union_aligned(&y.union_aligned(&z))
            );
        }
    }
}
