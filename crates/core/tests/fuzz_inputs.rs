//! Fuzz-style robustness: arbitrary and mutated byte inputs must never
//! panic any decoder — they either parse to a valid structure or fail with
//! a clean error.

use dc_hierarchy::{CubeSchema, HierarchySchema};
use dc_tree::{DcTree, DcTreeConfig};
use proptest::prelude::*;

fn small_tree() -> DcTree {
    let schema = CubeSchema::new(
        vec![
            HierarchySchema::new("D0", vec!["A".into(), "B".into()]),
            HierarchySchema::new("D1", vec!["Y".into(), "M".into()]),
        ],
        "m",
    );
    let mut tree = DcTree::new(
        schema,
        DcTreeConfig {
            dir_capacity: 3,
            data_capacity: 3,
            ..DcTreeConfig::default()
        },
    );
    for i in 0..40 {
        tree.insert_raw(
            &[
                vec![format!("a{}", i % 3), format!("a{}b{}", i % 3, i % 5)],
                vec![format!("y{}", i % 2), format!("y{}m{}", i % 2, i % 4)],
            ],
            i,
        )
        .unwrap();
    }
    tree
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes fed to the tree loader: never a panic.
    #[test]
    fn from_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = DcTree::from_bytes(&bytes);
    }

    /// A valid image with arbitrary byte-range mutations: never a panic,
    /// and on success the structure passes its own invariant check (which
    /// `from_bytes` runs internally).
    #[test]
    fn mutated_image_never_panics(
        offset_frac in 0.0f64..1.0,
        len in 1usize..64,
        xor in 1u8..=255,
    ) {
        let mut corrupt = small_tree().to_bytes();
        let start = ((corrupt.len() - 1) as f64 * offset_frac) as usize;
        let end = (start + len).min(corrupt.len());
        for b in &mut corrupt[start..end] {
            *b ^= xor;
        }
        if let Ok(tree) = DcTree::from_bytes(&corrupt) {
            // Accepted images must be fully coherent.
            tree.check_invariants().unwrap();
        }
    }

    /// Truncations at every length: never a panic.
    #[test]
    fn truncated_image_never_panics(cut_frac in 0.0f64..1.0) {
        let image = small_tree().to_bytes();
        let cut = ((image.len() - 1) as f64 * cut_frac) as usize;
        let _ = DcTree::from_bytes(&image[..cut]);
    }
}
