//! Differential tests: the disk-resident DC-tree must answer exactly like
//! the in-memory tree on identical workloads, survive close/reopen cycles,
//! and exercise the buffer pool for real.

use dc_common::{AggregateOp, DimensionId, MeasureSummary, ValueId};
use dc_hierarchy::{CubeSchema, HierarchySchema, Record};
use dc_mds::{DimSet, Mds};
use dc_tree::disk::DiskDcTree;
use dc_tree::{DcTree, DcTreeConfig};
use rand::prelude::*;
use rand::rngs::StdRng;

fn schema() -> CubeSchema {
    CubeSchema::new(
        vec![
            HierarchySchema::new(
                "Customer",
                vec!["Region".into(), "Nation".into(), "Cust".into()],
            ),
            HierarchySchema::new("Part", vec!["Type".into(), "Part".into()]),
            HierarchySchema::new("Time", vec!["Year".into(), "Month".into()]),
        ],
        "Price",
    )
}

fn random_paths(rng: &mut StdRng) -> [Vec<String>; 3] {
    let region = rng.gen_range(0..4);
    let nation = rng.gen_range(0..5);
    let cust = rng.gen_range(0..8);
    let ptype = rng.gen_range(0..6);
    let part = rng.gen_range(0..10);
    let year = rng.gen_range(1995..1999);
    let month = rng.gen_range(1..13);
    [
        vec![
            format!("R{region}"),
            format!("R{region}-N{nation}"),
            format!("R{region}-N{nation}-C{cust}"),
        ],
        vec![format!("T{ptype}"), format!("T{ptype}-P{part}")],
        vec![format!("{year}"), format!("{year}-{month:02}")],
    ]
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("dc-disk-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(format!("{name}-{}", std::process::id()));
    std::fs::remove_file(&p).ok();
    p
}

fn random_query(schema: &CubeSchema, rng: &mut StdRng) -> Mds {
    let dims = (0..schema.num_dims())
        .map(|d| {
            let h = schema.dim(DimensionId(d as u16));
            let level = rng.gen_range(0..=h.top_level());
            let values: Vec<ValueId> = h.values_at(level).collect();
            let take = rng.gen_range(1..=values.len().min(4));
            DimSet::new(level, values.choose_multiple(rng, take).copied().collect())
        })
        .collect();
    Mds::new(dims)
}

#[test]
fn disk_tree_matches_in_memory_tree() {
    let path = tmp("differential");
    let config = DcTreeConfig {
        dir_capacity: 4,
        data_capacity: 4,
        ..DcTreeConfig::default()
    };
    let mut mem = DcTree::new(schema(), config);
    let mut disk = DiskDcTree::create(&path, schema(), config, 16).unwrap();

    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..400 {
        let paths = random_paths(&mut rng);
        let measure = rng.gen_range(-100..1000);
        mem.insert_raw(&paths, measure).unwrap();
        disk.insert_raw(&paths, measure).unwrap();
    }
    assert_eq!(disk.len(), mem.len());
    assert_eq!(disk.total_summary().unwrap(), mem.total_summary());
    assert_eq!(disk.height().unwrap(), mem.height());

    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..80 {
        let q = random_query(mem.schema(), &mut rng);
        assert_eq!(
            disk.range_summary(&q).unwrap(),
            mem.range_summary(&q).unwrap(),
            "query {q:?}"
        );
        for op in AggregateOp::ALL {
            assert_eq!(
                disk.range_query(&q, op).unwrap(),
                mem.range_query(&q, op).unwrap()
            );
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn disk_tree_survives_reopen() {
    let path = tmp("reopen");
    let config = DcTreeConfig {
        dir_capacity: 4,
        data_capacity: 4,
        ..DcTreeConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(3);
    let mut inserted: Vec<([Vec<String>; 3], i64)> = Vec::new();
    {
        let mut disk = DiskDcTree::create(&path, schema(), config, 16).unwrap();
        for _ in 0..200 {
            let paths = random_paths(&mut rng);
            let measure = rng.gen_range(0..1000);
            disk.insert_raw(&paths, measure).unwrap();
            inserted.push((paths, measure));
        }
        disk.flush().unwrap();
    }
    let mut disk = DiskDcTree::open(&path, config, 16).unwrap();
    assert_eq!(disk.len(), 200);
    let expected: MeasureSummary = inserted.iter().map(|(_, m)| *m).collect();
    assert_eq!(disk.total_summary().unwrap(), expected);
    // Still fully dynamic after reopen (including schema growth).
    disk.insert_raw(
        &[
            vec!["R9", "R9-N9", "R9-N9-C9"],
            vec!["T9", "T9-P9"],
            vec!["2001", "2001-01"],
        ],
        123,
    )
    .unwrap();
    disk.flush().unwrap();
    let disk = DiskDcTree::open(&path, config, 16).unwrap();
    assert_eq!(disk.len(), 201);
    std::fs::remove_file(&path).ok();
}

#[test]
fn disk_tree_deletes_like_memory_tree() {
    let path = tmp("deletes");
    let config = DcTreeConfig {
        dir_capacity: 4,
        data_capacity: 4,
        ..DcTreeConfig::default()
    };
    let mut mem = DcTree::new(schema(), config);
    let mut disk = DiskDcTree::create(&path, schema(), config, 16).unwrap();

    let mut rng = StdRng::seed_from_u64(5);
    let mut records: Vec<Record> = Vec::new();
    for _ in 0..200 {
        let paths = random_paths(&mut rng);
        let measure = rng.gen_range(0..500);
        mem.insert_raw(&paths, measure).unwrap();
        disk.insert_raw(&paths, measure).unwrap();
        let dims: Vec<ValueId> = (0..3)
            .map(|d| {
                mem.schema()
                    .dim(DimensionId(d as u16))
                    .lookup_path(&paths[d])
                    .unwrap()
            })
            .collect();
        records.push(Record::new(dims, measure));
    }
    for _ in 0..120 {
        let idx = rng.gen_range(0..records.len());
        let victim = records.swap_remove(idx);
        assert_eq!(
            disk.delete(&victim).unwrap(),
            mem.delete(&victim).unwrap(),
            "delete outcome must agree"
        );
    }
    assert_eq!(disk.len(), mem.len());
    mem.check_invariants().unwrap();
    let mut rng = StdRng::seed_from_u64(6);
    for _ in 0..40 {
        let q = random_query(mem.schema(), &mut rng);
        assert_eq!(
            disk.range_summary(&q).unwrap(),
            mem.range_summary(&q).unwrap()
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn buffer_pool_pressure_still_answers_correctly() {
    // A tiny pool (4 frames) forces constant eviction and reload.
    let path = tmp("pressure");
    let config = DcTreeConfig {
        dir_capacity: 4,
        data_capacity: 4,
        ..DcTreeConfig::default()
    };
    let mut mem = DcTree::new(schema(), config);
    let mut disk = DiskDcTree::create(&path, schema(), config, 4).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..300 {
        let paths = random_paths(&mut rng);
        let m = rng.gen_range(0..100);
        mem.insert_raw(&paths, m).unwrap();
        disk.insert_raw(&paths, m).unwrap();
    }
    let stats = disk.pool_stats();
    assert!(stats.evictions > 0, "4 frames must thrash: {stats:?}");
    assert!(stats.writebacks > 0, "dirty nodes must be written back");
    let mut rng = StdRng::seed_from_u64(8);
    for _ in 0..30 {
        let q = random_query(mem.schema(), &mut rng);
        assert_eq!(
            disk.range_summary(&q).unwrap(),
            mem.range_summary(&q).unwrap()
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn opening_garbage_fails_cleanly() {
    let path = tmp("garbage");
    std::fs::write(&path, vec![0u8; 8192]).unwrap();
    assert!(DiskDcTree::open(&path, DcTreeConfig::default(), 8).is_err());
    std::fs::remove_file(&path).ok();
}
