//! Behavioural tests of the DC-tree: correctness against a brute-force
//! oracle, structural invariants after every mutation batch, supernode
//! dynamics, and the fully dynamic insert/delete cycle.

use dc_common::{AggregateOp, DimensionId, MeasureSummary, ValueId};
use dc_hierarchy::{CubeSchema, HierarchySchema, Record};
use dc_mds::{DimSet, Mds};
use dc_tree::{DcTree, DcTreeConfig};
use rand::prelude::*;
use rand::rngs::StdRng;

/// A small 3-dimensional cube: Customer (Region→Nation→Cust),
/// Part (Type→Part), Time (Year→Month).
fn schema() -> CubeSchema {
    CubeSchema::new(
        vec![
            HierarchySchema::new(
                "Customer",
                vec!["Region".into(), "Nation".into(), "Cust".into()],
            ),
            HierarchySchema::new("Part", vec!["Type".into(), "Part".into()]),
            HierarchySchema::new("Time", vec!["Year".into(), "Month".into()]),
        ],
        "Price",
    )
}

/// Deterministic random raw record paths.
fn random_paths(rng: &mut StdRng) -> [Vec<String>; 3] {
    let region = rng.gen_range(0..4);
    let nation = rng.gen_range(0..5);
    let cust = rng.gen_range(0..8);
    let ptype = rng.gen_range(0..6);
    let part = rng.gen_range(0..10);
    let year = rng.gen_range(1995..1999);
    let month = rng.gen_range(1..13);
    [
        vec![
            format!("R{region}"),
            format!("R{region}-N{nation}"),
            format!("R{region}-N{nation}-C{cust}"),
        ],
        vec![format!("T{ptype}"), format!("T{ptype}-P{part}")],
        vec![format!("{year}"), format!("{year}-{month:02}")],
    ]
}

/// Builds a tree plus a mirrored flat record list (the oracle).
fn build(n: usize, seed: u64, config: DcTreeConfig) -> (DcTree, Vec<Record>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tree = DcTree::new(schema(), config);
    let mut oracle = Vec::with_capacity(n);
    for _ in 0..n {
        let paths = random_paths(&mut rng);
        let measure = rng.gen_range(-500..=5000);
        tree.insert_raw(&paths, measure).unwrap();
        // Mirror through an identical interning sequence on the tree's
        // schema (idempotent, so re-interning is safe).
        let record = {
            let dims: Vec<ValueId> = (0..3)
                .map(|d| {
                    tree.schema()
                        .dim(DimensionId(d as u16))
                        .lookup_path(&paths[d])
                        .expect("interned by insert_raw")
                })
                .collect();
            Record::new(dims, measure)
        };
        oracle.push(record);
    }
    (tree, oracle)
}

/// A random query MDS: per dimension pick a level, then a random subset of
/// the values on that level (mirrors the paper's §5.2 generator in spirit).
fn random_query(schema: &CubeSchema, rng: &mut StdRng) -> Mds {
    let dims = (0..schema.num_dims())
        .map(|d| {
            let h = schema.dim(DimensionId(d as u16));
            let level = rng.gen_range(0..=h.top_level());
            let values: Vec<ValueId> = h.values_at(level).collect();
            let take = rng.gen_range(1..=values.len().min(4));
            let chosen: Vec<ValueId> = values.choose_multiple(rng, take).copied().collect();
            DimSet::new(level, chosen)
        })
        .collect();
    Mds::new(dims)
}

/// Oracle evaluation of a range query over the flat record list.
fn oracle_summary(schema: &CubeSchema, records: &[Record], q: &Mds) -> MeasureSummary {
    records
        .iter()
        .filter(|r| q.contains_record(schema, r).unwrap())
        .map(|r| r.measure)
        .collect()
}

#[test]
fn empty_tree_answers_empty() {
    let tree = DcTree::new(schema(), DcTreeConfig::default());
    assert!(tree.is_empty());
    assert_eq!(tree.total_summary(), MeasureSummary::empty());
    let q = Mds::all(tree.schema());
    assert_eq!(tree.range_summary(&q).unwrap(), MeasureSummary::empty());
    assert_eq!(tree.range_query(&q, AggregateOp::Sum).unwrap(), Some(0.0));
    assert_eq!(tree.range_query(&q, AggregateOp::Min).unwrap(), None);
    tree.check_invariants().unwrap();
}

#[test]
fn single_record_roundtrip() {
    let mut tree = DcTree::new(schema(), DcTreeConfig::default());
    tree.insert_raw(
        &[
            vec!["R0", "R0-N0", "R0-N0-C0"],
            vec!["T0", "T0-P0"],
            vec!["1996", "1996-01"],
        ],
        1234,
    )
    .unwrap();
    assert_eq!(tree.len(), 1);
    let all = Mds::all(tree.schema());
    assert_eq!(
        tree.range_query(&all, AggregateOp::Sum).unwrap(),
        Some(1234.0)
    );
    assert_eq!(
        tree.range_query(&all, AggregateOp::Count).unwrap(),
        Some(1.0)
    );
    tree.check_invariants().unwrap();
}

#[test]
fn inserts_grow_and_stay_consistent() {
    // Small capacities force plenty of splits.
    let config = DcTreeConfig {
        dir_capacity: 4,
        data_capacity: 4,
        ..DcTreeConfig::default()
    };
    let (tree, oracle) = build(500, 42, config);
    assert_eq!(tree.len(), 500);
    tree.check_invariants().unwrap();
    assert!(
        tree.height() >= 3,
        "500 records at capacity 4 must grow, got {}",
        tree.height()
    );
    // Root summary is the total.
    let expected: MeasureSummary = oracle.iter().map(|r| r.measure).collect();
    assert_eq!(tree.total_summary(), expected);
}

#[test]
fn range_queries_match_brute_force() {
    let config = DcTreeConfig {
        dir_capacity: 6,
        data_capacity: 8,
        ..DcTreeConfig::default()
    };
    let (tree, oracle) = build(800, 7, config);
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..200 {
        let q = random_query(tree.schema(), &mut rng);
        let got = tree.range_summary(&q).unwrap();
        let want = oracle_summary(tree.schema(), &oracle, &q);
        assert_eq!(got, want, "query {q:?}");
    }
}

#[test]
fn all_aggregation_operators_agree_with_oracle() {
    let config = DcTreeConfig {
        dir_capacity: 6,
        data_capacity: 8,
        ..DcTreeConfig::default()
    };
    let (tree, oracle) = build(300, 13, config);
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..50 {
        let q = random_query(tree.schema(), &mut rng);
        let want = oracle_summary(tree.schema(), &oracle, &q);
        for op in AggregateOp::ALL {
            let got = tree.range_query(&q, op).unwrap();
            assert_eq!(got, want.eval(op), "{op} over {q:?}");
        }
    }
}

#[test]
fn materialization_ablation_gives_identical_answers() {
    let base = DcTreeConfig {
        dir_capacity: 6,
        data_capacity: 8,
        ..DcTreeConfig::default()
    };
    let no_mat = DcTreeConfig {
        use_materialized_aggregates: false,
        ..base
    };
    let (tree_mat, _) = build(400, 21, base);
    let (tree_raw, _) = build(400, 21, no_mat);
    let mut rng = StdRng::seed_from_u64(22);
    let mut io_mat = 0u64;
    let mut io_raw = 0u64;
    for _ in 0..60 {
        let q = random_query(tree_mat.schema(), &mut rng);
        tree_mat.reset_io();
        tree_raw.reset_io();
        let a = tree_mat.range_summary(&q).unwrap();
        let b = tree_raw.range_summary(&q).unwrap();
        assert_eq!(a, b);
        io_mat += tree_mat.io_stats().reads;
        io_raw += tree_raw.io_stats().reads;
    }
    assert!(
        io_mat < io_raw,
        "materialized aggregates must save page reads ({io_mat} vs {io_raw})"
    );
}

#[test]
fn coarse_queries_do_not_touch_data_pages() {
    // A query covering everything must be answered from the root's entries.
    let config = DcTreeConfig {
        dir_capacity: 6,
        data_capacity: 8,
        ..DcTreeConfig::default()
    };
    let (tree, oracle) = build(400, 3, config);
    tree.reset_io();
    let q = Mds::all(tree.schema());
    let got = tree.range_summary(&q).unwrap();
    let want: MeasureSummary = oracle.iter().map(|r| r.measure).collect();
    assert_eq!(got, want);
    // Only the root itself is read (it may span several blocks if it grew
    // into a supernode).
    let root_blocks = tree.stats().levels[0].avg_blocks as u64;
    assert_eq!(tree.io_stats().reads, root_blocks);
}

#[test]
fn supernodes_appear_under_duplicate_heavy_load() {
    // Insert many records with identical leaf values: the data node cannot
    // be split (all member MDSs equal) and must become a supernode.
    let config = DcTreeConfig {
        dir_capacity: 4,
        data_capacity: 4,
        ..DcTreeConfig::default()
    };
    let mut tree = DcTree::new(schema(), config);
    for i in 0..32 {
        tree.insert_raw(
            &[
                vec!["R0", "R0-N0", "R0-N0-C0"],
                vec!["T0", "T0-P0"],
                vec!["1996", "1996-01"],
            ],
            i,
        )
        .unwrap();
    }
    tree.check_invariants().unwrap();
    let stats = tree.stats();
    assert!(
        stats.supernodes > 0,
        "identical records must force supernodes: {stats:?}"
    );
    let all = Mds::all(tree.schema());
    assert_eq!(
        tree.range_query(&all, AggregateOp::Sum).unwrap(),
        Some((0..32).sum::<i64>() as f64)
    );
}

#[test]
fn forced_splits_when_supernodes_disabled() {
    let config = DcTreeConfig {
        dir_capacity: 4,
        data_capacity: 4,
        allow_supernodes: false,
        ..DcTreeConfig::default()
    };
    let (tree, oracle) = build(300, 17, config);
    let stats = tree.stats();
    assert_eq!(stats.supernodes, 0, "supernodes were disabled");
    // Queries still correct even with forced (possibly overlapping) splits.
    let mut rng = StdRng::seed_from_u64(18);
    for _ in 0..40 {
        let q = random_query(tree.schema(), &mut rng);
        assert_eq!(
            tree.range_summary(&q).unwrap(),
            oracle_summary(tree.schema(), &oracle, &q)
        );
    }
}

#[test]
fn delete_removes_exactly_one_match() {
    let config = DcTreeConfig {
        dir_capacity: 4,
        data_capacity: 4,
        ..DcTreeConfig::default()
    };
    let (mut tree, mut oracle) = build(250, 31, config);
    let mut rng = StdRng::seed_from_u64(32);
    for _ in 0..150 {
        let victim_idx = rng.gen_range(0..oracle.len());
        let victim = oracle[victim_idx].clone();
        assert!(
            tree.delete(&victim).unwrap(),
            "stored record must be deletable"
        );
        oracle.swap_remove(victim_idx);
        assert_eq!(tree.len() as usize, oracle.len());
    }
    tree.check_invariants().unwrap();
    // Remaining contents still answer queries correctly.
    for _ in 0..60 {
        let q = random_query(tree.schema(), &mut rng);
        assert_eq!(
            tree.range_summary(&q).unwrap(),
            oracle_summary(tree.schema(), &oracle, &q)
        );
    }
}

#[test]
fn delete_missing_record_returns_false() {
    let (mut tree, oracle) = build(50, 8, DcTreeConfig::default());
    let mut ghost = oracle[0].clone();
    ghost.measure += 999_999; // same dims, different measure → no match
    assert!(!tree.delete(&ghost).unwrap());
    assert_eq!(tree.len(), 50);
    tree.check_invariants().unwrap();
}

#[test]
fn delete_everything_returns_to_empty() {
    let config = DcTreeConfig {
        dir_capacity: 4,
        data_capacity: 4,
        ..DcTreeConfig::default()
    };
    let (mut tree, oracle) = build(120, 55, config);
    for r in &oracle {
        assert!(tree.delete(r).unwrap());
    }
    assert!(tree.is_empty());
    assert_eq!(tree.total_summary(), MeasureSummary::empty());
    tree.check_invariants().unwrap();
    // And the tree is still usable afterwards.
    tree.insert_raw(
        &[
            vec!["R1", "R1-N1", "R1-N1-C1"],
            vec!["T1", "T1-P1"],
            vec!["1997", "1997-05"],
        ],
        77,
    )
    .unwrap();
    assert_eq!(tree.len(), 1);
    tree.check_invariants().unwrap();
}

#[test]
fn interleaved_inserts_and_deletes_stay_consistent() {
    let config = DcTreeConfig {
        dir_capacity: 5,
        data_capacity: 6,
        ..DcTreeConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(77);
    let mut tree = DcTree::new(schema(), config);
    let mut oracle: Vec<Record> = Vec::new();
    for step in 0..600 {
        if oracle.is_empty() || rng.gen_bool(0.65) {
            let paths = random_paths(&mut rng);
            let measure = rng.gen_range(0..1000);
            tree.insert_raw(&paths, measure).unwrap();
            let dims: Vec<ValueId> = (0..3)
                .map(|d| {
                    tree.schema()
                        .dim(DimensionId(d as u16))
                        .lookup_path(&paths[d])
                        .unwrap()
                })
                .collect();
            oracle.push(Record::new(dims, measure));
        } else {
            let idx = rng.gen_range(0..oracle.len());
            let victim = oracle.swap_remove(idx);
            assert!(tree.delete(&victim).unwrap(), "step {step}");
        }
        if step % 97 == 0 {
            tree.check_invariants().unwrap();
        }
    }
    tree.check_invariants().unwrap();
    assert_eq!(tree.len() as usize, oracle.len());
    let q = Mds::all(tree.schema());
    let want: MeasureSummary = oracle.iter().map(|r| r.measure).collect();
    assert_eq!(tree.range_summary(&q).unwrap(), want);
}

#[test]
fn stats_reflect_structure() {
    let config = DcTreeConfig {
        dir_capacity: 4,
        data_capacity: 4,
        ..DcTreeConfig::default()
    };
    let (tree, _) = build(400, 11, config);
    let stats = tree.stats();
    assert_eq!(stats.height, tree.height());
    assert_eq!(stats.records, 400);
    assert_eq!(stats.levels.len(), stats.height);
    assert_eq!(stats.levels[0].nodes, 1, "exactly one root");
    assert_eq!(stats.dir_nodes + stats.data_nodes, tree.num_nodes());
    // Level-0 average entries equals the root's entry count.
    let root_entries = stats.levels[0].avg_entries;
    assert!(root_entries >= 2.0, "a split root has at least two entries");
    // Deeper levels host more nodes.
    for w in stats.levels.windows(2) {
        assert!(w[1].nodes >= w[0].nodes);
    }
}

#[test]
fn io_counters_track_reads_and_writes() {
    let (mut tree, _) = build(100, 23, DcTreeConfig::default());
    let after_build = tree.io_stats();
    assert!(after_build.reads > 0 && after_build.writes > 0);
    tree.reset_io();
    let q = Mds::all(tree.schema());
    let _ = tree.range_summary(&q).unwrap();
    let io = tree.io_stats();
    assert!(io.reads >= 1);
    assert_eq!(io.writes, 0, "queries never write");
    tree.reset_io();
    tree.insert_raw(
        &[
            vec!["R0", "R0-N0", "R0-N0-C7"],
            vec!["T5", "T5-P9"],
            vec!["1998", "1998-12"],
        ],
        1,
    )
    .unwrap();
    let io = tree.io_stats();
    assert!(io.writes >= 1, "inserts write the touched path");
}

#[test]
fn duplicate_records_are_individually_deletable() {
    let mut tree = DcTree::new(schema(), DcTreeConfig::default());
    let paths = [
        vec![
            "R0".to_string(),
            "R0-N0".to_string(),
            "R0-N0-C0".to_string(),
        ],
        vec!["T0".to_string(), "T0-P0".to_string()],
        vec!["1996".to_string(), "1996-01".to_string()],
    ];
    for _ in 0..3 {
        tree.insert_raw(&paths, 500).unwrap();
    }
    let rec = {
        let dims: Vec<ValueId> = (0..3)
            .map(|d| {
                tree.schema()
                    .dim(DimensionId(d as u16))
                    .lookup_path(&paths[d])
                    .unwrap()
            })
            .collect();
        Record::new(dims, 500)
    };
    assert!(tree.delete(&rec).unwrap());
    assert_eq!(tree.len(), 2);
    assert!(tree.delete(&rec).unwrap());
    assert!(tree.delete(&rec).unwrap());
    assert!(!tree.delete(&rec).unwrap());
    assert!(tree.is_empty());
}

#[test]
fn count_matching_counts_duplicates() {
    let (mut tree, oracle) = build(200, 61, DcTreeConfig::default());
    let target = oracle[0].clone();
    let expected = oracle.iter().filter(|r| **r == target).count() as u64;
    assert_eq!(tree.count_matching(&target).unwrap(), expected);
    // Insert two more copies and recount.
    tree.insert(target.clone()).unwrap();
    tree.insert(target.clone()).unwrap();
    assert_eq!(tree.count_matching(&target).unwrap(), expected + 2);
    // A record that was never inserted counts zero.
    let mut ghost = target;
    ghost.measure = i64::MIN / 2;
    assert_eq!(tree.count_matching(&ghost).unwrap(), 0);
}

#[test]
fn group_by_matches_per_group_queries() {
    let config = DcTreeConfig {
        dir_capacity: 5,
        data_capacity: 6,
        ..DcTreeConfig::default()
    };
    let (tree, oracle) = build(600, 71, config);
    let mut rng = StdRng::seed_from_u64(72);
    for _ in 0..25 {
        let filter = random_query(tree.schema(), &mut rng);
        for dim in 0..tree.schema().num_dims() {
            let dim = DimensionId(dim as u16);
            let h = tree.schema().dim(dim);
            for level in 0..=h.top_level() {
                let groups = tree.group_by(dim, level, &filter).unwrap();
                // Oracle: classify matching records by ancestor.
                let mut expected: std::collections::BTreeMap<ValueId, MeasureSummary> =
                    Default::default();
                for r in &oracle {
                    if filter.contains_record(tree.schema(), r).unwrap() {
                        let key = h.ancestor_at(r.dims[dim.as_usize()], level).unwrap();
                        expected.entry(key).or_default().add(r.measure);
                    }
                }
                let got: std::collections::BTreeMap<ValueId, MeasureSummary> =
                    groups.into_iter().collect();
                assert_eq!(got, expected, "dim {dim} level {level}");
            }
        }
    }
}

#[test]
fn group_by_rejects_bad_level() {
    let (tree, _) = build(20, 81, DcTreeConfig::default());
    let filter = Mds::all(tree.schema());
    let top = tree.schema().dim(DimensionId(0)).top_level();
    assert!(tree.group_by(DimensionId(0), top + 1, &filter).is_err());
    // Grouping at the ALL level returns a single group with the total.
    let groups = tree.group_by(DimensionId(0), top, &filter).unwrap();
    assert_eq!(groups.len(), 1);
    assert_eq!(groups[0].1, tree.total_summary());
}

#[test]
fn bulk_insert_equals_incremental_semantics() {
    let config = DcTreeConfig {
        dir_capacity: 5,
        data_capacity: 6,
        ..DcTreeConfig::default()
    };
    let (incremental, oracle) = build(400, 91, config);
    // Same records via bulk_insert into a fresh tree sharing the schema.
    let mut bulk = DcTree::new(incremental.schema().clone(), config);
    let ids = bulk.bulk_insert(oracle.clone()).unwrap();
    assert_eq!(ids.len(), oracle.len());
    bulk.check_invariants().unwrap();
    assert_eq!(bulk.total_summary(), incremental.total_summary());
    let mut rng = StdRng::seed_from_u64(92);
    for _ in 0..60 {
        let q = random_query(bulk.schema(), &mut rng);
        assert_eq!(
            bulk.range_summary(&q).unwrap(),
            oracle_summary(bulk.schema(), &oracle, &q)
        );
    }
}

/// Demonstrates the reproduction erratum: the paper's literal Fig. 7
/// adaptation ("adapt the MDS with the lower level to the one with the
/// higher level", then test containment) over-approximates when the *query*
/// is the finer side, adding whole materialized summaries for entries that
/// are only partially selected.
#[test]
fn paper_fig7_containment_overcounts() {
    let mut schema_paper = schema();
    let _ = &mut schema_paper;
    let sound_cfg = DcTreeConfig {
        dir_capacity: 4,
        data_capacity: 4,
        ..DcTreeConfig::default()
    };
    let paper_cfg = DcTreeConfig {
        use_paper_fig7_containment: true,
        ..sound_cfg
    };
    let (sound, oracle) = build(400, 101, sound_cfg);
    let (paper, _) = build(400, 101, paper_cfg);

    // Fine-grained queries (leaf level in every dimension): the paper-mode
    // shortcut lifts them to coarse entry levels and overcounts.
    let mut rng = StdRng::seed_from_u64(102);
    let mut any_overcount = false;
    for _ in 0..200 {
        let dims = (0..3)
            .map(|d| {
                let h = sound.schema().dim(DimensionId(d as u16));
                let values: Vec<ValueId> = h.values_at(0).collect();
                let take = values.len().div_ceil(3).max(1);
                DimSet::new(0, values.choose_multiple(&mut rng, take).copied().collect())
            })
            .collect();
        let q = Mds::new(dims);
        let truth = oracle_summary(sound.schema(), &oracle, &q);
        assert_eq!(
            sound.range_summary(&q).unwrap(),
            truth,
            "sound mode is exact"
        );
        let paper_answer = paper.range_summary(&q).unwrap();
        if paper_answer.count > truth.count {
            any_overcount = true;
        }
        assert!(
            paper_answer.count >= truth.count,
            "paper mode over-approximates, never under"
        );
    }
    assert!(
        any_overcount,
        "the erratum must be observable: at least one query overcounts"
    );
}

#[test]
fn update_measure_moves_aggregates() {
    let config = DcTreeConfig {
        dir_capacity: 4,
        data_capacity: 4,
        ..DcTreeConfig::default()
    };
    let (mut tree, mut oracle) = build(200, 111, config);
    let mut rng = StdRng::seed_from_u64(112);
    for _ in 0..60 {
        let idx = rng.gen_range(0..oracle.len());
        let old = oracle[idx].clone();
        let new_measure = rng.gen_range(-1000..10_000);
        assert!(tree.update_measure(&old, new_measure).unwrap());
        oracle[idx].measure = new_measure;
    }
    tree.check_invariants().unwrap();
    let want: MeasureSummary = oracle.iter().map(|r| r.measure).collect();
    assert_eq!(tree.total_summary(), want);
    // Updating a non-existent record reports false and changes nothing.
    let mut ghost = oracle[0].clone();
    ghost.measure = i64::MAX / 4;
    assert!(!tree.update_measure(&ghost, 0).unwrap());
    assert_eq!(tree.total_summary(), want);
}

#[test]
fn dead_space_report_quantifies_fig3() {
    let config = DcTreeConfig {
        dir_capacity: 6,
        data_capacity: 8,
        ..DcTreeConfig::default()
    };
    let (tree, _) = build(500, 121, config);
    let report = tree.dead_space_report();
    assert!(report.data_nodes > 0);
    assert!(report.mds_cells > 0);
    // An interval always covers at least the occupied cells…
    assert!(report.mbr_cells >= report.mds_cells);
    // …and on multi-dimensional data it covers strictly more (Fig. 3).
    assert!(report.blowup() > 1.0, "blowup {}", report.blowup());
}

#[test]
fn metrics_expose_split_activity() {
    let config = DcTreeConfig {
        dir_capacity: 4,
        data_capacity: 4,
        ..DcTreeConfig::default()
    };
    let (tree, _) = build(300, 131, config);
    let m = tree.metrics();
    assert!(m.splits > 0, "300 records at capacity 4 must split");
    let q = Mds::all(tree.schema());
    let _ = tree.range_summary(&q).unwrap();
    let m2 = tree.metrics();
    assert!(
        m2.shortcut_hits + m2.descents > m.shortcut_hits + m.descents,
        "queries must account entry decisions"
    );
}

#[test]
fn pivot_matches_nested_group_by() {
    let config = DcTreeConfig {
        dir_capacity: 5,
        data_capacity: 6,
        ..DcTreeConfig::default()
    };
    let (tree, oracle) = build(500, 141, config);
    let mut rng = StdRng::seed_from_u64(142);
    for _ in 0..10 {
        let filter = random_query(tree.schema(), &mut rng);
        let row = (DimensionId(0), 1u8);
        let col = (DimensionId(2), 1u8);
        let cells = tree.pivot(row, col, &filter).unwrap();
        // Oracle: classify by both axes.
        let mut expected: std::collections::BTreeMap<(ValueId, ValueId), MeasureSummary> =
            Default::default();
        let hr = tree.schema().dim(row.0);
        let hc = tree.schema().dim(col.0);
        for r in &oracle {
            if filter.contains_record(tree.schema(), r).unwrap() {
                let rk = hr.ancestor_at(r.dims[0], row.1).unwrap();
                let ck = hc.ancestor_at(r.dims[2], col.1).unwrap();
                expected.entry((rk, ck)).or_default().add(r.measure);
            }
        }
        let got: std::collections::BTreeMap<(ValueId, ValueId), MeasureSummary> =
            cells.into_iter().collect();
        assert_eq!(got, expected);
    }
}

#[test]
fn rebuild_compacts_without_changing_answers() {
    let config = DcTreeConfig {
        dir_capacity: 4,
        data_capacity: 4,
        ..DcTreeConfig::default()
    };
    let (mut tree, mut oracle) = build(400, 151, config);
    // Heavy churn: delete two thirds.
    let mut rng = StdRng::seed_from_u64(152);
    for _ in 0..260 {
        let idx = rng.gen_range(0..oracle.len());
        let victim = oracle.swap_remove(idx);
        assert!(tree.delete(&victim).unwrap());
    }
    let nodes_before = tree.num_nodes();
    tree.rebuild().unwrap();
    tree.check_invariants().unwrap();
    assert!(tree.num_nodes() <= nodes_before, "rebuild must not bloat");
    assert_eq!(tree.len() as usize, oracle.len());
    for _ in 0..40 {
        let q = random_query(tree.schema(), &mut rng);
        assert_eq!(
            tree.range_summary(&q).unwrap(),
            oracle_summary(tree.schema(), &oracle, &q)
        );
    }
    // The tree remains dynamic after a rebuild.
    tree.insert_raw(
        &[
            vec!["R9", "R9-N9", "R9-N9-C9"],
            vec!["T9", "T9-P9"],
            vec!["1999", "1999-09"],
        ],
        9,
    )
    .unwrap();
    tree.check_invariants().unwrap();
}

#[test]
fn parallel_queries_match_sequential() {
    let config = DcTreeConfig {
        dir_capacity: 6,
        data_capacity: 8,
        ..DcTreeConfig::default()
    };
    let (tree, _) = build(600, 161, config);
    let mut rng = StdRng::seed_from_u64(162);
    let queries: Vec<Mds> = (0..37)
        .map(|_| random_query(tree.schema(), &mut rng))
        .collect();
    let sequential: Vec<MeasureSummary> = queries
        .iter()
        .map(|q| tree.range_summary(q).unwrap())
        .collect();
    for threads in [1, 2, 4, 64] {
        let parallel = tree.range_summaries_parallel(&queries, threads).unwrap();
        assert_eq!(parallel, sequential, "threads = {threads}");
    }
    // Degenerate inputs.
    assert!(tree.range_summaries_parallel(&[], 4).unwrap().is_empty());
}

#[test]
fn range_selection_returns_exactly_the_matching_records() {
    let config = DcTreeConfig {
        dir_capacity: 5,
        data_capacity: 6,
        ..DcTreeConfig::default()
    };
    let (tree, oracle) = build(500, 171, config);
    let mut rng = StdRng::seed_from_u64(172);
    for _ in 0..40 {
        let q = random_query(tree.schema(), &mut rng);
        let mut got = tree.range_records(&q).unwrap();
        let mut want: Vec<Record> = oracle
            .iter()
            .filter(|r| q.contains_record(tree.schema(), r).unwrap())
            .cloned()
            .collect();
        let key = |r: &Record| (r.dims.clone(), r.measure);
        got.sort_by_key(key);
        want.sort_by_key(key);
        assert_eq!(got, want);
        // Selection and aggregation agree on cardinality.
        assert_eq!(
            got.len() as f64,
            tree.range_query(&q, AggregateOp::Count).unwrap().unwrap()
        );
    }
}
