//! Persistence round-trip tests: a saved and reloaded tree must be
//! byte-identical in behaviour — same schema IDs, same node structure, same
//! query answers — and corrupt images must fail gracefully.

use dc_common::{AggregateOp, DimensionId, ValueId};
use dc_hierarchy::{CubeSchema, HierarchySchema};
use dc_mds::{DimSet, Mds};
use dc_tree::{DcTree, DcTreeConfig};
use rand::prelude::*;
use rand::rngs::StdRng;

fn build_tree(n: usize, seed: u64) -> DcTree {
    let schema = CubeSchema::new(
        vec![
            HierarchySchema::new(
                "Customer",
                vec!["Region".into(), "Nation".into(), "Cust".into()],
            ),
            HierarchySchema::new("Time", vec!["Year".into(), "Month".into()]),
        ],
        "Price",
    );
    let config = DcTreeConfig {
        dir_capacity: 4,
        data_capacity: 4,
        ..DcTreeConfig::default()
    };
    let mut tree = DcTree::new(schema, config);
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..n {
        let r = rng.gen_range(0..3);
        let nn = rng.gen_range(0..4);
        let c = rng.gen_range(0..6);
        let y = rng.gen_range(1995..1998);
        let m = rng.gen_range(1..13);
        tree.insert_raw(
            &[
                vec![
                    format!("R{r}"),
                    format!("N{r}-{nn}"),
                    format!("C{r}-{nn}-{c}"),
                ],
                vec![format!("{y}"), format!("{y}-{m:02}")],
            ],
            rng.gen_range(0..10_000),
        )
        .unwrap();
    }
    tree
}

fn random_query(tree: &DcTree, rng: &mut StdRng) -> Mds {
    let dims = (0..tree.schema().num_dims())
        .map(|d| {
            let h = tree.schema().dim(DimensionId(d as u16));
            let level = rng.gen_range(0..=h.top_level());
            let values: Vec<ValueId> = h.values_at(level).collect();
            let take = rng.gen_range(1..=values.len().min(3));
            DimSet::new(level, values.choose_multiple(rng, take).copied().collect())
        })
        .collect();
    Mds::new(dims)
}

#[test]
fn roundtrip_preserves_structure_and_answers() {
    let tree = build_tree(300, 1);
    let bytes = tree.to_bytes();
    let loaded = DcTree::from_bytes(&bytes).unwrap();

    assert_eq!(loaded.len(), tree.len());
    assert_eq!(loaded.height(), tree.height());
    assert_eq!(loaded.num_nodes(), tree.num_nodes());
    assert_eq!(loaded.total_summary(), tree.total_summary());
    loaded.check_invariants().unwrap();

    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..50 {
        let q = random_query(&tree, &mut rng);
        assert_eq!(
            loaded.range_summary(&q).unwrap(),
            tree.range_summary(&q).unwrap()
        );
    }
}

#[test]
fn roundtrip_is_deterministic() {
    let tree = build_tree(150, 3);
    let bytes = tree.to_bytes();
    let loaded = DcTree::from_bytes(&bytes).unwrap();
    assert_eq!(
        loaded.to_bytes(),
        bytes,
        "save → load → save must be a fixpoint"
    );
}

#[test]
fn loaded_tree_remains_fully_dynamic() {
    let tree = build_tree(120, 4);
    let mut loaded = DcTree::from_bytes(&tree.to_bytes()).unwrap();
    // Insert new values including brand-new hierarchy members.
    loaded
        .insert_raw(&[vec!["R9", "N9-0", "C9-0-0"], vec!["2001", "2001-01"]], 42)
        .unwrap();
    assert_eq!(loaded.len(), 121);
    loaded.check_invariants().unwrap();
    let q = Mds::all(loaded.schema());
    assert_eq!(
        loaded.range_query(&q, AggregateOp::Count).unwrap(),
        Some(121.0)
    );
}

#[test]
fn save_and_load_via_file() {
    let tree = build_tree(80, 5);
    let dir = std::env::temp_dir().join("dctree-persistence-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tree.dct");
    tree.save_to(&path).unwrap();
    let loaded = DcTree::load_from(&path).unwrap();
    assert_eq!(loaded.total_summary(), tree.total_summary());
    std::fs::remove_file(&path).ok();
}

#[test]
fn bad_magic_is_rejected() {
    let tree = build_tree(10, 6);
    let mut bytes = tree.to_bytes();
    bytes[0] ^= 0xFF;
    assert!(DcTree::from_bytes(&bytes).is_err());
}

#[test]
fn truncated_image_is_rejected() {
    let tree = build_tree(50, 7);
    let bytes = tree.to_bytes();
    for cut in [bytes.len() / 4, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            DcTree::from_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut} must be detected"
        );
    }
}

#[test]
fn bit_flips_never_panic() {
    // Corruption may surface as Corrupt or as a failed invariant check —
    // but must never panic.
    let tree = build_tree(40, 8);
    let bytes = tree.to_bytes();
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..200 {
        let mut corrupted = bytes.clone();
        let pos = rng.gen_range(0..corrupted.len());
        corrupted[pos] ^= 1u8 << rng.gen_range(0u32..8);
        let _ = DcTree::from_bytes(&corrupted); // Ok(valid) or Err — no panic
    }
}
