//! Property-based tests of the DC-tree: random workloads against a
//! brute-force oracle, with the structural invariant checker run after
//! every case.

use dc_common::{AggregateOp, DimensionId, MeasureSummary, ValueId};
use dc_hierarchy::{CubeSchema, HierarchySchema, Record};
use dc_mds::{DimSet, Mds};
use dc_tree::{DcTree, DcTreeConfig};
use proptest::prelude::*;

/// One raw record, expressed as small indices so proptest can shrink it.
#[derive(Clone, Debug)]
struct RawRec {
    a: u8,
    b: u8,
    c: u8,
    y: u8,
    m: u8,
    measure: i16,
}

fn raw_rec() -> impl Strategy<Value = RawRec> {
    (0u8..4, 0u8..4, 0u8..5, 0u8..3, 0u8..6, any::<i16>()).prop_map(|(a, b, c, y, m, measure)| {
        RawRec {
            a,
            b,
            c,
            y,
            m,
            measure,
        }
    })
}

/// A workload step: insert a fresh record or delete a previous one.
#[derive(Clone, Debug)]
enum Step {
    Insert(RawRec),
    /// Delete the record inserted at `index % live_records` (skipped when
    /// nothing is live).
    Delete(u16),
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => raw_rec().prop_map(Step::Insert),
        1 => any::<u16>().prop_map(Step::Delete),
    ]
}

fn schema() -> CubeSchema {
    CubeSchema::new(
        vec![
            HierarchySchema::new("D0", vec!["A".into(), "B".into(), "C".into()]),
            HierarchySchema::new("D1", vec!["Y".into(), "M".into()]),
        ],
        "m",
    )
}

fn insert_raw(tree: &mut DcTree, r: &RawRec) -> Record {
    let paths = [
        vec![
            format!("a{}", r.a),
            format!("a{}b{}", r.a, r.b),
            format!("a{}b{}c{}", r.a, r.b, r.c),
        ],
        vec![format!("y{}", r.y), format!("y{}m{}", r.y, r.m)],
    ];
    tree.insert_raw(&paths, r.measure as i64).unwrap();
    let dims: Vec<ValueId> = (0..2)
        .map(|d| {
            tree.schema()
                .dim(DimensionId(d))
                .lookup_path(&paths[d as usize])
                .unwrap()
        })
        .collect();
    Record::new(dims, r.measure as i64)
}

/// Every query MDS over the live schema, at one level per dimension with a
/// deterministic subset selection.
fn queries_for(tree: &DcTree, salt: u64) -> Vec<Mds> {
    let mut out = Vec::new();
    for l0 in 0..=tree.schema().dim(DimensionId(0)).top_level() {
        for l1 in 0..=tree.schema().dim(DimensionId(1)).top_level() {
            let mk = |d: u16, l: u8| {
                let h = tree.schema().dim(DimensionId(d));
                let vals: Vec<ValueId> = h.values_at(l).collect();
                if vals.is_empty() {
                    // Nothing interned on this level yet (empty tree):
                    // fall back to the always-present ALL.
                    return DimSet::singleton(h.all());
                }
                let take = (salt as usize % vals.len()) + 1;
                DimSet::new(l, vals.into_iter().take(take).collect())
            };
            out.push(Mds::new(vec![mk(0, l0), mk(1, l1)]));
        }
    }
    out
}

fn oracle(schema: &CubeSchema, records: &[Record], q: &Mds) -> MeasureSummary {
    records
        .iter()
        .filter(|r| q.contains_record(schema, r).unwrap())
        .map(|r| r.measure)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random insert/delete workloads: the tree answers every query like
    /// the flat oracle and keeps all invariants, under aggressive
    /// capacities that force splits and supernodes.
    #[test]
    fn workload_matches_oracle(
        steps in prop::collection::vec(step(), 1..120),
        salt in 0u64..7,
    ) {
        let config = DcTreeConfig {
            dir_capacity: 3,
            data_capacity: 3,
            ..DcTreeConfig::default()
        };
        let mut tree = DcTree::new(schema(), config);
        let mut live: Vec<Record> = Vec::new();
        for s in &steps {
            match s {
                Step::Insert(r) => {
                    live.push(insert_raw(&mut tree, r));
                }
                Step::Delete(i) => {
                    if !live.is_empty() {
                        let victim = live.swap_remove(*i as usize % live.len());
                        prop_assert!(tree.delete(&victim).unwrap());
                    }
                }
            }
        }
        tree.check_invariants().unwrap();
        prop_assert_eq!(tree.len() as usize, live.len());
        for q in queries_for(&tree, salt) {
            let got = tree.range_summary(&q).unwrap();
            let want = oracle(tree.schema(), &live, &q);
            prop_assert_eq!(got, want, "query {:?}", q);
        }
    }

    /// Persistence round-trips arbitrary trees exactly.
    #[test]
    fn persistence_roundtrip(recs in prop::collection::vec(raw_rec(), 1..80)) {
        let config = DcTreeConfig {
            dir_capacity: 3,
            data_capacity: 4,
            ..DcTreeConfig::default()
        };
        let mut tree = DcTree::new(schema(), config);
        for r in &recs {
            insert_raw(&mut tree, r);
        }
        let bytes = tree.to_bytes();
        let loaded = DcTree::from_bytes(&bytes).unwrap();
        prop_assert_eq!(loaded.to_bytes(), bytes);
        prop_assert_eq!(loaded.total_summary(), tree.total_summary());
        for q in queries_for(&tree, 3) {
            prop_assert_eq!(
                loaded.range_summary(&q).unwrap(),
                tree.range_summary(&q).unwrap()
            );
        }
    }

    /// The materialization flag changes I/O, never answers.
    #[test]
    fn materialization_is_transparent(recs in prop::collection::vec(raw_rec(), 1..80)) {
        let base = DcTreeConfig { dir_capacity: 3, data_capacity: 3, ..DcTreeConfig::default() };
        let mut with = DcTree::new(schema(), base);
        let mut without = DcTree::new(
            schema(),
            DcTreeConfig { use_materialized_aggregates: false, ..base },
        );
        for r in &recs {
            insert_raw(&mut with, r);
            insert_raw(&mut without, r);
        }
        for q in queries_for(&with, 1) {
            for op in AggregateOp::ALL {
                prop_assert_eq!(
                    with.range_query(&q, op).unwrap(),
                    without.range_query(&q, op).unwrap()
                );
            }
        }
    }

    /// A bottom-up bulk-built tree answers every query exactly like the
    /// record-at-a-time tree and keeps every structural invariant —
    /// including exact materialized directory aggregates (the checker
    /// verifies every entry summary against its subtree).
    #[test]
    fn bulk_load_matches_record_at_a_time(
        recs in prop::collection::vec(raw_rec(), 1..150),
        salt in 0u64..7,
    ) {
        let config = DcTreeConfig { dir_capacity: 3, data_capacity: 3, ..DcTreeConfig::default() };
        let mut incremental = DcTree::new(schema(), config);
        let mut records = Vec::new();
        for r in &recs {
            records.push(insert_raw(&mut incremental, r));
        }
        incremental.check_invariants().unwrap();
        let mut bulk = DcTree::new(incremental.schema().clone(), config);
        let ids = bulk.bulk_load(records.clone()).unwrap();
        prop_assert_eq!(ids.len(), records.len());
        bulk.check_invariants().unwrap();
        prop_assert_eq!(bulk.len(), incremental.len());
        prop_assert_eq!(bulk.total_summary(), incremental.total_summary());
        for q in queries_for(&incremental, salt) {
            prop_assert_eq!(
                bulk.range_summary(&q).unwrap(),
                incremental.range_summary(&q).unwrap(),
                "query {:?}", q
            );
        }
    }

    /// Splitting the same record stream into a record-at-a-time prefix and
    /// a batched suffix changes nothing semantically: `insert_batch` on a
    /// populated tree keeps invariants and answers.
    #[test]
    fn insert_batch_matches_record_at_a_time(
        recs in prop::collection::vec(raw_rec(), 2..150),
        cut in 1usize..149,
        salt in 0u64..7,
    ) {
        let config = DcTreeConfig { dir_capacity: 3, data_capacity: 3, ..DcTreeConfig::default() };
        let mut incremental = DcTree::new(schema(), config);
        let mut records = Vec::new();
        for r in &recs {
            records.push(insert_raw(&mut incremental, r));
        }
        let cut = cut.min(records.len() - 1).max(1);
        let mut batched = DcTree::new(incremental.schema().clone(), config);
        for r in &records[..cut] {
            batched.insert(r.clone()).unwrap();
        }
        batched.insert_batch(records[cut..].to_vec()).unwrap();
        batched.check_invariants().unwrap();
        prop_assert_eq!(batched.len(), incremental.len());
        prop_assert_eq!(batched.total_summary(), incremental.total_summary());
        for q in queries_for(&incremental, salt) {
            prop_assert_eq!(
                batched.range_summary(&q).unwrap(),
                incremental.range_summary(&q).unwrap(),
                "query {:?}", q
            );
        }
    }

    /// Inserting the same multiset in any order yields the same answers
    /// (structure may differ; semantics may not).
    #[test]
    fn insertion_order_is_semantically_irrelevant(
        mut recs in prop::collection::vec(raw_rec(), 1..60),
        rotate in 0usize..60,
    ) {
        let config = DcTreeConfig { dir_capacity: 3, data_capacity: 3, ..DcTreeConfig::default() };
        let mut forward = DcTree::new(schema(), config);
        for r in &recs {
            insert_raw(&mut forward, r);
        }
        let k = rotate % recs.len();
        recs.rotate_left(k);
        recs.reverse();
        let mut shuffled = DcTree::new(schema(), config);
        for r in &recs {
            insert_raw(&mut shuffled, r);
        }
        forward.check_invariants().unwrap();
        shuffled.check_invariants().unwrap();
        prop_assert_eq!(forward.total_summary(), shuffled.total_summary());
        // Queries built against `forward`'s schema may reference values in
        // a different ID order than `shuffled`'s; compare on shared levels
        // via the ALL query plus per-level totals, which are order-free.
        let all = Mds::all(forward.schema());
        prop_assert_eq!(
            forward.range_summary(&all).unwrap(),
            shuffled.range_summary(&Mds::all(shuffled.schema())).unwrap()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The disk-resident tree is a drop-in behavioural replacement for the
    /// in-memory tree: identical answers over arbitrary insert/delete
    /// workloads, under buffer-pool pressure.
    #[test]
    fn disk_tree_matches_memory_tree(
        steps in prop::collection::vec(step(), 1..60),
        frames in 3usize..24,
    ) {
        let dir = std::env::temp_dir().join("dc-disk-proptests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!(
            "case-{}-{}",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len() as u64
                + steps.len() as u64 * 1000
                + frames as u64
        ));
        std::fs::remove_file(&path).ok();

        let config = DcTreeConfig {
            dir_capacity: 3,
            data_capacity: 3,
            ..DcTreeConfig::default()
        };
        let mut mem = DcTree::new(schema(), config);
        let mut disk =
            dc_tree::disk::DiskDcTree::create(&path, schema(), config, frames).unwrap();
        let mut live: Vec<Record> = Vec::new();
        for s in &steps {
            match s {
                Step::Insert(r) => {
                    let rec = insert_raw(&mut mem, r);
                    let paths: Vec<Vec<String>> = (0..2u16)
                        .map(|d| {
                            let h = mem.schema().dim(DimensionId(d));
                            let leaf = rec.dims[d as usize];
                            (0..h.top_level())
                                .rev()
                                .map(|l| {
                                    h.name(h.ancestor_at(leaf, l).unwrap()).unwrap().to_string()
                                })
                                .collect()
                        })
                        .collect();
                    disk.insert_raw(&paths, rec.measure).unwrap();
                    live.push(rec);
                }
                Step::Delete(i) => {
                    if !live.is_empty() {
                        let victim = live.swap_remove(*i as usize % live.len());
                        prop_assert!(mem.delete(&victim).unwrap());
                        prop_assert!(disk.delete(&victim).unwrap());
                    }
                }
            }
        }
        prop_assert_eq!(disk.len(), mem.len());
        prop_assert_eq!(disk.total_summary().unwrap(), mem.total_summary());
        for q in queries_for(&mem, 2) {
            prop_assert_eq!(
                disk.range_summary(&q).unwrap(),
                mem.range_summary(&q).unwrap()
            );
        }
        std::fs::remove_file(&path).ok();
    }
}
