//! Node arena of the DC-tree.
//!
//! Nodes live in a slab with explicit [`NodeId`] handles (a free list
//! recycles slots released by deletion). Every node carries its own MDS and
//! materialized [`MeasureSummary`]; directory entries duplicate the MDS and
//! summary of the child they reference so that a range query can apply the
//! contained-entry shortcut of Fig. 7 *without touching the child's page* —
//! that duplication is the whole point of the DC-tree's directory layout.

use dc_common::{MeasureSummary, RecordId};
use dc_hierarchy::Record;
use dc_mds::Mds;

/// Handle of a node inside the arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw handle value. For arena trees this is the slot index; for
    /// paged trees it is the head page of the node's chain. Exposed for
    /// external [`NodeStore`](crate::store::NodeStore) implementations.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds a handle from its raw value (see [`raw`](Self::raw)).
    pub fn from_raw(raw: u32) -> Self {
        NodeId(raw)
    }
}

/// One directory entry: the child's MDS and materialized measure summary,
/// plus the child pointer.
#[derive(Clone, Debug)]
pub struct DirEntry {
    /// MDS of the referenced subtree (kept identical to the child's own).
    pub mds: Mds,
    /// Materialized aggregate over all records below the child.
    pub summary: MeasureSummary,
    /// The referenced child node.
    pub child: NodeId,
}

/// A stored record together with its stable identifier.
#[derive(Clone, Debug)]
pub struct StoredRecord {
    /// The record id assigned at insertion.
    pub id: RecordId,
    /// The record itself.
    pub record: Record,
}

/// Payload of a node: directory entries or data records.
#[derive(Clone, Debug)]
pub enum NodeKind {
    /// An internal (directory) node.
    Dir(Vec<DirEntry>),
    /// A data (leaf) node.
    Data(Vec<StoredRecord>),
}

/// A DC-tree node: MDS, materialized summary, supernode block count, and
/// the payload.
#[derive(Clone, Debug)]
pub struct Node {
    /// The node's minimum describing sequence.
    pub mds: Mds,
    /// Materialized aggregate over all records below this node.
    pub summary: MeasureSummary,
    /// Number of blocks this node spans; > 1 makes it a *supernode*.
    pub blocks: u32,
    /// Directory entries or data records.
    pub kind: NodeKind,
}

impl Node {
    /// A fresh data node.
    pub fn new_data(mds: Mds) -> Self {
        Node {
            mds,
            summary: MeasureSummary::empty(),
            blocks: 1,
            kind: NodeKind::Data(Vec::new()),
        }
    }

    /// A fresh directory node.
    pub fn new_dir(mds: Mds, entries: Vec<DirEntry>) -> Self {
        let mut summary = MeasureSummary::empty();
        for e in &entries {
            summary.merge(&e.summary);
        }
        Node {
            mds,
            summary,
            blocks: 1,
            kind: NodeKind::Dir(entries),
        }
    }

    /// `true` iff this is a data (leaf) node.
    pub fn is_data(&self) -> bool {
        matches!(self.kind, NodeKind::Data(_))
    }

    /// `true` iff this node spans more than one block.
    pub fn is_supernode(&self) -> bool {
        self.blocks > 1
    }

    /// Number of entries (directory) or records (data) stored.
    pub fn len(&self) -> usize {
        match &self.kind {
            NodeKind::Dir(entries) => entries.len(),
            NodeKind::Data(records) => records.len(),
        }
    }

    /// `true` iff the node stores nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Directory entries; panics on data nodes (internal use).
    pub fn entries(&self) -> &[DirEntry] {
        match &self.kind {
            NodeKind::Dir(entries) => entries,
            NodeKind::Data(_) => panic!("entries() on a data node"),
        }
    }

    /// Mutable directory entries; panics on data nodes (internal use).
    pub(crate) fn entries_mut(&mut self) -> &mut Vec<DirEntry> {
        match &mut self.kind {
            NodeKind::Dir(entries) => entries,
            NodeKind::Data(_) => panic!("entries_mut() on a data node"),
        }
    }

    /// Data records; panics on directory nodes (internal use).
    pub fn records(&self) -> &[StoredRecord] {
        match &self.kind {
            NodeKind::Data(records) => records,
            NodeKind::Dir(_) => panic!("records() on a directory node"),
        }
    }

    /// Mutable data records; panics on directory nodes (internal use).
    pub(crate) fn records_mut(&mut self) -> &mut Vec<StoredRecord> {
        match &mut self.kind {
            NodeKind::Data(records) => records,
            NodeKind::Dir(_) => panic!("records_mut() on a directory node"),
        }
    }
}

/// Slab arena with a free list.
#[derive(Clone, Debug, Default)]
pub(crate) struct Arena {
    slots: Vec<Option<Node>>,
    free: Vec<u32>,
}

impl Arena {
    pub(crate) fn new() -> Self {
        Arena::default()
    }

    pub(crate) fn alloc(&mut self, node: Node) -> NodeId {
        if let Some(idx) = self.free.pop() {
            self.slots[idx as usize] = Some(node);
            NodeId(idx)
        } else {
            self.slots.push(Some(node));
            NodeId((self.slots.len() - 1) as u32)
        }
    }

    pub(crate) fn free(&mut self, id: NodeId) {
        debug_assert!(self.slots[id.index()].is_some(), "double free of {id:?}");
        self.slots[id.index()] = None;
        self.free.push(id.0);
    }

    pub(crate) fn get(&self, id: NodeId) -> &Node {
        self.slots[id.index()].as_ref().expect("dangling NodeId")
    }

    pub(crate) fn get_mut(&mut self, id: NodeId) -> &mut Node {
        self.slots[id.index()].as_mut().expect("dangling NodeId")
    }

    /// Number of live nodes.
    pub(crate) fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Iterates over live `(NodeId, &Node)` pairs.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|n| (NodeId(i as u32), n)))
    }

    /// All slots including holes — used by the persistence codec so that
    /// `NodeId`s survive a save/load round-trip unchanged.
    pub(crate) fn slots(&self) -> &[Option<Node>] {
        &self.slots
    }

    /// Rebuilds an arena from raw slots (persistence load path).
    pub(crate) fn from_slots(slots: Vec<Option<Node>>) -> Self {
        let free = slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_none().then_some(i as u32))
            .collect();
        Arena { slots, free }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_common::ValueId;
    use dc_mds::DimSet;

    fn dummy_mds() -> Mds {
        Mds::new(vec![DimSet::singleton(ValueId::new(1, 0))])
    }

    #[test]
    fn arena_alloc_get_free_recycles() {
        let mut a = Arena::new();
        let n1 = a.alloc(Node::new_data(dummy_mds()));
        let n2 = a.alloc(Node::new_data(dummy_mds()));
        assert_ne!(n1, n2);
        assert_eq!(a.len(), 2);
        a.free(n1);
        assert_eq!(a.len(), 1);
        let n3 = a.alloc(Node::new_data(dummy_mds()));
        assert_eq!(n3, n1); // slot reused
        assert_eq!(a.len(), 2);
        assert_eq!(a.iter().count(), 2);
    }

    #[test]
    fn new_dir_aggregates_entry_summaries() {
        let mut a = Arena::new();
        let c1 = a.alloc(Node::new_data(dummy_mds()));
        let c2 = a.alloc(Node::new_data(dummy_mds()));
        let entries = vec![
            DirEntry {
                mds: dummy_mds(),
                summary: MeasureSummary::of(10),
                child: c1,
            },
            DirEntry {
                mds: dummy_mds(),
                summary: MeasureSummary::of(-4),
                child: c2,
            },
        ];
        let dir = Node::new_dir(dummy_mds(), entries);
        assert_eq!(dir.summary.sum, 6);
        assert_eq!(dir.summary.count, 2);
        assert_eq!(dir.summary.min, -4);
        assert_eq!(dir.summary.max, 10);
        assert!(!dir.is_data());
        assert!(!dir.is_supernode());
        assert_eq!(dir.len(), 2);
    }

    #[test]
    #[should_panic(expected = "data node")]
    fn entries_on_data_node_panics() {
        let n = Node::new_data(dummy_mds());
        let _ = n.entries();
    }
}
